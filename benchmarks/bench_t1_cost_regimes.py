"""T1 (slides 13–18): the cost-regime table of the MPC model.

The tutorial's opening table contrasts four ways to run a two-way join:

  Ideal       L = IN/p        r = 1
  Practical   L = IN/p^(1-ε)  r = O(1)
  Naive 1     L = IN          r = 1     (ship everything to one server)
  Naive 2     L = IN/p        r = p     (one fragment broadcast per round)

We execute all four strategies on the simulator and report measured
(L, r); the practical row is the HyperCube triangle join, whose ε is
1/τ* − … i.e. L = IN/p^(2/3) — the tutorial's canonical ε ∈ (0,1) case.
"""

import pytest

from repro.data import random_edges, triangle_relations, uniform_relation
from repro.joins import parallel_hash_join
from repro.mpc import Cluster
from repro.multiway import triangle_hypercube

from common import print_table

N = 4000
P = 16


def naive_one_server(r, s, p):
    """Naive 1: route every tuple to server 0, join there (r=1, L=IN)."""
    cluster = Cluster(p)
    cluster.scatter(r, "R")
    cluster.scatter(s, "S")
    with cluster.round("all-to-one") as rnd:
        for server in cluster.servers:
            for row in server.take("R"):
                rnd.send(0, "R@0", row)
            for row in server.take("S"):
                rnd.send(0, "S@0", row)
    return cluster.stats


def naive_sequential(r, s, p):
    """Naive 2: p rounds; round i broadcasts fragment i (r=p, L≈IN/p)."""
    cluster = Cluster(p)
    cluster.scatter(r, "R")
    cluster.scatter(s, "S")
    for i in range(p):
        with cluster.round(f"fragment-{i}") as rnd:
            holder = cluster.servers[i]
            for row in holder.get("R"):
                rnd.send((i + 1) % p, "R@seq", row)
            for row in holder.get("S"):
                rnd.send((i + 1) % p, "S@seq", row)
    return cluster.stats


def run_experiment(n=N, p=P):
    r = uniform_relation("R", ["x", "y"], n, 4 * n, seed=1)
    s = uniform_relation("S", ["y", "z"], n, 4 * n, seed=2)
    in_size = len(r) + len(s)

    ideal = parallel_hash_join(r, s, p=p)
    edges = random_edges(n, n, seed=3)
    tri_r, tri_s, tri_t = triangle_relations(edges)
    practical = triangle_hypercube(tri_r, tri_s, tri_t, p=p)
    naive1 = naive_one_server(r, s, p)
    naive2 = naive_sequential(r, s, p)

    rows = [
        ("Ideal (hash join)", "IN/p", in_size / p, ideal.load, 1, ideal.rounds),
        (
            "Practical (HyperCube Δ)",
            "IN/p^(2/3)",
            3 * n / p ** (2 / 3),
            practical.load,
            "O(1)",
            practical.rounds,
        ),
        ("Naive 1 (all-to-one)", "IN", in_size, naive1.max_load, 1, naive1.num_rounds),
        ("Naive 2 (sequential)", "IN/p", in_size / p, naive2.max_load, "p", naive2.num_rounds),
    ]
    return in_size, rows


def test_t1_cost_regimes(benchmark):
    in_size, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T1 cost regimes (two-way join, IN={in_size}, p={P})",
        ["strategy", "paper L", "predicted", "measured L", "paper r", "measured r"],
        rows,
    )
    ideal, practical, naive1, naive2 = rows
    # Shape: ideal ≈ IN/p, naive1 = IN, naive2 ≈ IN/p over p rounds.
    assert ideal[3] < 2 * in_size / P
    assert naive1[3] == in_size
    assert naive1[5] == 1
    assert naive2[5] == P
    assert naive2[3] <= 2 * in_size / P
    # Practical sits between ideal and naive1.
    assert ideal[3] / 3 < practical[3] < naive1[3]


if __name__ == "__main__":
    in_size, rows = run_experiment()
    print_table(
        f"T1 cost regimes (IN={in_size}, p={P})",
        ["strategy", "paper L", "predicted", "measured L", "paper r", "measured r"],
        rows,
    )
