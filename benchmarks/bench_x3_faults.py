"""X3 — recovery overhead vs. fault rate.

The fault-injection layer (:mod:`repro.mpc.faults`) promises that a run
under a seeded :class:`~repro.mpc.faults.FaultPlan` with recovery
enabled produces the *same* output and the *same* nominal loads as the
fault-free run — the price of the faults appears only in the recovery
counters. This bench measures that price:

- X3a sweeps the per-slot fault rate on a one-round hash join and a
  one-round HyperCube triangle, reporting injected faults and the
  recovery load as a fraction of the nominal communication ``C``;
- X3b varies the checkpoint interval on a multi-round shuffle pipeline
  with a late crash, showing the checkpoint-cost vs. replay-cost
  trade-off (sparser checkpoints mean more logged rounds to roll
  forward at crash time).

Outputs are re-verified against the fault-free run in every cell, so
the table doubles as an end-to-end recovery correctness check.
"""

from repro.data.generators import uniform_relation
from repro.data.graphs import random_edges, triangle_relations
from repro.joins.hash_join import parallel_hash_join
from repro.mpc import (
    Cluster,
    CrashFault,
    FaultPlan,
    RecoveryPolicy,
    faulty,
)
from repro.multiway.hypercube import hypercube_join
from repro.query import triangle_query

from common import print_table


def _hash_join_workload(p=16, n=4000, domain=400):
    r = uniform_relation("R", ("a", "b"), n, domain, seed=11)
    s = uniform_relation("S", ("b", "c"), n, domain, seed=12)
    return lambda: parallel_hash_join(r, s, p=p, seed=3)


def _triangle_workload(p=16, n=1500, nodes=120):
    edges = random_edges(n, nodes, seed=13)
    r, s, t = triangle_relations(edges)
    query = triangle_query()
    return lambda: hypercube_join(
        query, {"R": r, "S": s, "T": t}, p=p, seed=3
    )


def recovery_overhead_experiment(
    p=16, rates=(0.0, 0.05, 0.1, 0.2, 0.4), n_join=4000, n_tri=1500
):
    """X3a: injected faults and recovery load as the fault rate grows."""
    rows = []
    for label, make in (
        ("hash-join", _hash_join_workload(p, n=n_join)),
        ("triangle-hc", _triangle_workload(p, n=n_tri)),
    ):
        clean = make()
        baseline = sorted(clean.output.rows())
        for rate in rates:
            plan = FaultPlan.random(
                seed=1000 + int(rate * 100), p=p, rounds=3,
                crash_rate=rate, straggler_rate=rate,
                drop_rate=rate, duplicate_rate=rate / 2,
                scatter_crash_rate=rate / 2,
            )
            with faulty(plan):
                run = make()
            faults = run.stats.faults
            assert faults is not None and faults.clean
            assert sorted(run.output.rows()) == baseline
            nominal = run.stats.total_communication
            overhead = faults.recovery_load / nominal if nominal else 0.0
            rows.append(
                (label, f"{rate:.2f}", faults.injected,
                 run.stats.max_load, nominal, faults.recovery_load,
                 f"{overhead:.0%}")
            )
    return rows


def _shuffle_pipeline(p, n, depth, plan=None):
    """``depth`` chained re-hash shuffles — a pure-shuffle pipeline, so
    recovery stays exact at any checkpoint interval."""
    cluster = Cluster(p, seed=5, faults=plan)
    cluster.scatter_rows([(i, i % 97) for i in range(n)], "F0")
    for step in range(depth):
        h = cluster.hash_function(step, p)
        with cluster.round(f"shuffle-{step}") as rnd:
            for server in cluster.servers:
                for row in server.take(f"F{step}"):
                    rnd.send(h(row[0] + step), f"F{step + 1}", row)
    return sorted(cluster.gather(f"F{depth}")), cluster.stats


def checkpoint_interval_experiment(p=16, n=4000, depth=6, intervals=(1, 2, 3, 6)):
    """X3b: checkpoint cost vs. replay cost around a crash in the last round."""
    baseline, _ = _shuffle_pipeline(p, n, depth)
    rows = []
    for interval in intervals:
        plan = FaultPlan(
            crashes=(CrashFault(depth - 1, 2),),
            recovery=RecoveryPolicy(checkpoint_interval=interval),
        )
        output, stats = _shuffle_pipeline(p, n, depth, plan=plan)
        faults = stats.faults
        assert faults is not None and faults.clean
        assert output == baseline
        rows.append(
            (interval, faults.checkpoints_taken, faults.rounds_replayed,
             faults.recovery_load, stats.total_communication)
        )
    return rows


def test_x3_recovery_overhead(benchmark):
    rows = benchmark.pedantic(recovery_overhead_experiment, rounds=1, iterations=1)
    print_table(
        "X3a recovery overhead vs fault rate (outputs oracle-identical)",
        ["workload", "rate", "injected", "L", "C", "recovery load", "overhead"],
        rows,
    )
    by_rate = [r for r in rows if r[0] == "hash-join"]
    # A zero-rate plan injects nothing and costs nothing…
    assert by_rate[0][2] == 0 and by_rate[0][5] == 0
    # …and the nominal L and C are invariant under every fault rate.
    assert len({r[3] for r in by_rate}) == 1
    assert len({r[4] for r in by_rate}) == 1
    # More faults cost more recovery work at the extremes of the sweep.
    assert by_rate[-1][5] > by_rate[0][5]


def test_x3_checkpoint_interval(benchmark):
    rows = benchmark.pedantic(checkpoint_interval_experiment, rounds=1, iterations=1)
    print_table(
        "X3b checkpoint interval vs replay work (crash in final round)",
        ["interval", "checkpoints", "rounds replayed", "recovery load", "C"],
        rows,
    )
    # Denser checkpoints, fewer rounds to roll forward — and vice versa.
    assert rows[0][1] >= rows[-1][1]
    assert rows[0][2] <= rows[-1][2]
    # Interval 1 replays only the crashed round itself.
    assert rows[0][2] == 1


if __name__ == "__main__":
    print_table(
        "X3a recovery overhead",
        ["workload", "rate", "injected", "L", "C", "recovery load", "overhead"],
        recovery_overhead_experiment(),
    )
    print_table(
        "X3b checkpoint interval",
        ["interval", "checkpoints", "rounds replayed", "recovery load", "C"],
        checkpoint_interval_experiment(),
    )
