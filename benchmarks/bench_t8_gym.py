"""T8 (slide 78): GYM vs one-round HyperCube — the OUT crossover.

GYM's load is O((IN + OUT)/p); HyperCube's is IN/p^{1/τ*} (skew-free).
Equating them gives the slide's crossover: GYM wins while

    OUT < p^{1 − 1/τ*} · IN,

so larger p lets GYM tolerate larger outputs. We use the acyclic path-4
query (τ* = 2) over skew-free regular-degree data: raising the per-value
degree d grows OUT ≈ N·d³ without creating heavy hitters, sweeping the
output across the crossover.
"""

import pytest

from repro.data import Relation
from repro.multiway import gym, hypercube_join
from repro.query import path_query, tau_star

from common import print_table

P = 16
N = 1024


def regular_path_relations(degree, n=N, seed=0):
    """Four path relations where every value occurs exactly ``degree`` times.

    Both columns of every R_i take each value in [0, n/degree) exactly
    ``degree`` times, via a fixed stride permutation — no heavy hitters
    as long as degree ≪ n/p.
    """
    universe = n // degree
    rels = {}
    for atom_index in range(1, 5):
        rows = []
        for serial in range(n):
            left = (serial + 13 * atom_index) % universe
            right = (serial * 7 + atom_index) % universe
            rows.append((left, right))
        rels[f"R{atom_index}"] = Relation(
            f"R{atom_index}", [f"A{atom_index - 1}", f"A{atom_index}"], rows
        )
    return rels


def run_experiment():
    q = path_query(4)
    tau = tau_star(q)
    rows = []
    for degree in (1, 2, 4, 8):
        rels = regular_path_relations(degree)
        in_size = sum(len(r) for r in rels.values())
        hc = hypercube_join(q, rels, p=P)
        gym_run = gym(q, rels, p=P, variant="optimized")
        out = len(hc.output)
        assert sorted(gym_run.output.rows()) == sorted(hc.output.rows())
        winner = "GYM" if gym_run.load < hc.load else "HyperCube"
        rows.append((degree, out, in_size, gym_run.load, gym_run.rounds, hc.load, winner))
    crossover = P ** (1 - 1 / tau) * 4 * N
    return tau, crossover, rows


def test_t8_gym_crossover(benchmark):
    tau, crossover, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T8 GYM vs HyperCube on path-4 (p={P}, τ*={tau:.1f}, crossover "
        f"OUT ≈ p^(1-1/τ*)·IN = {crossover:.0f})",
        ["degree d", "OUT", "IN", "GYM L", "GYM r", "HyperCube L", "lower load"],
        rows,
    )
    # Small OUT: GYM's (IN+OUT)/p beats IN/p^(1/2).
    assert rows[0][6] == "GYM"
    # Past the crossover the one-round algorithm wins.
    assert rows[-1][6] == "HyperCube"
    # GYM's load grows with OUT; HyperCube's stays comparatively flat.
    gym_loads = [row[3] for row in rows]
    assert gym_loads == sorted(gym_loads)
    hc_loads = [row[5] for row in rows]
    assert max(hc_loads) < 4 * min(hc_loads)
    # The flip happens near the analytic crossover (same order of magnitude).
    flip_out = next(row[1] for row in rows if row[6] == "HyperCube")
    assert crossover / 20 < flip_out < crossover * 20


if __name__ == "__main__":
    tau, crossover, rows = run_experiment()
    print_table(
        f"T8 GYM vs HyperCube (crossover ≈ {crossover:.0f})",
        ["d", "OUT", "IN", "GYM L", "GYM r", "HC L", "winner"],
        rows,
    )
