"""X2 — the open-problem and limitation slides (60–63).

Not tables in the evaluation sense, but quantitative claims we can
execute:

- slide 61's "difficult query" (the spider): its exponents ρ* = 2,
  ψ* = 3 quantify the gap the open problem asks about — we compute them
  by LP and measure the one-round algorithms' loads on skewed data;
- slide 62's scalability warning: with τ* = 10 (the 20-atom path), a 2×
  speedup needs 1024× more processors — the p-for-speedup table;
- slide 63's intermediate blow-up: an iterative binary plan on a dense
  cyclic query materializes |T_i| ≫ p·IN, at which point one-round
  replication is cheaper — we measure the actual intermediate sizes.
"""

import pytest

from repro.data import random_edges, triangle_relations
from repro.multiway import binary_join_plan, hypercube_join
from repro.query import (
    path_query,
    psi_star,
    rho_star,
    spider_query,
    tau_star,
    triangle_query,
)
from repro.theory import required_processors_for_speedup

from common import print_table


def spider_exponents():
    q = spider_query()
    return [(str(q), tau_star(q), rho_star(q), psi_star(q))]


def scalability_table():
    rows = []
    for label, query in (
        ("triangle", triangle_query()),
        ("path-4", path_query(4)),
        ("path-20", path_query(20)),
    ):
        tau = tau_star(query)
        rows.append(
            (
                label,
                round(tau, 2),
                round(required_processors_for_speedup(2.0, tau), 2),
                round(required_processors_for_speedup(4.0, tau), 2),
            )
        )
    return rows


def blowup_experiment():
    p = 8
    edges = random_edges(500, 25, seed=1)  # dense: average degree 20
    r, s, t = triangle_relations(edges)
    rels = {"R": r, "S": s, "T": t}
    bj = binary_join_plan(triangle_query(), rels, p=p)
    hc = hypercube_join(triangle_query(), rels, p=p)
    assert sorted(bj.output.rows()) == sorted(hc.output.rows())
    in_size = 3 * len(edges)
    max_intermediate = max(bj.details["intermediate_sizes"])
    return [
        ("binary plan", max_intermediate, bj.load, bj.rounds),
        ("one-round HyperCube", 0, hc.load, hc.rounds),
    ], in_size, p


def test_x2_spider_exponents(benchmark):
    rows = benchmark.pedantic(spider_exponents, rounds=1, iterations=1)
    print_table(
        "X2a the slide-61 difficult query",
        ["query", "tau*", "rho*", "psi*"],
        rows,
    )
    _q, tau, rho, psi = rows[0]
    assert rho == pytest.approx(2.0)   # slide 61
    assert psi == pytest.approx(3.0)   # slide 61
    assert tau == pytest.approx(3.0)
    # The open problem: can L = IN/p^(1/rho*) be achieved in O(1) rounds?
    # Known one-round algorithms only reach IN/p^(1/psi*): a p^(1/6) gap.
    assert psi > rho


def test_x2_scalability(benchmark):
    rows = benchmark.pedantic(scalability_table, rounds=1, iterations=1)
    print_table(
        "X2b processors needed for a given speedup (slide 62)",
        ["query", "tau*", "p for 2x", "p for 4x"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    assert by_label["path-20"][1] == pytest.approx(10.0)
    assert by_label["path-20"][2] == pytest.approx(1024.0)
    assert by_label["triangle"][2] == pytest.approx(2 ** 1.5, abs=0.01)


def test_x2_intermediate_blowup(benchmark):
    rows, in_size, p = benchmark.pedantic(blowup_experiment, rounds=1, iterations=1)
    print_table(
        f"X2c intermediate blow-up on a dense triangle (IN={in_size}, p={p}, "
        f"slide 63's p·IN = {p * in_size})",
        ["plan", "max |T_i|", "L", "r"],
        rows,
    )
    binary, hypercube = rows
    # The intermediate dwarfs the input…
    assert binary[1] > 5 * in_size
    # …and once |T_i| ≳ p·IN, one-round replication is the cheaper plan.
    if binary[1] > p * in_size:
        assert hypercube[2] < binary[2]


if __name__ == "__main__":
    print_table("X2a spider", ["query", "tau*", "rho*", "psi*"], spider_exponents())
    print_table("X2b scalability", ["query", "tau*", "2x", "4x"], scalability_table())
    rows, in_size, p = blowup_experiment()
    print_table(f"X2c blow-up (IN={in_size})", ["plan", "max |T_i|", "L", "r"], rows)
