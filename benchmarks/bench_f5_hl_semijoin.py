"""F5 (slides 57–59): heavy-light + semijoin triangle processing.

Slide 59 decomposes the triangle under z-skew: light z-values run one
HyperCube round at L = O(IN/p^{2/3}); each heavy z-value h becomes the
residual R(x,y) ⋉ S'(y) ⋉ T'(x), solved by two semijoin rounds on its own
servers at the same load. Result: r = 2, L = O(IN/p^{2/3}) — worst-case
optimal despite skew. We sweep the hub's weight and compare against
plain HyperCube and the binary plan.
"""

import pytest

from repro.data import Relation, uniform_relation
from repro.multiway import binary_join_plan, triangle_hl_semijoin, triangle_hypercube
from repro.query import triangle_query

from common import print_table

N = 600
P = 27


def make_z_skewed(hub_fraction, n=N, universe=50, seed=0):
    hub = int(n * hub_fraction)
    r = uniform_relation("R", ["x", "y"], n, universe, seed=seed)
    s_rows = [(i % universe, 0) for i in range(hub)] + [
        (i % universe, 1 + i % 30) for i in range(n - hub)
    ]
    t_rows = [(0, i % universe) for i in range(hub)] + [
        (1 + i % 30, i % universe) for i in range(n - hub)
    ]
    return r, Relation("S", ["y", "z"], s_rows), Relation("T", ["z", "x"], t_rows)


def run_experiment():
    rows = []
    for hub_fraction in (0.0, 0.5, 0.9):
        r, s, t = make_z_skewed(hub_fraction)
        hc = triangle_hypercube(r, s, t, p=P)
        hl = triangle_hl_semijoin(r, s, t, p=P)
        bj = binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=P)
        assert sorted(hl.output.rows()) == sorted(hc.output.rows())
        assert sorted(bj.output.rows()) == sorted(hc.output.rows())
        rows.append(
            (
                f"{hub_fraction:.0%} hub",
                len(hl.details["heavy_z"]),
                hc.load,
                hl.load,
                hl.rounds,
                bj.load,
            )
        )
    return rows


def test_f5_hl_semijoin(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    in_size = 3 * N
    print_table(
        f"F5 triangle under z-skew (IN={in_size}, p={P}; optimum IN/p^(2/3) = "
        f"{in_size / P ** (2 / 3):.0f})",
        ["workload", "#heavy z", "HyperCube L", "HL+semijoin L", "HL r", "binary L"],
        rows,
    )
    no_skew, mid, heavy = rows
    # Without a hub the HL plan just is HyperCube.
    assert no_skew[1] == 0
    assert no_skew[3] == no_skew[2]
    # With a dominant hub, HL+semijoin beats plain HyperCube while
    # staying within 2 rounds.
    assert heavy[1] >= 1
    assert heavy[3] < heavy[2]
    assert all(row[4] <= 2 for row in rows)
    # HL stays within a constant of the worst-case optimum.
    assert heavy[3] <= 6 * in_size / P ** (2 / 3)


if __name__ == "__main__":
    print_table(
        f"F5 triangle under z-skew (p={P})",
        ["workload", "#heavy z", "HC L", "HL L", "HL r", "binary L"],
        run_experiment(),
    )
