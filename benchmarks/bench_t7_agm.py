"""T7 (slide 55): the AGM output bound |OUT| ≤ IN^{ρ*}.

For the slide's example R(x) ⋈ S(x,y) ⋈ T(y): ρ* = 1 (cover S alone), so
|OUT| ≤ IN. For the triangle ρ* = 3/2 and for the pure 2-way join ρ* = 2.
We evaluate random and adversarial (worst-case) instances and report
observed |OUT| against the bound, confirming tightness on the
adversarial inputs.
"""

import pytest

from repro.data import (
    Relation,
    random_edges,
    single_value_relation,
    triangle_relations,
    uniform_relation,
)
from repro.query import (
    Atom,
    ConjunctiveQuery,
    agm_bound,
    rho_star,
    triangle_query,
    two_path_query,
    two_way_join,
)

from common import print_table


def run_experiment():
    rows = []

    # 2-path, random: ρ* = 1.
    q = two_path_query()
    r = Relation("R", ["x"], [(i,) for i in range(0, 200, 2)])
    s = uniform_relation("S", ["x", "y"], 400, 200, seed=1)
    t = Relation("T", ["y"], [(i,) for i in range(0, 200, 3)])
    out = len(q.evaluate({"R": r, "S": s, "T": t}))
    sizes = {"R": len(r), "S": len(s), "T": len(t)}
    rows.append(("2-path random", rho_star(q), out, agm_bound(q, sizes)))

    # Triangle, random graph: ρ* = 3/2.
    q = triangle_query()
    edges = random_edges(400, 60, seed=2)
    tr, ts, tt = triangle_relations(edges)
    out = len(q.evaluate({"R": tr, "S": ts, "T": tt}))
    sizes = {"R": 400, "S": 400, "T": 400}
    rows.append(("triangle random", rho_star(q), out, agm_bound(q, sizes)))

    # Triangle, complete bipartite-ish worst case: K_m as a directed
    # clique maximizes triangles at m³ = N^{3/2} for N = m² edges.
    m = 14
    clique = Relation("E", ["u", "v"], [(a, b) for a in range(m) for b in range(m)])
    cr, cs, ct = triangle_relations(clique)
    out = len(q.evaluate({"R": cr, "S": cs, "T": ct}))
    n = len(clique)
    rows.append(("triangle clique (tight)", rho_star(q), out, agm_bound(q, {"R": n, "S": n, "T": n})))

    # 2-way join, single-value worst case: tight at N².
    q2 = two_way_join()
    n = 60
    wr = single_value_relation("R", ["x", "y"], n, "y")
    ws = single_value_relation("S", ["y", "z"], n, "y")
    out = len(q2.evaluate({"R": wr, "S": ws}))
    rows.append(("2-way single-value (tight)", rho_star(q2), out, agm_bound(q2, {"R": n, "S": n})))

    return rows


def test_t7_agm(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "T7 AGM bound |OUT| ≤ Π|Sj|^wj (slide 55)",
        ["instance", "rho*", "observed OUT", "AGM bound"],
        rows,
    )
    for _label, _rho, out, bound in rows:
        assert out <= bound + 0.5  # the bound always holds
    # Tight instances achieve the bound exactly.
    clique = rows[2]
    assert clique[2] == pytest.approx(clique[3], rel=1e-9)
    single = rows[3]
    assert single[2] == pytest.approx(single[3], rel=1e-9)
    # ρ* values match the slide.
    assert rows[0][1] == pytest.approx(1.0)
    assert rows[1][1] == pytest.approx(1.5)
    assert rows[3][1] == pytest.approx(2.0)


if __name__ == "__main__":
    print_table(
        "T7 AGM bound",
        ["instance", "rho*", "OUT", "bound"],
        run_experiment(),
    )
