"""X7 — the cost-based adaptive planner: predicted vs measured load.

The optimizer (:mod:`repro.planner.optimizer`) prices every applicable
strategy for a query from its statistics and the closed-form MPC load
bounds, then runs the cheapest. This experiment holds those prices
accountable: for each scenario of
:func:`repro.bench.planner_scenarios.planner_scenarios` — one workload
per cost-model regime (uniform/skewed two-way, tiny build side, uniform
and power-law triangles, path, star, Cartesian pair) — it executes
*every* applicable candidate and reports predicted load, measured
L_max, and their ratio.

Asserted shape:

- the chosen strategy matches the scenario's expected regime winner;
- no strategy's measured L_max exceeds twice its prediction;
- the chosen strategy's measured load is within its conformance
  envelope (the same ``factor · predicted + additive`` discipline the
  ``selftest --planner`` gate uses).

The committed BENCH_7 artifact is produced by the measured counterpart:
``python -m repro bench --x7`` (see :mod:`repro.bench.runner`).
"""

import time

from repro.bench.planner_scenarios import planner_scenarios
from repro.planner.optimizer import execute_strategy, plan_query
from repro.query.parser import parse_query

from common import print_table

RATIO_CEILING = 2.0


def planner_experiment(quick=True):
    """One row per (scenario, applicable strategy): the x7 sweep."""
    rows = []
    for scenario in planner_scenarios(quick=quick):
        cq = parse_query(scenario.query)
        explain = plan_query(cq, scenario.relations, scenario.p,
                             seed=scenario.seed)
        assert explain.chosen == scenario.expect, (
            f"{scenario.name}: planner chose {explain.chosen}, "
            f"the regime winner is {scenario.expect}"
        )
        for candidate in explain.candidates:
            if not candidate.applicable:
                continue
            start = time.perf_counter()
            _, stats = execute_strategy(
                cq, scenario.relations, scenario.p, candidate.strategy,
                seed=scenario.seed,
            )
            seconds = time.perf_counter() - start
            predicted = candidate.predicted_load or 0.0
            ratio = stats.max_load / predicted if predicted > 0 else 0.0
            chosen = candidate.strategy == explain.chosen
            assert ratio <= RATIO_CEILING, (
                f"{scenario.name}/{candidate.strategy}: measured "
                f"{stats.max_load} is {ratio:.2f}x the predicted "
                f"{predicted:.1f}"
            )
            if chosen:
                assert candidate.within_envelope(stats.max_load), (
                    f"{scenario.name}: chosen {candidate.strategy} "
                    f"measured {stats.max_load} above envelope "
                    f"{candidate.envelope:.1f}"
                )
            rows.append((
                scenario.name, candidate.strategy,
                "chosen" if chosen else "",
                predicted, stats.max_load, ratio,
                stats.num_rounds, seconds,
            ))
    return rows


def test_x7_planner_predictions(benchmark):
    rows = benchmark.pedantic(planner_experiment, rounds=1, iterations=1)
    print_table(
        "X7 planner predicted vs measured load (quick sizes)",
        ["scenario", "strategy", "", "predicted L", "measured L",
         "ratio", "rounds", "seconds"],
        rows,
    )
    # Every scenario produced exactly one chosen row, and the winner's
    # measured load never beats a rejected candidate's by the kind of
    # margin that would mean the cost model ranked them wrongly.
    chosen = [row for row in rows if row[2] == "chosen"]
    assert len(chosen) == len({row[0] for row in rows})
    assert all(row[5] <= RATIO_CEILING for row in rows)


if __name__ == "__main__":
    print_table(
        "X7 planner predicted vs measured load",
        ["scenario", "strategy", "", "predicted L", "measured L",
         "ratio", "rounds", "seconds"],
        planner_experiment(quick=False),
    )
