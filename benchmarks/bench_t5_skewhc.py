"""T5 (slides 47–51): the SkewHC residual-query table for the triangle.

For each heavy/light pattern of Δ's variables the residual query, its
τ*, and the load N/p^{1/τ*} it is evaluated at (slides 48–50):

  (l,l,l) → R(x,y) ⋈ S(y,z) ⋈ T(z,x)   τ* = 3/2   N/p^{2/3}
  (l,l,h) → R(x,y) ⋈ S(y) ⋈ T(x)       τ* = 2     N/p^{1/2}
  (l,h,h) → R(x) ⋈ T(x)                τ* = 1     N/p

ψ*(Δ) = 2 — the worst row — so SkewHC guarantees N/p^{1/2} on any input.
We print the analytic table and then run SkewHC vs plain HyperCube on a
z-skewed instance.
"""

import itertools

import pytest

from repro.data import Relation, uniform_relation
from repro.multiway import skewhc_join, triangle_hypercube
from repro.query import psi_star, tau_star, triangle_query

from common import print_table

N = 420
P = 16


def residual_table(p=P, n=N):
    q = triangle_query()
    rows = []
    for pattern in itertools.product("lh", repeat=3):
        bound = [v for v, tag in zip(("x", "y", "z"), pattern) if tag == "h"]
        if len(bound) == 3:
            rows.append(("h,h,h", "(membership test)", "-", "-"))
            continue
        residual = q.residual(bound) if bound else q
        tau = tau_star(residual)
        load = n / p ** (1 / tau)
        rows.append(
            (",".join(pattern), str(residual), round(tau, 2), round(load, 1))
        )
    return rows


def run_measurement(n=N, p=P):
    q = triangle_query()
    r = uniform_relation("R", ["x", "y"], n, 40, seed=1)
    s_rows = [(i % 40, 0) for i in range(n - 60)] + [
        (i % 40, 1 + i % 25) for i in range(60)
    ]
    t_rows = [(0, i % 40) for i in range(n - 60)] + [
        (1 + i % 25, i % 40) for i in range(60)
    ]
    s = Relation("S", ["y", "z"], s_rows)
    t = Relation("T", ["z", "x"], t_rows)
    hc = triangle_hypercube(r, s, t, p=p)
    shc = skewhc_join(q, {"R": r, "S": s, "T": t}, p=p)
    return hc, shc


def test_t5_residual_table(benchmark):
    rows = benchmark.pedantic(residual_table, rounds=1, iterations=1)
    print_table(
        f"T5 SkewHC residual queries for Δ (N={N}, p={P}, slides 48–51)",
        ["x,y,z pattern", "residual query", "tau*", "L = N/p^(1/tau*)"],
        rows,
    )
    by_pattern = {row[0]: row for row in rows}
    assert by_pattern["l,l,l"][2] == pytest.approx(1.5)
    assert by_pattern["l,l,h"][2] == pytest.approx(2.0)
    assert by_pattern["l,h,h"][2] == pytest.approx(1.0)
    # ψ* is the max τ* over residuals: 2 for the triangle (slide 51).
    assert psi_star(triangle_query()) == pytest.approx(2.0)


def test_t5_skewhc_vs_hypercube(benchmark):
    hc, shc = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    print(
        f"\n  z-skewed instance: HyperCube L={hc.load}, SkewHC L={shc.load} "
        f"(ψ* bound N/p^(1/2) = {N / P ** 0.5:.0f})"
    )
    assert sorted(shc.output.rows()) == sorted(hc.output.rows())
    assert shc.load < hc.load  # SkewHC handles the heavy hub
    assert shc.load <= 5 * N / P**0.5  # within a constant of N/p^(1/ψ*)


if __name__ == "__main__":
    print_table(
        f"T5 SkewHC residual queries (N={N}, p={P})",
        ["pattern", "residual", "tau*", "load"],
        residual_table(),
    )
    hc, shc = run_measurement()
    print(f"HyperCube L={hc.load}  SkewHC L={shc.load}")
