"""F4 (slide 45): HyperCube speedup degrades from share-LP to p^{1/τ*}.

The speedup of the one-round triangle join relative to a single server:
ideally load shrinks as p^{2/3} (τ* = 3/2). For small p, integral share
rounding wastes servers (e.g. p = 10 can only use a 2×2×2 cube), so the
realized speedup stair-steps below the ideal curve — the slide's
"speedup degrades" message.
"""

import pytest

from repro.data import random_edges, triangle_relations
from repro.multiway import triangle_hypercube

from common import print_table

N = 3000


def run_experiment(n=N):
    edges = random_edges(n, n // 2, seed=2)
    r, s, t = triangle_relations(edges)
    base = triangle_hypercube(r, s, t, p=1).load
    rows = []
    for p in (1, 8, 10, 27, 30, 64):
        run = triangle_hypercube(r, s, t, p=p)
        ideal = p ** (2 / 3)
        measured = base / run.load
        shares = run.details["shares"]
        used = shares["x"] * shares["y"] * shares["z"]
        rows.append((p, used, round(ideal, 2), round(measured, 2)))
    return rows


def test_f4_speedup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"F4 HyperCube speedup vs ideal p^(2/3) (N={N})",
        ["p", "servers used", "ideal speedup", "measured speedup"],
        rows,
    )
    by_p = {row[0]: row for row in rows}
    # Non-cube p wastes servers: p=10 and p=27 use the same 2x2x2 / 3x3x3.
    assert by_p[10][1] == by_p[8][1] == 8
    assert by_p[30][1] == by_p[27][1] == 27
    # Speedup grows with p but stays below the perfect-p envelope by a
    # bounded factor.
    speedups = [row[3] for row in rows]
    assert speedups == sorted(speedups)
    for p, _used, ideal, measured in rows[1:]:
        assert measured >= ideal / 4
        assert measured <= 2 * ideal


if __name__ == "__main__":
    print_table(
        "F4 HyperCube speedup",
        ["p", "servers used", "ideal speedup", "measured speedup"],
        run_experiment(),
    )
