"""Timing benchmarks of the compute kernels (pytest-benchmark proper).

Unlike the table benches — which measure the *model* costs (L, r, C) —
these time the actual Python kernels, so regressions in the hot paths
show up: local join kernels, the WCOJ evaluator vs the binary local
plan, PSRS, the share LP, and the HyperCube routing loop.
"""

import numpy as np
import pytest

from repro.data import random_edges, triangle_relations, uniform_relation
from repro.joins.local import hash_join_rows, merge_join_rows
from repro.multiway import hypercube_join
from repro.multiway.wcoj import generic_join
from repro.query import equal_size_shares, triangle_query
from repro.sorting import psrs_sort


@pytest.fixture(scope="module")
def join_rows():
    rng = np.random.default_rng(0)
    left = [tuple(t) for t in rng.integers(0, 400, size=(3000, 2)).tolist()]
    right = [tuple(t) for t in rng.integers(0, 400, size=(3000, 2)).tolist()]
    return left, right


def test_kernel_hash_join(benchmark, join_rows):
    left, right = join_rows
    out = benchmark(hash_join_rows, left, right, (1,), (0,), (1,))
    assert len(out) > 0


def test_kernel_merge_join(benchmark, join_rows):
    left, right = join_rows
    out = benchmark(merge_join_rows, left, right, (1,), (0,), (1,))
    assert len(out) > 0


def test_kernel_psrs(benchmark):
    rng = np.random.default_rng(1)
    items = rng.integers(0, 10**9, size=5000).tolist()
    out, _stats = benchmark(psrs_sort, items, 8)
    assert out == sorted(items)


def test_kernel_share_lp(benchmark):
    result = benchmark(equal_size_shares, triangle_query(), 10**6, 64)
    assert result.integral == {"x": 4, "y": 4, "z": 4}


def test_kernel_hypercube_routing(benchmark):
    edges = random_edges(1500, 300, seed=2)
    r, s, t = triangle_relations(edges)
    rels = {"R": r, "S": s, "T": t}

    run = benchmark.pedantic(
        hypercube_join, args=(triangle_query(), rels, 27), rounds=1, iterations=1
    )
    assert run.rounds == 1


def test_kernel_generic_join(benchmark):
    edges = random_edges(400, 60, seed=3)
    r, s, t = triangle_relations(edges)
    rels = {"R": r, "S": s, "T": t}
    out = benchmark.pedantic(
        generic_join, args=(triangle_query(), rels), rounds=1, iterations=1
    )
    assert sorted(out.rows()) == sorted(triangle_query().evaluate(rels).rows())


def test_kernel_local_plan_evaluation(benchmark):
    edges = random_edges(400, 60, seed=3)
    r, s, t = triangle_relations(edges)
    rels = {"R": r, "S": s, "T": t}
    q = triangle_query()
    out = benchmark.pedantic(q.evaluate, args=(rels,), rounds=1, iterations=1)
    assert len(out) == len(q.evaluate(rels))
