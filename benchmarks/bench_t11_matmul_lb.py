"""T11 (slides 123–125): the per-server product bound behind the matmul LBs.

Slide 123: a server receiving L elements can participate in at most
O(L^{3/2}) elementary products — the AGM bound with ρ* = 3/2 applied to
the join view of multiplication. Slide 125 turns it into the round bound
r ≥ n³/(p·L^{3/2}). We instrument square-block runs, count every
server's received elements and elementary products, and verify both.
"""

import numpy as np
import pytest

from repro.matmul import square_block_matmul
from repro.theory import matmul_products_per_server, matmul_rounds_lower_bound

from common import print_table

N = 24


def run_experiment(n=N):
    rng = np.random.default_rng(11)
    a = rng.random((n, n))
    b = rng.random((n, n))
    rows = []
    for block, p in ((12, 4), (6, 16), (4, 36), (6, 8)):
        h = -(-n // block)
        _, stats = square_block_matmul(a, b, p=p, block_size=block)
        # Per-server totals across the whole run.
        per_server_received = [
            sum(r.received[sid] for r in stats.rounds) for sid in range(p)
        ]
        # Each received block pair of side b yields b³ products.
        products_per_pair = block**3
        per_server_products = [
            (recv // (2 * block * block)) * products_per_pair
            for recv in per_server_received
        ]
        worst_ratio = max(
            prod / matmul_products_per_server(recv) if recv else 0.0
            for recv, prod in zip(per_server_received, per_server_products)
        )
        lb = matmul_rounds_lower_bound(n, p, 2 * block * block)
        rows.append(
            (
                f"b={block}, p={p}",
                max(per_server_received),
                max(per_server_products),
                round(worst_ratio, 3),
                stats.num_rounds,
                round(lb, 2),
            )
        )
    return rows


def test_t11_product_bound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T11 per-server products vs AGM bound L^(3/2) (n={N}, slides 123–125)",
        ["config", "max received", "max products", "products / received^1.5",
         "rounds", "round LB"],
        rows,
    )
    total_products = N**3
    for _config, _recv, _prod, ratio, rounds, lb in rows:
        # AGM: no server exceeds (received)^{3/2} products.
        assert ratio <= 1.0 + 1e-9
        # Round counts respect the slide-125 bound.
        assert rounds >= lb - 1e-9
    # Sanity: all products were performed somewhere.
    del total_products


if __name__ == "__main__":
    print_table(
        f"T11 product bound (n={N})",
        ["config", "max recv", "max products", "ratio", "r", "round LB"],
        run_experiment(),
    )
