"""T3 (slides 27–31): two-way joins under skew.

Slide 27: on single-join-value data the parallel hash join pays L = IN;
the join degenerates to a Cartesian product where the grid algorithm
pays 2√(|R||S|/p). Slides 29–31: the heavy/light skew join and the
parallel sort join both achieve L = O(√(OUT/p) + IN/p) on *any* input.
We run all three plus the naive hash join across skew levels.
"""

import math

import pytest

from repro.data import single_value_relation, skewed_relation, uniform_relation
from repro.joins import parallel_hash_join, skew_join, sort_join

from common import print_table

N = 3000
P = 16


def workloads():
    yield "uniform", (
        uniform_relation("R", ["x", "y"], N, 2 * N, seed=1),
        uniform_relation("S", ["y", "z"], N, 2 * N, seed=2),
    )
    yield "zipf s=1.2", (
        skewed_relation("R", ["x", "y"], N, "y", universe=N // 4, s=1.2, seed=3),
        skewed_relation("S", ["y", "z"], N, "y", universe=N // 4, s=1.2, seed=4),
    )
    yield "single value", (
        single_value_relation("R", ["x", "y"], N // 4, "y"),
        single_value_relation("S", ["y", "z"], N // 4, "y"),
    )


def run_experiment():
    rows = []
    for label, (r, s) in workloads():
        in_size = len(r) + len(s)
        hash_run = parallel_hash_join(r, s, p=P)
        skew_run = skew_join(r, s, p=P)
        sort_run = sort_join(r, s, p=P)
        out = len(hash_run.output)
        optimal = math.sqrt(out / P) + in_size / P
        assert len(skew_run.output) == out and len(sort_run.output) == out
        rows.append(
            (
                label,
                in_size,
                out,
                round(optimal, 1),
                hash_run.load,
                skew_run.load,
                sort_run.load,
            )
        )
    return rows


def test_t3_skew_join(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T3 two-way joins under skew (p={P})",
        ["workload", "IN", "OUT", "sqrt(OUT/p)+IN/p", "hash L", "skew L", "sort L"],
        rows,
    )
    uniform, zipf, single = rows
    # Uniform: all three are within a small factor of IN/p.
    assert uniform[4] < 3 * uniform[1] / P
    # Extreme skew: hash join collapses to L = IN…
    assert single[4] == single[1]
    # …while skew-aware algorithms track the optimal bound.
    for load in (single[5], single[6]):
        assert load <= 5 * single[3]
        assert load < single[4] / 2
    # Zipf: skew-aware beats naive hashing.
    assert zipf[5] < zipf[4]


if __name__ == "__main__":
    print_table(
        f"T3 two-way joins under skew (p={P})",
        ["workload", "IN", "OUT", "optimal bound", "hash L", "skew L", "sort L"],
        run_experiment(),
    )
