"""F6 (slides 79–95): GYM round/load trade-offs across GHD shapes.

Two experiments:

1. Vanilla vs optimized GYM on the 4-star (slides 80–94): one semijoin
   or join per round (~9 rounds) vs level-packed rounds (~4).
2. The slide-95 trade-off on the path query: chain GHD (w=1, d=n),
   flat GHD (w≈n/2, d=1), balanced GHD (w=3, d=log n) — rounds follow
   depth, loads follow the IN^w bag-materialization term.
"""

import pytest

from repro.data import uniform_relation
from repro.multiway import gym
from repro.query import (
    path_balanced_ghd,
    path_chain_ghd,
    path_flat_ghd,
    path_query,
    star_query,
)

from common import print_table

P = 8


def star_experiment():
    q = star_query(4)
    rels = {
        f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 400, 120, seed=i)
        for i in range(1, 5)
    }
    vanilla = gym(q, rels, p=P, variant="vanilla")
    optimized = gym(q, rels, p=P, variant="optimized")
    assert sorted(vanilla.output.rows()) == sorted(optimized.output.rows())
    return [
        ("vanilla", vanilla.rounds, vanilla.load, vanilla.stats.total_communication),
        ("optimized", optimized.rounds, optimized.load, optimized.stats.total_communication),
    ]


def path_experiment():
    n = 6
    q = path_query(n)
    rels = {
        f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 60, 25, seed=i)
        for i in range(1, n + 1)
    }
    shapes = [
        ("chain (w=1, d=n-1)", path_chain_ghd(n)),
        ("balanced (w≤3, d≈log n)", path_balanced_ghd(n)),
        ("flat (w≈n/2, d=1)", path_flat_ghd(n)),
    ]
    rows = []
    outputs = []
    for label, ghd in shapes:
        run = gym(q, rels, p=P, ghd=ghd, variant="optimized")
        outputs.append(set(run.output.rows()))
        rows.append(
            (label, ghd.width, ghd.depth, run.rounds, run.load,
             run.stats.total_communication)
        )
    assert outputs[0] == outputs[1] == outputs[2]
    return rows


def test_f6_star_vanilla_vs_optimized(benchmark):
    rows = benchmark.pedantic(star_experiment, rounds=1, iterations=1)
    print_table(
        f"F6a GYM on star-4 (p={P}, slides 80–94)",
        ["variant", "rounds", "L", "C"],
        rows,
    )
    vanilla, optimized = rows
    assert vanilla[1] >= 2 * optimized[1]  # slides: 9 vs 4
    assert optimized[1] <= 4


def test_f6_path_ghd_tradeoff(benchmark):
    rows = benchmark.pedantic(path_experiment, rounds=1, iterations=1)
    print_table(
        f"F6b path-6 GHD shapes under optimized GYM (p={P}, slide 95)",
        ["GHD", "width", "depth", "rounds", "L", "C"],
        rows,
    )
    chain, balanced, flat = rows
    # Rounds track depth…
    assert flat[3] <= balanced[3] <= chain[3]
    # …while load tracks width (the IN^w bag joins).
    assert flat[4] >= chain[4]
    assert flat[1] > balanced[1] > chain[1]


if __name__ == "__main__":
    print_table("F6a star-4", ["variant", "r", "L", "C"], star_experiment())
    print_table(
        "F6b path GHD shapes", ["GHD", "w", "d", "r", "L", "C"], path_experiment()
    )
