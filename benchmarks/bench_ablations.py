"""Ablations for the design choices DESIGN.md calls out.

1. Share rounding — LP-optimal integral search vs naive floor rounding:
   load inflation of bad roundings at awkward p.
2. Heavy-hitter threshold in the skew join — IN/p vs looser/tighter.
3. PSRS splitter source — regular sampling vs random sampling.
4. GYM GHD depth — already covered by bench_f6; here: join-tree
   flattening on the star query (GYO chain vs depth-minimized tree).
"""

import math

import numpy as np
import pytest

from repro.data import (
    random_edges,
    skewed_relation,
    triangle_relations,
    uniform_relation,
)
from repro.joins import skew_join
from repro.multiway import gym, hypercube_join
from repro.query import star_query, triangle_query, width1_ghd
from repro.sorting import psrs_sort

from common import print_table


def share_rounding_ablation():
    q = triangle_query()
    edges = random_edges(2000, 1000, seed=3)
    r, s, t = triangle_relations(edges)
    rels = {"R": r, "S": s, "T": t}
    rows = []
    for p in (27, 30, 60):
        optimal = hypercube_join(q, rels, p=p)
        # Naive rounding: floor(p^(1/3)) per dimension.
        share = max(1, int(p ** (1 / 3)))
        naive = hypercube_join(q, rels, p=p, shares={"x": share, "y": share, "z": share})
        rows.append((p, str(optimal.details["shares"]), optimal.load,
                     f"{share}^3", naive.load))
    return rows


def threshold_ablation():
    r = skewed_relation("R", ["x", "y"], 3000, "y", universe=600, s=1.3, seed=5)
    s = skewed_relation("S", ["y", "z"], 3000, "y", universe=600, s=1.3, seed=6)
    p = 16
    in_size = len(r) + len(s)
    rows = []
    for label, factor in (("IN/p (paper)", 1.0), ("4·IN/p", 4.0), ("IN/(4p)", 0.25)):
        run = skew_join(r, s, p=p, threshold=factor * in_size / p)
        rows.append((label, run.load, run.rounds))
    return rows


def psrs_sampling_ablation():
    rng = np.random.default_rng(8)
    items = rng.integers(0, 10**9, size=6000).tolist()
    rows = []
    for label, random_sampling in (("regular sample", False), ("random sample", True)):
        out, stats = psrs_sort(items, p=12, use_random_sampling=random_sampling)
        assert out == sorted(items)
        partition = next(r for r in stats.rounds if r.label == "psrs-partition")
        rows.append((label, partition.max_load, round(partition.imbalance, 3)))
    return rows


def ghd_flatten_ablation():
    q = star_query(5)
    rels = {
        f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 200, 60, seed=i)
        for i in range(1, 6)
    }
    rows = []
    for label, flatten in (("GYO chain", False), ("depth-minimized", True)):
        ghd = width1_ghd(q, flatten=flatten)
        run = gym(q, rels, p=8, ghd=ghd, variant="optimized")
        rows.append((label, ghd.depth, run.rounds, run.load))
    return rows


def test_ablation_share_rounding(benchmark):
    rows = benchmark.pedantic(share_rounding_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: share rounding (triangle HyperCube)",
        ["p", "searched shares", "L", "naive shares", "naive L"],
        rows,
    )
    # Searched rounding never loses to the naive cube rounding.
    for _p, _shares, load, _naive_shares, naive_load in rows:
        assert load <= naive_load * 1.05


def test_ablation_heavy_threshold(benchmark):
    rows = benchmark.pedantic(threshold_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: skew-join heavy-hitter threshold",
        ["threshold", "L", "rounds"],
        rows,
    )
    paper = rows[0][1]
    # The paper's IN/p is within 2x of the best of the three.
    best = min(row[1] for row in rows)
    assert paper <= 2 * best


def test_ablation_psrs_sampling(benchmark):
    rows = benchmark.pedantic(psrs_sampling_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: PSRS splitter source",
        ["sampling", "partition L", "imbalance"],
        rows,
    )
    regular, random_ = rows
    # Regular sampling's determinism keeps imbalance modest; random is
    # close but noisier. Both stay within 2x of perfect balance.
    assert regular[2] < 2.0
    assert random_[2] < 2.5


def test_ablation_ghd_flatten(benchmark):
    rows = benchmark.pedantic(ghd_flatten_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: join-tree depth minimization (star-5, optimized GYM)",
        ["join tree", "depth", "rounds", "L"],
        rows,
    )
    chain, flattened = rows
    assert flattened[1] <= chain[1]
    assert flattened[2] <= chain[2]


if __name__ == "__main__":
    print_table("share rounding", ["p", "shares", "L", "naive", "naive L"],
                share_rounding_ablation())
    print_table("heavy threshold", ["threshold", "L", "r"], threshold_ablation())
    print_table("psrs sampling", ["sampling", "L", "imbalance"],
                psrs_sampling_ablation())
    print_table("ghd flatten", ["tree", "depth", "r", "L"], ghd_flatten_ablation())
