"""F2 (slide 26): the degree-threshold curve d(p).

The slide plots, for IN = 100 billion tuples, the largest value degree d
for which the hash-partition load stays within 30% of IN/p with
probability 95% — d(100) ≈ 4 million, falling as p grows ("as the number
of servers grows, it is more likely that we observe the effects of
skew"). The curve is analytic (closed form from the slide-25 bound); we
regenerate it exactly and validate the bound empirically at laptop scale.
"""

import pytest

from repro.theory import (
    degree_threshold,
    empirical_overload_probability,
    threshold_curve,
)

from common import print_table

IN_SIZE = 100e9  # 100 billion tuples, as in the slide
P_VALUES = [50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def run_experiment():
    return threshold_curve(IN_SIZE, P_VALUES, delta=0.3, confidence=0.95)


def test_f2_threshold_curve(benchmark):
    curve = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F2 degree threshold d(p) — IN=100e9, ≤30% overload w.p. 95% (slide 26)",
        ["p", "d threshold (millions)"],
        [(p, d / 1e6) for p, d in curve],
    )
    values = dict(curve)
    # Slide annotation: p = 100 → d ≈ 4,000,000.
    assert 3e6 < values[100] < 5e6
    # Monotonically decreasing in p (the slide's main message).
    ds = [d for _, d in curve]
    assert ds == sorted(ds, reverse=True)
    # Super-linear decay: d(1000) < d(100)/10.
    assert values[1000] < values[100] / 10


def test_f2_empirical_validation(benchmark):
    """Small-scale check that the analytic threshold is conservative."""

    def measure():
        in_small, p = 40_000, 16
        d_safe = max(1, int(degree_threshold(in_small, p, delta=0.5, confidence=0.95)))
        prob = empirical_overload_probability(
            n_keys=in_small // d_safe, degree=d_safe, p=p, delta=0.5, trials=60
        )
        return d_safe, prob

    d_safe, prob = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n  empirical overload prob at threshold degree d={d_safe}: {prob:.3f}")
    assert prob <= 0.05 + 0.05  # bound holds with slack for trial noise


if __name__ == "__main__":
    print_table(
        "F2 degree threshold d(p)",
        ["p", "d threshold (millions)"],
        [(p, d / 1e6) for p, d in run_experiment()],
    )
