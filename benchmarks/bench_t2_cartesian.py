"""T2 (slide 28): the grid Cartesian product's optimal load.

The slide proves L = 2·√(|R||S|/p) with the optimal rectangle
|R|/p1 = |S|/p2, degenerating to broadcast (p1 = 1) when |R| ≪ |S|. We
sweep size ratios and server counts and compare measured loads with the
closed form, checking the degeneration point.
"""

import pytest

from repro.data import Relation
from repro.joins import cartesian_product, optimal_rectangle, predicted_cartesian_load

from common import print_table


def make(n, name, attr):
    return Relation(name, [attr], [(i,) for i in range(n)])


def run_experiment():
    rows = []
    for r_size, s_size, p in [
        (400, 400, 16),
        (400, 400, 64),
        (100, 1600, 16),
        (20, 3200, 16),
        (3200, 20, 16),
    ]:
        r = make(r_size, "R", "x")
        s = make(s_size, "S", "z")
        run = cartesian_product(r, s, p=p)
        p1, p2 = optimal_rectangle(r_size, s_size, p)
        predicted = predicted_cartesian_load(r_size, s_size, p)
        rows.append(
            (r_size, s_size, p, f"{p1}x{p2}", round(predicted, 1), run.load,
             len(run.output))
        )
    return rows


def test_t2_cartesian(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "T2 grid Cartesian product (slide 28)",
        ["|R|", "|S|", "p", "grid", "2·sqrt(|R||S|/p)", "measured L", "OUT"],
        rows,
    )
    for r_size, s_size, p, _grid, predicted, load, out in rows:
        assert out == r_size * s_size  # exact product
        assert load <= 2.2 * predicted  # measured tracks the closed form
        assert load >= 0.4 * predicted
    # Degeneration: |R| ≪ |S| uses a 1×p grid (broadcast R).
    assert rows[3][3] == "1x16"
    assert rows[4][3] == "16x1"
    # More servers lower the load (rows 0 vs 1).
    assert rows[1][5] < rows[0][5]


if __name__ == "__main__":
    print_table(
        "T2 grid Cartesian product",
        ["|R|", "|S|", "p", "grid", "predicted", "measured L", "OUT"],
        run_experiment(),
    )
