"""T10 (slides 109–122): matrix-multiplication cost table.

The slide-122 summary:

  algorithm        communication C      rounds r
  rectangle-block  O(n⁴ / L)            1
  square-block     O(n³ / √L)           O(n³/(pL^{3/2}) + log_L n)

We run both (plus the SQL-on-MPC baseline) on the same matrices at
matched loads and print measured (C, r, L) against the formulas.
"""

import numpy as np
import pytest

from repro.matmul import (
    rectangle_block_costs,
    rectangle_block_matmul,
    sql_matmul,
    square_block_costs,
    square_block_matmul,
)

from common import print_table

N = 24


def run_experiment(n=N):
    rng = np.random.default_rng(5)
    a = rng.random((n, n))
    b = rng.random((n, n))
    truth = a @ b
    rows = []

    c, stats = sql_matmul(a, b, p=16)
    assert np.allclose(c, truth)
    rows.append(
        ("SQL join+aggregate", "n³ partials", stats.max_load, stats.num_rounds,
         stats.total_communication, n**3 + n**2)
    )

    for groups in (2, 4):
        c, stats = rectangle_block_matmul(a, b, groups=groups)
        assert np.allclose(c, truth)
        t = n // groups
        predicted_c = rectangle_block_costs(n, 2 * t * n)["communication"]
        rows.append(
            (f"rectangle K={groups}", f"L=2tn={2*t*n}", stats.max_load,
             stats.num_rounds, stats.total_communication, predicted_c)
        )

    for block in (12, 6, 4):
        h = n // block
        c, stats = square_block_matmul(a, b, p=h * h, block_size=block)
        assert np.allclose(c, truth)
        predicted_c = square_block_costs(n, h * h, 2 * block * block)["communication"]
        rows.append(
            (f"square b={block} (H={h})", f"L=2b²={2*block*block}", stats.max_load,
             stats.num_rounds, stats.total_communication, predicted_c)
        )
    return rows


def test_t10_matmul_costs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T10 matmul cost table (n={N}, slide 122)",
        ["algorithm", "load budget", "measured L", "r", "measured C", "predicted C"],
        rows,
    )
    # Rectangle: exactly 1 round, C within the 4n⁴/L form.
    rect = [row for row in rows if row[0].startswith("rectangle")]
    for row in rect:
        assert row[3] == 1
        assert row[4] == pytest.approx(row[5], rel=0.01)
    # Square: rounds grow as blocks shrink; C = 2n³/b matches exactly.
    square = [row for row in rows if row[0].startswith("square")]
    round_counts = [row[3] for row in square]
    assert round_counts == sorted(round_counts)
    for row in square:
        assert row[4] == pytest.approx(row[5], rel=0.01)
    # At matched load (rectangle K=4 and square b=12 both have L=288)
    # the multi-round square algorithm communicates half as much.
    rect_288 = next(row for row in rect if row[2] == 288)
    square_288 = next(row for row in square if row[2] == 288)
    assert square_288[4] < rect_288[4]


if __name__ == "__main__":
    print_table(
        f"T10 matmul cost table (n={N})",
        ["algorithm", "budget", "L", "r", "C", "predicted C"],
        run_experiment(),
    )
