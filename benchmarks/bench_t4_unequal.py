"""T4 (slides 42–44): the unequal-size triangle load table.

For Δ = R ⋈ S ⋈ T with arbitrary sizes, the optimal one-round load is
the max over edge packings of four candidates:

  (1/2,1/2,1/2) → (|R||S||T|)^{1/3} / p^{2/3}   (balanced sizes)
  (1,0,0)       → |R| / p                        (R dominates, p_z = 1)
  (0,1,0)       → |S| / p
  (0,0,1)       → |T| / p

We compute the winning packing and predicted load per size profile, run
HyperCube with optimized shares, and check share degeneration (slide 44:
a small relation forces its private variable's share to 1).
"""

import pytest

from repro.data import uniform_relation
from repro.multiway import hypercube_join
from repro.query import maximal_load_over_packings, optimal_shares, triangle_query

from common import print_table

P = 64


def make_triangle(r_size, s_size, t_size, universe, seed=0):
    return {
        "R": uniform_relation("R", ["x", "y"], r_size, universe, seed=seed),
        "S": uniform_relation("S", ["y", "z"], s_size, universe, seed=seed + 1),
        "T": uniform_relation("T", ["z", "x"], t_size, universe, seed=seed + 2),
    }


def run_experiment():
    q = triangle_query()
    profiles = [
        ("balanced", 2000, 2000, 2000),
        ("R heavy", 8000, 500, 500),
        ("S heavy", 500, 8000, 500),
        ("T heavy", 500, 500, 8000),
    ]
    rows = []
    for label, r_size, s_size, t_size in profiles:
        sizes = {"R": r_size, "S": s_size, "T": t_size}
        predicted, packing = maximal_load_over_packings(q, sizes, P)
        assignment = optimal_shares(q, sizes, P)
        rels = make_triangle(r_size, s_size, t_size, universe=4000, seed=hash(label) % 100)
        run = hypercube_join(q, rels, p=P)
        packing_str = "(" + ",".join(f"{packing[a]:.2g}" for a in ("R", "S", "T")) + ")"
        shares_str = "x".join(str(assignment.integral[v]) for v in ("x", "y", "z"))
        # Expected *total* per-server load: sum over atoms of
        # |S_j| / prod of the shares of the atom's variables.
        expected_total = sum(
            sizes[a.name]
            / (assignment.integral[a.variables[0]] * assignment.integral[a.variables[1]])
            for a in q.atoms
        )
        rows.append(
            (label, packing_str, shares_str, round(predicted, 1),
             round(expected_total, 1), run.load)
        )
    return rows


def test_t4_unequal_sizes(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"T4 unequal-size triangle (p={P}, slide 42–44)",
        ["sizes", "winning packing u", "integral shares", "max-atom L",
         "expected total L", "measured L"],
        rows,
    )
    balanced, r_heavy, s_heavy, t_heavy = rows
    # Balanced sizes pick the all-halves packing and a cube grid.
    assert balanced[1] == "(0.5,0.5,0.5)"
    assert balanced[2] == "4x4x4"
    # A dominant relation wins with its singleton packing, and the
    # variable it lacks degenerates to share 1 (slide 44).
    assert r_heavy[1] == "(1,0,0)"
    assert r_heavy[2].endswith("x1")  # p_z = 1
    assert s_heavy[2].startswith("1x")  # p_x = 1
    # Measured loads track the expected per-server total within noise.
    for row in rows:
        assert 0.5 * row[4] <= row[5] <= 2.5 * row[4]


if __name__ == "__main__":
    print_table(
        f"T4 unequal-size triangle (p={P})",
        ["sizes", "packing", "shares", "max-atom L", "expected L", "measured L"],
        run_experiment(),
    )
