"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file reproduces one table or figure of the tutorial:
it computes the same rows/series the paper reports, prints them (visible
with ``pytest -s`` or by running the file directly), and asserts the
qualitative *shape* — who wins, how costs scale — since absolute numbers
depend on the simulated substrate.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Print an aligned text table (the bench's paper-facing output)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title}")
    print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in str_rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 10_000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def geometric_ratio(series: Sequence[float]) -> list[float]:
    """Successive ratios of a series — for eyeballing scaling exponents."""
    return [b / a for a, b in zip(series, series[1:]) if a]
