"""T6 (slides 51–54): one-round vs multi-round loads for three queries.

The summary table of the multi-round section: for the triangle, the
two-way join R(x,y) ⋈ S(y,z), and the intersection path
R(x) ⋈ S(x,y) ⋈ T(y):

  query      τ* (no-skew 1rd)  ψ* (skew 1rd)  multi-round no-skew
  triangle   3/2 → IN/p^{2/3}  2 → IN/p^{1/2}  IN/p
  2-way join 1   → IN/p        2 → IN/p^{1/2}  IN/p
  2-path     2   → IN/p^{1/2}  2 → IN/p^{1/2}  IN/p

We print the analytic exponents (computed by the LPs, not hard-coded)
and measure the 2-path's skewed case: a 1-round HyperCube pays
~IN/p^{1/2} while the 2-round semijoin plan stays at IN/p (slide 58).
"""

import pytest

from repro.data import Relation, single_value_relation
from repro.multiway import hypercube_join, two_path_semijoin_plan
from repro.query import (
    Atom,
    ConjunctiveQuery,
    psi_star,
    tau_star,
    triangle_query,
    two_path_query,
)

from common import print_table

P = 16


def analytic_table():
    queries = [
        ("triangle", triangle_query()),
        ("2-way join", ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])),
        ("2-path R,S,T", two_path_query()),
    ]
    rows = []
    for label, q in queries:
        tau = tau_star(q)
        psi = psi_star(q)
        rows.append(
            (
                label,
                round(tau, 2),
                f"IN/p^{1/tau:.2f}",
                round(psi, 2),
                f"IN/p^{1/psi:.2f}",
                "IN/p",
            )
        )
    return rows


def run_two_path_measurement(p=P):
    n = 800
    r = Relation("R", ["x"], [(0,)])
    s = single_value_relation("S", ["x", "y"], n, "x", value=0)
    t = Relation("T", ["y"], [(s.rows()[i][1],) for i in range(0, n, 2)])
    in_size = len(r) + len(s) + len(t)

    one_round = hypercube_join(two_path_query(), {"R": r, "S": s, "T": t}, p=p)
    multi_round = two_path_semijoin_plan(r, s, t, p=p)
    assert sorted(multi_round.output.rows()) == sorted(
        one_round.output.project(["x", "y"]).rows()
    )
    return in_size, one_round, multi_round


def test_t6_analytic_table(benchmark):
    rows = benchmark.pedantic(analytic_table, rounds=1, iterations=1)
    print_table(
        "T6 one-round vs multi-round loads (slides 51–54)",
        ["query", "tau*", "no-skew 1-round L", "psi*", "skew 1-round L",
         "multi-round no-skew L"],
        rows,
    )
    triangle, join2, path2 = rows
    assert triangle[1] == pytest.approx(1.5) and triangle[3] == pytest.approx(2.0)
    assert join2[1] == pytest.approx(1.0) and join2[3] == pytest.approx(2.0)
    assert path2[1] == pytest.approx(2.0) and path2[3] == pytest.approx(2.0)


def test_t6_two_path_rounds_beat_one_round(benchmark):
    in_size, one_round, multi_round = benchmark.pedantic(
        run_two_path_measurement, rounds=1, iterations=1
    )
    print(
        f"\n  2-path, skewed (IN={in_size}, p={P}): 1-round L={one_round.load} "
        f"(bound IN/sqrt(p)={in_size / P ** 0.5:.0f}), "
        f"2-round semijoin L={multi_round.load} (bound IN/p={in_size / P:.0f})"
    )
    assert multi_round.rounds == 2
    # Multi-round escapes the ψ* barrier (slides 53–54).
    assert multi_round.load < one_round.load
    assert multi_round.load <= 4 * in_size / P


if __name__ == "__main__":
    print_table(
        "T6 one-round vs multi-round",
        ["query", "tau*", "1rd no-skew", "psi*", "1rd skew", "multi-rd"],
        analytic_table(),
    )
    in_size, one, multi = run_two_path_measurement()
    print(f"2-path skewed: 1-round L={one.load}, semijoin plan L={multi.load}")
