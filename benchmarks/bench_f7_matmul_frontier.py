"""F7 (slide 126): the communication-vs-load frontier for matmul.

The slide plots total communication C against per-server load L:

- the one-round lower bound C = n⁴/L (steeper),
- the multi-round lower bound C = n³/√L (flatter),
- and annotations "requires ≥ k rounds" where the curves separate.

We regenerate both analytic curves and place measured points from the
rectangle-block (one-round) and square-block (multi-round) algorithms on
them, checking each algorithm sits on its own bound.
"""

import numpy as np
import pytest

from repro.matmul import rectangle_block_matmul, square_block_matmul
from repro.theory import (
    matmul_communication_lower_bound,
    matmul_one_round_communication_lower_bound,
    minimum_rounds_at_load,
)

from common import print_table

N = 24


def run_experiment(n=N):
    rng = np.random.default_rng(9)
    a = rng.random((n, n))
    b = rng.random((n, n))
    rows = []
    for groups in (2, 3, 4, 6):
        _, stats = rectangle_block_matmul(a, b, groups=groups)
        load = stats.max_load
        rows.append(
            ("rectangle 1-round", load,
             stats.total_communication,
             matmul_one_round_communication_lower_bound(n, load),
             matmul_communication_lower_bound(n, load),
             1)
        )
    for block in (12, 8, 6, 4):
        h = -(-n // block)
        _, stats = square_block_matmul(a, b, p=h * h, block_size=block)
        load = stats.max_load
        rows.append(
            ("square multi-round", load,
             stats.total_communication,
             matmul_one_round_communication_lower_bound(n, load),
             matmul_communication_lower_bound(n, load),
             stats.num_rounds)
        )
    return rows


def test_f7_matmul_frontier(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"F7 C-vs-L frontier (n={N}, slide 126)",
        ["algorithm", "L", "measured C", "1-round LB n⁴/L", "multi-round LB n³/√L",
         "rounds"],
        rows,
    )
    for name, load, c, one_round_lb, multi_lb, rounds in rows:
        # No run beats the all-rounds lower bound.
        assert c >= 0.9 * multi_lb
        if rounds == 1:
            # One-round runs cannot beat the one-round bound…
            assert c >= 0.9 * one_round_lb
        else:
            # …while multi-round runs dip below it at small loads, which
            # is exactly why those loads "require ≥ k rounds".
            if one_round_lb > 3 * multi_lb:
                assert c < one_round_lb
                assert rounds >= minimum_rounds_at_load(N, load) - 1
    # The separation grows as L shrinks (the slide's wedge).
    small_l = min(rows, key=lambda r: r[1])
    assert small_l[3] / small_l[4] > 4


if __name__ == "__main__":
    print_table(
        f"F7 C-vs-L frontier (n={N})",
        ["algorithm", "L", "C", "n⁴/L", "n³/√L", "r"],
        run_experiment(),
    )
