"""X1 — extension results beyond the core tables.

Covers the tutorial's "Other Results" pointers (slide 127) and the
practice-oriented machinery a downstream user gets:

- non-square matrix multiplication (one-round rectangular blocks);
- sparse inputs through the SQL-on-MPC view (communication scales with
  the number of partial products, not n³);
- the cost-based planner: across a workload mix it must always land
  within a small factor of the best algorithm on the menu;
- GROUP BY with combiners (slide 52's workload) under customer skew.
"""

import numpy as np
import pytest

from repro.data import Relation, skewed_relation, uniform_relation
from repro.data.generators import single_value_relation
from repro.joins import parallel_hash_join, skew_join, sort_join
from repro.matmul import (
    balanced_groups,
    rectangular_block_matmul,
    rectangular_costs,
    sql_matmul,
)
from repro.multiway.aggregate import group_by, two_phase_group_by
from repro.multiway.hypercube import hypercube_join
from repro.multiway.reduced import reduced_hypercube
from repro.query import path_query
from repro.planner import execute_two_way_join

from common import print_table


def rectangular_experiment():
    rng = np.random.default_rng(1)
    rows = []
    for n1, n2, n3, p in ((32, 8, 32, 16), (8, 32, 8, 16), (64, 4, 16, 16)):
        a = rng.random((n1, n2))
        b = rng.random((n2, n3))
        k1, k3 = balanced_groups(n1, n3, p)
        c, stats = rectangular_block_matmul(a, b, k1, k3)
        assert np.allclose(c, a @ b)
        predicted = rectangular_costs(n1, n2, n3, k1, k3)
        rows.append(
            (f"{n1}x{n2} · {n2}x{n3}", f"{k1}x{k3}", stats.max_load,
             predicted["load"], stats.num_rounds)
        )
    return rows


def sparse_experiment():
    rng = np.random.default_rng(2)
    n = 32
    rows = []
    for density in (1.0, 0.25, 0.05):
        a = rng.random((n, n)) * (rng.random((n, n)) < density)
        b = rng.random((n, n)) * (rng.random((n, n)) < density)
        c, stats = sql_matmul(a, b, p=16)
        assert np.allclose(c, a @ b)
        nnz = int((a != 0).sum() + (b != 0).sum())
        rows.append((f"{density:.0%}", nnz, stats.total_communication))
    return rows


def planner_experiment():
    workloads = [
        ("uniform", uniform_relation("R", ["x", "y"], 600, 1200, seed=3),
         uniform_relation("S", ["y", "z"], 600, 1200, seed=4)),
        ("zipf", skewed_relation("R", ["x", "y"], 600, "y", 120, 1.4, seed=5),
         skewed_relation("S", ["y", "z"], 600, "y", 120, 1.4, seed=6)),
        ("single-value", single_value_relation("R", ["x", "y"], 150, "y"),
         single_value_relation("S", ["y", "z"], 150, "y")),
        ("tiny-left", Relation("R", ["x", "y"], [(1, 2), (3, 4)]),
         uniform_relation("S", ["y", "z"], 1000, 60, seed=7)),
    ]
    rows = []
    for label, r, s in workloads:
        plan, run = execute_two_way_join(r, s, p=16)
        menu = {
            "hash": parallel_hash_join(r, s, p=16).load,
            "skew": skew_join(r, s, p=16).load,
            "sort": sort_join(r, s, p=16).load,
        }
        best = min(menu.values())
        rows.append((label, plan.algorithm, run.load, best, round(run.load / best, 2)))
    return rows


def groupby_experiment():
    rel = skewed_relation(
        "Orders", ["price", "cust"], 8000, "cust", universe=200, s=1.5, seed=8
    )
    p = 16
    one, one_stats = group_by(rel, ["cust"], "price", sum, p=p)
    two, two_stats = two_phase_group_by(rel, ["cust"], "price", sum, sum, p=p)
    assert sorted(one.rows()) == sorted(two.rows())
    return [
        ("one-phase shuffle", one_stats.max_load, one_stats.total_communication),
        ("two-phase (combiner)", two_stats.max_load, two_stats.total_communication),
    ]


def reduced_experiment():
    """Slide 63's upshot: semijoin reduction collapses the one-round load
    on selective queries."""
    q = path_query(3)
    rels = {}
    for i in range(1, 4):
        joining = [(j % 12, j % 12) for j in range(40)]
        filler = [(1000 * i + j, 2000 * i + j) for j in range(360)]
        rels[f"R{i}"] = Relation(f"R{i}", [f"A{i-1}", f"A{i}"], joining + filler)
    p = 16
    plain = hypercube_join(q, rels, p=p)
    hybrid = reduced_hypercube(q, rels, p=p)
    assert sorted(plain.output.rows()) == sorted(hybrid.output.rows())
    hc_round = max(r.max_load for r in hybrid.stats.rounds if r.label == "hypercube")
    return [
        ("plain HyperCube", plain.load, plain.rounds, "-"),
        ("reduce + HyperCube", hybrid.load, hybrid.rounds,
         f"final round L={hc_round}"),
    ], hc_round, plain.load


def test_x1_reduced_hypercube(benchmark):
    rows, hc_round, plain_load = benchmark.pedantic(
        reduced_experiment, rounds=1, iterations=1
    )
    print_table(
        "X1e semijoin reduction before HyperCube (slide 63 upshot)",
        ["plan", "L", "r", "notes"],
        rows,
    )
    assert hc_round < plain_load / 2


def test_x1_rectangular(benchmark):
    rows = benchmark.pedantic(rectangular_experiment, rounds=1, iterations=1)
    print_table(
        "X1a non-square matmul (slide 127 'other results')",
        ["shapes", "grid", "measured L", "predicted L", "rounds"],
        rows,
    )
    for _shapes, _grid, load, predicted, rounds in rows:
        assert rounds == 1
        assert load == predicted


def test_x1_sparse(benchmark):
    rows = benchmark.pedantic(sparse_experiment, rounds=1, iterations=1)
    print_table(
        "X1b sparse inputs via SQL-on-MPC",
        ["density", "nnz(A)+nnz(B)", "total C"],
        rows,
    )
    comms = [row[2] for row in rows]
    # Communication falls superlinearly with density (products ~ density²).
    assert comms[1] < comms[0] / 3
    assert comms[2] < comms[1] / 10


def test_x1_planner(benchmark):
    rows = benchmark.pedantic(planner_experiment, rounds=1, iterations=1)
    print_table(
        "X1c planner vs best-of-menu (p=16)",
        ["workload", "chosen", "chosen L", "best menu L", "ratio"],
        rows,
    )
    for _label, _chosen, _load, _best, ratio in rows:
        assert ratio <= 2.0


def test_x1_groupby(benchmark):
    rows = benchmark.pedantic(groupby_experiment, rounds=1, iterations=1)
    print_table(
        "X1d GROUP BY under customer skew (slide 52 workload)",
        ["strategy", "L", "C"],
        rows,
    )
    one, two = rows
    assert two[1] < one[1] / 2  # combiners neutralize the whale customer


if __name__ == "__main__":
    print_table("X1a rectangular", ["shapes", "grid", "L", "pred L", "r"],
                rectangular_experiment())
    print_table("X1b sparse", ["density", "nnz", "C"], sparse_experiment())
    print_table("X1c planner", ["workload", "chosen", "L", "best", "ratio"],
                planner_experiment())
    print_table("X1d groupby", ["strategy", "L", "C"], groupby_experiment())
