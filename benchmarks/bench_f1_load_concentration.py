"""F1 (slides 24–25): hash-partition load concentration vs value degree.

Slide 24: with degree-1 data the hash join's load concentrates sharply
at IN/p. Slide 25: degree-d data weakens the tail bound by a factor d in
the exponent — at d ≈ IN/p the guarantee collapses. We partition
regular-degree relations for growing d and report the measured max-load
factor L/(IN/p) next to the Chernoff bound's failure probability.
"""

import pytest

from repro.data import regular_degree_relation
from repro.joins import parallel_hash_join
from repro.theory import overload_probability_bound

from common import print_table

N = 8192
P = 16
DELTA = 0.5


def run_experiment(n=N, p=P):
    rows = []
    for degree in (1, 4, 16, 64, 256, n // p):
        r = regular_degree_relation("R", ["x", "y"], n, "y", degree, seed=degree)
        s = regular_degree_relation("S", ["y", "z"], n, "y", degree, seed=degree + 1)
        run = parallel_hash_join(r, s, p=p)
        in_size = 2 * n
        factor = run.load / (in_size / p)
        bound = overload_probability_bound(in_size, p, degree, DELTA)
        rows.append((degree, run.load, round(factor, 3), bound))
    return rows


def test_f1_load_concentration(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"F1 hash-partition load vs degree (IN={2*N}, p={P}, δ={DELTA})",
        ["degree d", "measured L", "L / (IN/p)", "Chernoff bound Pr[L≥(1+δ)IN/p]"],
        rows,
    )
    factors = [row[2] for row in rows]
    # Shape: degree-1 data is near-perfectly balanced…
    assert factors[0] < 1.3
    # …and the imbalance grows monotonically-ish to the d = IN/p cliff.
    assert factors[-1] > factors[0]
    assert factors[-1] >= 1.5  # a single value is IN/p tuples by itself
    # The analytic bound also flips from tiny to vacuous across the sweep.
    assert rows[0][3] < 0.05
    assert rows[-1][3] == 1.0


if __name__ == "__main__":
    print_table(
        f"F1 hash-partition load vs degree (IN={2*N}, p={P}, δ={DELTA})",
        ["degree d", "measured L", "L / (IN/p)", "Chernoff bound"],
        run_experiment(),
    )
