"""T9 (slides 100–106): parallel sorting.

Three parts:

1. PSRS (slides 100–102): loads track N/p while p ≪ N^{1/3}; the
   sample-gather round costs p(p−1), which overtakes N/p past that point.
2. Multi-round sorting (slides 103–105): with a per-round load cap L the
   round count follows Θ(log_L N) — more servers do *not* reduce rounds.
3. The slide-106 Sort Benchmark history, reproduced as recorded data
   (external contest results are not re-runnable; the table is the
   figure's content).
"""

import numpy as np
import pytest

from repro.sorting import expected_rounds, multiround_sort, psrs_sort
from repro.theory import sort_rounds_lower_bound

from common import print_table

N = 8192

# Slide 106, verbatim: year, winner, time, machines (memory/processor).
SORT_BENCHMARK_HISTORY = [
    (2016, "Tencent Sort", "134s", "512 (512GB)"),
    (2015, "FuxiSort", "377s", "3134 (96GB) + 243 (128GB)"),
    (2014, "TritonSort", "1378s", "186 (244GB)"),
    (2014, "Apache Spark", "1406s", "207 (244GB)"),
    (2013, "Hadoop", "4328s", "2100 (64GB)"),
    (2011, "TritonSort", "8274s", "52 (24GB)"),
]


def psrs_experiment(n=N):
    rng = np.random.default_rng(0)
    items = rng.integers(0, 10**9, size=n).tolist()
    rows = []
    for p in (2, 4, 8, 16, 32):
        out, stats = psrs_sort(items, p=p)
        assert out == sorted(items)
        rows.append(
            (
                p,
                round(n / p, 1),
                stats.load_of("psrs-partition"),
                p * (p - 1),
                stats.load_of("psrs-sample-gather"),
                stats.num_rounds,
            )
        )
    return rows


def multiround_experiment(n=4096):
    rng = np.random.default_rng(1)
    items = rng.integers(0, 10**9, size=n).tolist()
    rows = []
    for load_cap, p in ((16, 256), (64, 64), (256, 16), (1024, 4)):
        out, stats = multiround_sort(items, p=p, load_cap=load_cap)
        assert out == sorted(items)
        rows.append(
            (
                load_cap,
                p,
                stats.num_rounds,
                round(expected_rounds(n, load_cap), 2),
                round(sort_rounds_lower_bound(n, load_cap), 2),
            )
        )
    return rows


def test_t9_psrs(benchmark):
    rows = benchmark.pedantic(psrs_experiment, rounds=1, iterations=1)
    print_table(
        f"T9a PSRS (N={N}, slides 100–102)",
        ["p", "N/p", "partition L", "p(p-1)", "sample L", "rounds"],
        rows,
    )
    for p, ideal, partition_load, _pp, _sample, rounds in rows:
        assert rounds == 3
        assert partition_load < 2.5 * ideal
    # Sample-gather load grows as p², foreshadowing the p ~ N^(1/3) wall.
    samples = [row[4] for row in rows]
    assert samples == sorted(samples)
    assert samples[-1] == 32 * 31


def test_t9_multiround(benchmark):
    rows = benchmark.pedantic(multiround_experiment, rounds=1, iterations=1)
    print_table(
        "T9b multi-round sort (N=4096, slides 103–105)",
        ["load cap L", "p", "measured rounds", "log_L N", "LB Ω(log_L N)"],
        rows,
    )
    measured = [row[2] for row in rows]
    # Rounds decrease as the load cap grows (log_L N shrinks).
    assert measured == sorted(measured, reverse=True)
    # Never below the lower bound.
    for _cap, _p, r, _exp, lb in rows:
        assert r >= lb - 1e-9


def test_t9_history_table(benchmark):
    rows = benchmark.pedantic(lambda: SORT_BENCHMARK_HISTORY, rounds=1, iterations=1)
    print_table(
        "T9c Sort Benchmark winners (slide 106, recorded history)",
        ["year", "winner", "time", "p and memory/processor"],
        rows,
    )
    times = [float(row[2].rstrip("s")) for row in rows]
    # The slide's story: times fall year over year (rows are most-recent first).
    assert times == sorted(times)


if __name__ == "__main__":
    print_table("T9a PSRS", ["p", "N/p", "partition L", "p(p-1)", "sample L", "r"],
                psrs_experiment())
    print_table("T9b multi-round", ["L", "p", "rounds", "log_L N", "LB"],
                multiround_experiment())
    print_table("T9c history", ["year", "winner", "time", "machines"],
                SORT_BENCHMARK_HISTORY)
