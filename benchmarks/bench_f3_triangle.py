"""F3 (slides 34–36): HyperCube computes triangles in one round.

Theorem (slide 36): HyperCube's load is O(N/p^{2/3}) on skew-free input,
and *every* one-round algorithm needs Ω(N/p^{2/3}) — hashing by a single
key cannot do better than N/p^{1/2}-style partitioning. We sweep p over
perfect cubes and compare the measured load with N/p^{2/3}, alongside
the two-round binary plan baseline.
"""

import pytest

from repro.data import count_triangles, random_edges, triangle_relations
from repro.multiway import binary_join_plan, triangle_hypercube
from repro.query import triangle_query

from common import print_table

N = 4000


def run_experiment(n=N):
    edges = random_edges(n, n // 2, seed=1)
    truth = count_triangles(edges)
    r, s, t = triangle_relations(edges)
    rows = []
    for p in (1, 8, 27, 64):
        hc = triangle_hypercube(r, s, t, p=p)
        bj = binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=p)
        assert len(hc.output) == truth == len(bj.output)
        rows.append(
            (
                p,
                round(3 * n / p ** (2 / 3), 1),
                hc.load,
                hc.rounds,
                bj.load,
                bj.rounds,
            )
        )
    return truth, rows


def test_f3_triangle_hypercube(benchmark):
    truth, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"F3 triangle join, N={N} edges per relation, OUT={truth}",
        ["p", "IN/p^(2/3)", "HyperCube L", "HC r", "binary-plan L", "BJ r"],
        rows,
    )
    # One round at every scale.
    assert all(row[3] == 1 for row in rows)
    assert all(row[5] == 2 for row in rows[1:])
    # Load tracks N/p^(2/3): each 8x p step cuts L by ~4.
    loads = [row[2] for row in rows]
    assert loads[1] < loads[0] / 2.5
    assert loads[2] < loads[1] / 2
    assert loads[3] < loads[2] / 1.4
    # Measured within a constant factor of the prediction IN/p^(2/3).
    for p, predicted, load, *_ in rows:
        assert load <= 1.5 * predicted


if __name__ == "__main__":
    truth, rows = run_experiment()
    print_table(
        f"F3 triangle join (OUT={truth})",
        ["p", "IN/p^(2/3)", "HyperCube L", "HC r", "binary-plan L", "BJ r"],
        rows,
    )
