"""X4 — multi-core execution backend: speedup vs worker count & transport.

The ``process`` backend (:mod:`repro.exec`) runs each round's per-server
local computation on a persistent pool of forked workers, moving column
arrays through ``multiprocessing.shared_memory`` (``shm`` transport) or
the queues' pickle stream (``pickle``). Its contract is *observational
identity*: outputs, per-server loads, round counts, and audits are
byte-identical to the inline backend — only the wall clock may differ.

- X4a sweeps the pool size (1/2/4/8 workers) on a hash join and a
  HyperCube triangle, reporting wall time and speedup over inline. The
  identity columns are asserted; the speedup is *reported*, because it
  is a property of the machine: with fewer physical cores than workers
  the pool adds IPC cost but no parallelism (on a single-core host every
  process run is a slowdown — the honest number).
- X4b compares the shm vs pickle transports at a fixed pool size,
  reporting the shared-memory bytes actually moved (zero under pickle).

The committed BENCH_5 artifact is produced by the measured counterpart:
``python -m repro bench --x4`` (see :mod:`repro.bench.runner`).
"""

import os
import time

from repro.data.generators import uniform_relation
from repro.data.graphs import random_edges, triangle_relations
from repro.exec.config import use_backend
from repro.joins.hash_join import parallel_hash_join
from repro.multiway.hypercube import hypercube_join
from repro.query import triangle_query

from common import print_table


def _hash_join_workload(p=16, n=6000, domain=600):
    r = uniform_relation("R", ("a", "b"), n, domain, seed=21)
    s = uniform_relation("S", ("b", "c"), n, domain, seed=22)
    return lambda: parallel_hash_join(r, s, p=p, seed=3)


def _triangle_workload(p=16, n=2000, nodes=140):
    edges = random_edges(n, nodes, seed=23)
    r, s, t = triangle_relations(edges)
    query = triangle_query()
    return lambda: hypercube_join(query, {"R": r, "S": s, "T": t}, p=p, seed=3)


def _timed(run):
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result


def worker_scaling_experiment(p=16, workers=(1, 2, 4, 8), n_join=6000, n_tri=2000):
    """X4a: wall time and identity vs pool size, per workload."""
    rows = []
    for label, make in (
        ("hash-join", _hash_join_workload(p, n=n_join)),
        ("triangle-hc", _triangle_workload(p, n=n_tri)),
    ):
        with use_backend("inline"):
            base_s, base = _timed(make)
        rows.append((label, "inline", 1, base_s, 1.0, True))
        for count in workers:
            with use_backend("process", workers=count, transport="shm"):
                run_s, run = _timed(make)
            identical = (
                run.output == base.output
                and run.stats.max_load == base.stats.max_load
                and [r.received for r in run.stats.rounds]
                == [r.received for r in base.stats.rounds]
            )
            assert identical, f"{label}: process(w={count}) diverged from inline"
            rows.append((label, "process", count, run_s, base_s / run_s, True))
    return rows


def transport_experiment(p=16, workers=2, n_join=6000):
    """X4b: shm vs pickle transport at a fixed pool size."""
    make = _hash_join_workload(p, n=n_join)
    with use_backend("inline"):
        base_s, base = _timed(make)
    rows = [("inline", "none", base_s, 1.0, 0, 0)]
    for transport in ("shm", "pickle"):
        with use_backend("process", workers=workers, transport=transport):
            run_s, run = _timed(make)
        assert run.output == base.output
        assert run.stats.max_load == base.stats.max_load
        exec_stats = run.stats.exec
        rows.append((
            "process", transport, run_s, base_s / run_s,
            exec_stats.shm_bytes_out, exec_stats.shm_bytes_in,
        ))
    return rows


def test_x4_worker_scaling(benchmark):
    rows = benchmark.pedantic(worker_scaling_experiment, rounds=1, iterations=1)
    print_table(
        "X4a backend scaling (outputs/loads/rounds identical to inline)",
        ["workload", "backend", "workers", "seconds", "speedup", "identical"],
        rows,
    )
    # Identity is the asserted contract (also checked inside the sweep);
    # the wall-clock ordering is machine-dependent and only reported.
    assert all(row[5] for row in rows)
    # Every configuration actually ran: inline + one row per pool size.
    assert sum(1 for row in rows if row[0] == "hash-join") == 5
    if (os.cpu_count() or 1) == 1:
        print("  (single-core host: process-backend speedups < 1 expected)")


def test_x4_transports(benchmark):
    rows = benchmark.pedantic(transport_experiment, rounds=1, iterations=1)
    print_table(
        "X4b transport comparison (2 workers)",
        ["backend", "transport", "seconds", "speedup",
         "shm bytes out", "shm bytes in"],
        rows,
    )
    by_transport = {row[1]: row for row in rows}
    # The shm transport is the one actually moving shared-memory bytes.
    assert by_transport["shm"][4] > 0
    assert by_transport["pickle"][4] == 0


if __name__ == "__main__":
    print_table(
        "X4a backend scaling",
        ["workload", "backend", "workers", "seconds", "speedup", "identical"],
        worker_scaling_experiment(),
    )
    print_table(
        "X4b transports",
        ["backend", "transport", "seconds", "speedup",
         "shm bytes out", "shm bytes in"],
        transport_experiment(),
    )
