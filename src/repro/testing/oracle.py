"""A trusted single-node oracle for every workload the simulator runs.

The differential harness (:mod:`repro.testing.differential`) executes the
distributed algorithms and compares their outputs against this module.
The oracle is deliberately *independent* of the MPC code paths: no
cluster, no hashing, no ``Relation.join`` (which the distributed local
evaluators reuse) — conjunctive queries are answered by a naive
backtracking nested loop over the raw tuple lists, matrices by a plain
triple loop, sorting by Python's ``sorted``. Slow and obviously correct
is exactly the point.

All comparisons are *multiset* comparisons (the simulator uses bag
semantics throughout); :func:`multiset_diff` produces an inspectable
report of missing/extra tuples rather than a bare boolean.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.data.relation import Relation, Row
from repro.query.cq import ConjunctiveQuery


# ------------------------------------------------------------ multiset diffs


@dataclass(frozen=True)
class MultisetDiff:
    """The difference between two bags of tuples.

    ``missing`` counts tuples the reference has but the candidate lacks;
    ``extra`` counts tuples the candidate has but the reference lacks.
    An empty diff (both counters empty) means the bags are equal.
    """

    missing: Counter
    extra: Counter

    def __bool__(self) -> bool:
        return bool(self.missing) or bool(self.extra)

    @property
    def missing_count(self) -> int:
        return sum(self.missing.values())

    @property
    def extra_count(self) -> int:
        return sum(self.extra.values())

    def summary(self, limit: int = 3) -> str:
        if not self:
            return "outputs agree"
        parts = []
        if self.missing:
            sample = list(self.missing.items())[:limit]
            parts.append(f"missing {self.missing_count} (e.g. {sample})")
        if self.extra:
            sample = list(self.extra.items())[:limit]
            parts.append(f"extra {self.extra_count} (e.g. {sample})")
        return "; ".join(parts)


def multiset_diff(expected: Iterable[Row], got: Iterable[Row]) -> MultisetDiff:
    """Bag difference of two tuple collections (empty diff = equal bags)."""
    want = Counter(expected)
    have = Counter(got)
    return MultisetDiff(missing=want - have, extra=have - want)


def same_bag(expected: Iterable[Row], got: Iterable[Row]) -> bool:
    """Whether two tuple collections are equal as multisets."""
    return not multiset_diff(expected, got)


# ------------------------------------------------------- conjunctive queries


def oracle_join(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> Relation:
    """Naive nested-loop evaluation of a full conjunctive query.

    Backtracks over the atoms in query order: for every combination of
    one tuple per atom whose shared variables agree, emit one output
    tuple (bag semantics — multiplicities are products of input
    multiplicities, exactly as the natural join defines). No indexes, no
    hashing, no reuse of :meth:`Relation.join`.
    """
    atom_rows: list[tuple[tuple[str, ...], list[Row]]] = []
    for atom in query.atoms:
        rel = relations[atom.name]
        positions = [rel.schema.index(v) for v in atom.variables]
        rows = [tuple(row[i] for i in positions) for row in rel.rows_readonly()]
        atom_rows.append((atom.variables, rows))

    out_rows: list[Row] = []
    binding: dict[str, Any] = {}

    def descend(depth: int) -> None:
        if depth == len(atom_rows):
            out_rows.append(tuple(binding[v] for v in query.variables))
            return
        variables, rows = atom_rows[depth]
        for row in rows:
            bound_here = []
            consistent = True
            for v, value in zip(variables, row):
                if v in binding:
                    if binding[v] != value:
                        consistent = False
                        break
                else:
                    binding[v] = value
                    bound_here.append(v)
            if consistent:
                descend(depth + 1)
            for v in bound_here:
                del binding[v]

    descend(0)
    return Relation("OUT", list(query.variables), out_rows)


def oracle_two_way(r: Relation, s: Relation, name: str = "OUT") -> Relation:
    """Nested-loop natural join with the two-way algorithms' output schema.

    The distributed two-way joins emit R's attributes followed by S's
    non-shared attributes; this mirrors that convention.
    """
    shared = [a for a in r.schema.attributes if a in s.schema]
    r_idx = [r.schema.index(a) for a in shared]
    s_idx = [s.schema.index(a) for a in shared]
    extra = [a for a in s.schema.attributes if a not in r.schema]
    extra_idx = [s.schema.index(a) for a in extra]
    out_rows = [
        r_row + tuple(s_row[i] for i in extra_idx)
        for r_row in r.rows_readonly()
        for s_row in s.rows_readonly()
        if all(r_row[i] == s_row[j] for i, j in zip(r_idx, s_idx))
    ]
    return Relation(name, list(r.schema.attributes) + extra, out_rows)


def oracle_product(r: Relation, s: Relation, name: str = "OUT") -> Relation:
    """Nested-loop Cartesian product (disjoint schemas)."""
    out_rows = [
        r_row + s_row
        for r_row in r.rows_readonly()
        for s_row in s.rows_readonly()
    ]
    return Relation(name, list(r.schema.attributes) + list(s.schema.attributes), out_rows)


def oracle_band_join(
    r: Relation, s: Relation, r_key: str, s_key: str, epsilon: float
) -> list[Row]:
    """All pairs with ``|r.key − s.key| ≤ ε`` by exhaustive comparison."""
    r_pos = r.schema.index(r_key)
    s_pos = s.schema.index(s_key)
    return [
        r_row + s_row
        for r_row in r.rows_readonly()
        for s_row in s.rows_readonly()
        if abs(r_row[r_pos] - s_row[s_pos]) <= epsilon
    ]


# ------------------------------------------------------------------- sorting


def oracle_sort(
    items: Sequence[Any], key: Callable[[Any], Any] = lambda item: item
) -> list[Any]:
    """Stable single-node sort — the ground truth for the parallel sorts."""
    return sorted(items, key=key)


# ------------------------------------------------- matrix multiplication


def oracle_matmul(a, b):
    """C = A·B by the definition: a pure-Python triple loop.

    Independent of ``numpy.matmul`` (and of the block/SQL algorithms'
    accumulation orders); returns a nested list so callers can compare
    with a tolerance via :func:`matrices_close`.
    """
    n1 = len(a)
    n2 = len(a[0]) if n1 else 0
    n3 = len(b[0]) if len(b) else 0
    out = [[0.0] * n3 for _ in range(n1)]
    for i in range(n1):
        a_row = a[i]
        for k in range(n3):
            acc = 0.0
            for j in range(n2):
                acc += float(a_row[j]) * float(b[j][k])
            out[i][k] = acc
    return out


def matrices_close(expected, got, tolerance: float = 1e-8) -> bool:
    """Element-wise comparison with absolute+relative tolerance."""
    rows = len(expected)
    if rows != len(got):
        return False
    for i in range(rows):
        exp_row, got_row = expected[i], got[i]
        if len(exp_row) != len(got_row):
            return False
        for e, g in zip(exp_row, got_row):
            if abs(float(e) - float(g)) > tolerance * (1.0 + abs(float(e))):
                return False
    return True
