"""Metamorphic properties of the MPC algorithms.

Differential testing (:mod:`repro.testing.differential`) checks *what*
an algorithm computes; metamorphic testing checks how the computation
responds to transformations that provably must not change the answer:

- **tuple permutation** — shuffling the input tuple order leaves the
  output multiset unchanged (the algorithms hash values, not positions);
- **seed invariance** — a different cluster hash seed routes tuples
  differently but yields the same output multiset;
- **p stability** — the output is independent of the server count;
- **load monotonicity** — more servers never make the per-server load
  substantially worse (up to the analytic additive terms: sampling
  overheads grow with p², heavy values floor the load at their degree).

Every check returns a :class:`PropertyResult` rather than raising, so a
sweep reports all violations at once.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro.testing.differential import (
    ALGORITHMS,
    AlgorithmCase,
    Instance,
    reference_output,
    run_case,
)
from repro.testing.oracle import multiset_diff

P_LADDER = (2, 4, 8, 16)


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one metamorphic check."""

    check: str
    algorithm: str
    instance: str
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAILED ({self.detail})"
        return f"{self.check}: {self.algorithm} on {self.instance}: {status}"


# ------------------------------------------------------- input transformations


def permuted_instance(instance: Instance, seed: int = 1) -> Instance:
    """A copy of the instance with every input's tuple order shuffled."""
    rng = random.Random(seed)
    relations = {}
    for name, rel in instance.relations.items():
        rows = list(rel.rows_readonly())
        rng.shuffle(rows)
        relations[name] = type(rel)(rel.name, rel.schema, rows)
    items = list(instance.items)
    rng.shuffle(items)
    return replace(instance, relations=relations, items=items)


def with_servers(instance: Instance, p: int) -> Instance:
    """A copy of the instance to be run on ``p`` servers."""
    return replace(instance, p=p)


# ---------------------------------------------------------------- the checks


def _outputs_agree(case: AlgorithmCase, base, other, kind: str) -> tuple[bool, str]:
    if base.diff is None or other.diff is None:
        # matmul: both compared against the oracle matrix already.
        ok = base.output_ok and other.output_ok
        return ok, "" if ok else "matrix outputs differ from oracle"
    if not base.output_ok:
        return False, f"baseline already mismatches: {base.diff.summary()}"
    if not other.output_ok:
        return False, f"transformed run mismatches: {other.diff.summary()}"
    return True, ""


def check_tuple_permutation(
    case: AlgorithmCase, instance: Instance, reference=None
) -> PropertyResult:
    """Shuffling input tuples must not change the output multiset."""
    if reference is None:
        reference = reference_output(instance)
    base = run_case(case, instance, reference=reference, audit=False)
    shuffled = permuted_instance(instance, seed=instance.seed + 17)
    other = run_case(case, shuffled, reference=reference, audit=False)
    ok, detail = _outputs_agree(case, base, other, instance.kind)
    return PropertyResult("tuple-permutation", case.name, instance.label, ok, detail)


def check_seed_invariance(
    case: AlgorithmCase, instance: Instance, reference=None, delta: int = 1009
) -> PropertyResult:
    """A different hash seed must not change the output multiset."""
    if reference is None:
        reference = reference_output(instance)
    base = run_case(case, instance, reference=reference, audit=False)
    other = run_case(
        case, instance, reference=reference, seed=instance.seed + delta, audit=False
    )
    ok, detail = _outputs_agree(case, base, other, instance.kind)
    return PropertyResult("seed-invariance", case.name, instance.label, ok, detail)


def check_p_stability(
    case: AlgorithmCase, instance: Instance, reference=None, p_other: int | None = None
) -> PropertyResult:
    """Changing the server count must not change the output multiset."""
    if reference is None:
        reference = reference_output(instance)
    if p_other is None:
        p_other = {4: 8, 8: 16, 16: 4}.get(instance.p, instance.p * 2)
    base = run_case(case, instance, reference=reference, audit=False)
    other = run_case(case, with_servers(instance, p_other), reference=reference, audit=False)
    ok, detail = _outputs_agree(case, base, other, instance.kind)
    return PropertyResult("p-stability", case.name, instance.label, ok, detail)


def check_load_monotonicity(
    case: AlgorithmCase,
    instance: Instance,
    reference=None,
    p_values: Sequence[int] = P_LADDER,
    slack: float = 2.0,
) -> PropertyResult:
    """Scaling out must not substantially increase the per-server load.

    The tutorial's formulas are all non-increasing in p; measured loads
    carry two legitimate counter-terms the check allows for: sampling /
    coordination overheads that grow like p², and the degree floor (all
    tuples of one heavy value meet at one server at any p).
    """
    if reference is None:
        reference = reference_output(instance)
    loads: list[tuple[int, int]] = []
    for p in p_values:
        record = run_case(case, with_servers(instance, p), reference=reference, audit=False)
        if record.error is not None:
            return PropertyResult(
                "load-monotonicity", case.name, instance.label, False,
                f"run at p={p} raised {record.error}",
            )
        loads.append((p, record.max_load))
    (p_lo, l_lo), (p_hi, l_hi) = loads[0], loads[-1]
    allowance = slack * l_lo + p_hi ** 2 + instance.max_degree() + 8
    ok = l_hi <= allowance
    detail = "" if ok else (
        f"L grew from {l_lo} (p={p_lo}) to {l_hi} (p={p_hi}), "
        f"allowance {allowance:.0f}; ladder {loads}"
    )
    return PropertyResult("load-monotonicity", case.name, instance.label, ok, detail)


METAMORPHIC_CHECKS = (
    check_tuple_permutation,
    check_seed_invariance,
    check_p_stability,
)


def run_metamorphic(
    instances: Iterable[Instance],
    algorithms: Sequence[AlgorithmCase] = ALGORITHMS,
    checks: Sequence = METAMORPHIC_CHECKS,
    monotonicity: bool = True,
) -> list[PropertyResult]:
    """All metamorphic checks on every applicable (algorithm, instance)."""
    results: list[PropertyResult] = []
    for instance in instances:
        reference = reference_output(instance)
        for case in algorithms:
            if not case.applies(instance):
                continue
            for check in checks:
                results.append(check(case, instance, reference=reference))
            if monotonicity:
                results.append(
                    check_load_monotonicity(case, instance, reference=reference)
                )
    return results


def bag_equal_outputs(rows_a, rows_b) -> bool:
    """Convenience for tests: two outputs equal as multisets."""
    return not multiset_diff(rows_a, rows_b)
