"""Differential testing of every MPC algorithm against the oracle.

Generates randomized instances (uniform, Zipf-skewed, and graph-shaped,
via :mod:`repro.data`), executes each of the sixteen algorithm entry
points on every instance it applies to — under the conservation audits
of :mod:`repro.mpc.audit` — and compares outputs to the trusted
single-node oracle as multisets. Each execution is also checked against
the tutorial's analytic cost formulas where the theory makes a claim:

- measured ``L`` within a constant factor of the
  :mod:`repro.theory.loads` prediction for that algorithm/profile;
- relational outputs never exceeding the AGM bound
  (:mod:`repro.query.agm`) — a theorem, so any violation is a bug.

The registry :data:`ALGORITHMS` is the canonical list of entry points;
``python -m repro selftest`` (:mod:`repro.testing.selftest`) drives this
module as the repo-wide correctness gate.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.data.generators import (
    matching_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.graphs import power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation, Row
from repro.joins.broadcast_join import broadcast_join
from repro.joins.cartesian import cartesian_product, predicted_cartesian_load
from repro.joins.hash_join import parallel_hash_join
from repro.joins.skew_join import skew_join
from repro.joins.sort_join import sort_join
from repro.matmul.multi_round import square_block_matmul
from repro.matmul.one_round import rectangle_block_matmul
from repro.matmul.sql import sql_matmul
from repro.mpc.audit import audited
from repro.mpc.faults import FaultPlan, faulty
from repro.mpc.hashing import splitmix64
from repro.mpc.stats import RunStats
from repro.multiway.binary_plans import binary_join_plan
from repro.multiway.gym import gym
from repro.multiway.hypercube import hypercube_join
from repro.multiway.reduced import reduced_hypercube
from repro.multiway.skewhc import skewhc_join
from repro.query.agm import agm_ratio, output_within_agm
from repro.query.cq import ConjunctiveQuery, path_query, star_query, triangle_query
from repro.query.parser import parse_query
from repro.sorting.band_join import band_join
from repro.sorting.multiround import multiround_sort
from repro.sorting.psrs import psrs_sort
from repro.testing.oracle import (
    MultisetDiff,
    matrices_close,
    multiset_diff,
    oracle_band_join,
    oracle_join,
    oracle_matmul,
    oracle_product,
    oracle_sort,
)
from repro.theory.loads import load_conforms, multi_round_load_bound, one_round_load_bound

RELATIONAL_KINDS = ("two_way", "product", "triangle", "path", "star")
KINDS = RELATIONAL_KINDS + ("sort", "band", "matmul")

# Data profiles: ``skewed`` marks the ones whose degree distributions
# void the skew-free analytic claims.
SKEWED_PROFILES = ("zipf", "graph-zipf")


# ------------------------------------------------------------------ instances


@dataclass
class Instance:
    """One randomized workload for the differential harness."""

    kind: str                  # member of KINDS
    profile: str               # "uniform" | "zipf" | "matching" | "graph-*" ...
    p: int
    seed: int
    query: ConjunctiveQuery | None = None
    relations: dict[str, Relation] = field(default_factory=dict)
    items: list = field(default_factory=list)
    epsilon: float = 0.0       # band join window
    matrices: tuple | None = None

    @property
    def label(self) -> str:
        return f"{self.kind}/{self.profile}#{self.seed}(p={self.p})"

    @property
    def in_size(self) -> int:
        if self.kind == "matmul":
            a, b = self.matrices  # type: ignore[misc]
            return a.size + b.size
        if self.kind in ("sort",):
            return len(self.items)
        if self.kind == "band":
            return sum(len(r) for r in self.relations.values())
        return sum(len(r) for r in self.relations.values())

    @property
    def sizes(self) -> dict[str, int]:
        return {name: len(rel) for name, rel in self.relations.items()}

    def max_degree(self) -> int:
        """Largest total degree of any single value on any join attribute.

        A lower bound on L for hash-partitioned rounds (all tuples of one
        value meet at one server), hence the natural additive slack for
        the skew-sensitive conformance checks.
        """
        if self.query is None:
            return 0
        totals: dict[tuple[str, object], int] = {}
        for atom in self.query.atoms:
            rel = self.relations[atom.name]
            for variable in atom.variables:
                if len(self.query.atoms_with(variable)) < 2:
                    continue
                attr = variable if variable in rel.schema else None
                if attr is None:
                    continue
                for value, count in rel.degrees(attr).items():
                    key = (variable, value)
                    totals[key] = totals.get(key, 0) + count
        return max(totals.values(), default=0)


def _two_way(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    n = rng.randrange(80, 200)
    if profile == "matching":
        r = matching_relation("R", ["x", "y"], n)
        s = matching_relation("S", ["y", "z"], n)
    elif profile == "zipf":
        s_param = rng.uniform(1.1, 1.6)
        r = skewed_relation("R", ["x", "y"], n, "y", max(n // 4, 8), s_param, seed=seed)
        s = skewed_relation("S", ["y", "z"], n, "y", max(n // 4, 8), s_param, seed=seed + 1)
    else:
        universe = rng.randrange(n // 2, 2 * n)
        r = uniform_relation("R", ["x", "y"], n, universe, seed=seed)
        s = uniform_relation("S", ["y", "z"], n, universe, seed=seed + 1)
    return Instance(
        "two_way", profile, p, seed,
        query=parse_query("R(x, y), S(y, z)"),
        relations={"R": r, "S": s},
    )


def _product(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    n_r = rng.randrange(8, 30)
    n_s = rng.randrange(8, 30)
    r = uniform_relation("R", ["x", "y"], n_r, 4 * n_r, seed=seed)
    s = uniform_relation("S", ["z", "w"], n_s, 4 * n_s, seed=seed + 1)
    return Instance(
        "product", profile, p, seed,
        query=parse_query("R(x, y), S(z, w)"),
        relations={"R": r, "S": s},
    )


def _triangle(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    m = rng.randrange(40, 110)
    if profile == "graph-zipf":
        edges = power_law_edges(m, max(m // 2, 8), rng.uniform(1.1, 1.5), seed=seed)
    else:
        edges = random_edges(m, max(m // 2, 8), seed=seed)
    r, s, t = triangle_relations(edges)
    return Instance(
        "triangle", profile, p, seed,
        query=triangle_query(),
        relations={"R": r, "S": s, "T": t},
    )


def _chain_like(rng: random.Random, kind: str, profile: str, p: int, seed: int) -> Instance:
    query = path_query(3) if kind == "path" else star_query(3)
    n = rng.randrange(60, 140)
    relations: dict[str, Relation] = {}
    for index, atom in enumerate(query.atoms):
        attrs = list(atom.variables)
        if profile == "matching":
            relations[atom.name] = matching_relation(atom.name, attrs, n)
        elif profile == "zipf":
            # Skew the join attribute shared with the neighbours.
            key = attrs[0] if kind == "star" else attrs[index > 0]
            relations[atom.name] = skewed_relation(
                atom.name, attrs, n, key, max(n // 3, 8),
                rng.uniform(1.05, 1.3), seed=seed + index,
            )
        else:
            universe = rng.randrange(n // 2, n)
            relations[atom.name] = uniform_relation(
                atom.name, attrs, n, universe, seed=seed + index
            )
    return Instance(kind, profile, p, seed, query=query, relations=relations)


def _sort(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    n = rng.randrange(150, 400)
    if profile == "zipf":
        universe = max(n // 20, 4)   # heavy duplication
    else:
        universe = 4 * n
    values_rng = random.Random(seed)
    items = [values_rng.randrange(universe) for _ in range(n)]
    return Instance("sort", profile, p, seed, items=items)


def _band(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    n = rng.randrange(50, 120)
    epsilon = rng.uniform(0.0, 25.0)
    r = uniform_relation("R", ["a", "x"], n, 1000, seed=seed)
    s = uniform_relation("S", ["b", "y"], n, 1000, seed=seed + 1)
    return Instance(
        "band", profile, p, seed,
        relations={"R": r, "S": s},
        epsilon=epsilon,
    )


def _matmul(rng: random.Random, profile: str, p: int, seed: int) -> Instance:
    import numpy as np

    n = rng.randrange(6, 13)
    matrix_rng = np.random.default_rng(seed)
    a = matrix_rng.random((n, n))
    b = matrix_rng.random((n, n))
    if profile == "sparse":
        a = a * (matrix_rng.random((n, n)) < 0.3)
        b = b * (matrix_rng.random((n, n)) < 0.3)
    return Instance("matmul", profile, p, seed, matrices=(a, b))


_SCHEDULE: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("two_way", ("uniform", "zipf", "matching")),
    ("triangle", ("graph-uniform", "graph-zipf")),
    ("path", ("uniform", "zipf", "matching")),
    ("star", ("uniform", "zipf")),
    ("product", ("uniform",)),
    ("sort", ("uniform", "zipf")),
    ("band", ("uniform",)),
    ("matmul", ("uniform", "sparse")),
)

_BUILDERS: dict[str, Callable[[random.Random, str, int, int], Instance]] = {
    "two_way": _two_way,
    "product": _product,
    "triangle": _triangle,
    "path": lambda rng, pr, p, s: _chain_like(rng, "path", pr, p, s),
    "star": lambda rng, pr, p, s: _chain_like(rng, "star", pr, p, s),
    "sort": _sort,
    "band": _band,
    "matmul": _matmul,
}


def generate_instances(
    count: int, seed: int = 0, kinds: Sequence[str] | None = None
) -> list[Instance]:
    """``count`` deterministic randomized instances cycling kind × profile."""
    rng = random.Random(seed)
    pool: list[tuple[str, str]] = [
        (kind, profile)
        for kind, profiles in _SCHEDULE
        for profile in profiles
        if kinds is None or kind in kinds
    ]
    if not pool:
        raise ValueError(f"no instance kinds selected from {kinds!r}")
    instances = []
    for index in range(count):
        kind, profile = pool[index % len(pool)]
        p = rng.choice((4, 8, 16))
        instance_seed = seed * 100_003 + index
        instances.append(_BUILDERS[kind](rng, profile, p, instance_seed))
    return instances


# ---------------------------------------------------------------- references


def reference_output(instance: Instance):
    """The oracle's answer for one instance (rows, list, or matrix)."""
    if instance.kind == "product":
        return oracle_product(instance.relations["R"], instance.relations["S"]).rows()
    if instance.kind in RELATIONAL_KINDS:
        assert instance.query is not None
        return oracle_join(instance.query, instance.relations).rows()
    if instance.kind == "sort":
        return oracle_sort(instance.items)
    if instance.kind == "band":
        return oracle_band_join(
            instance.relations["R"], instance.relations["S"], "a", "b",
            instance.epsilon,
        )
    if instance.kind == "matmul":
        a, b = instance.matrices  # type: ignore[misc]
        return oracle_matmul(a.tolist(), b.tolist())
    raise ValueError(f"unknown instance kind {instance.kind!r}")


# ------------------------------------------------------------------ registry


@dataclass(frozen=True)
class LoadClaim:
    """An analytic load prediction with its conformance slack."""

    predicted: float
    factor: float
    additive: float

    def conforms(self, measured: float) -> bool:
        return load_conforms(measured, self.predicted, self.factor, self.additive)

    def ratio(self, measured: float) -> float:
        ceiling = self.factor * self.predicted + self.additive
        return measured / ceiling if ceiling else float(measured > 0)


@dataclass
class CaseRun:
    """One algorithm execution: comparable output + measured cost."""

    rows: list[Row] | None
    matrix: object | None
    stats: RunStats
    details: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AlgorithmCase:
    """One entry point: how to run it, where it applies, what it promises."""

    name: str
    family: str                       # "joins" | "multiway" | "sorting" | "matmul"
    kinds: tuple[str, ...]
    run: Callable[[Instance, int], CaseRun]
    claim: Callable[[Instance, CaseRun, int], LoadClaim | None]

    def applies(self, instance: Instance) -> bool:
        return instance.kind in self.kinds


def _join_case(runner) -> Callable[[Instance, int], CaseRun]:
    def run(instance: Instance, seed: int) -> CaseRun:
        result = runner(instance.relations["R"], instance.relations["S"],
                        instance.p, seed=seed)
        return CaseRun(result.output.rows(), None, result.stats)
    return run


def _multiway_case(runner) -> Callable[[Instance, int], CaseRun]:
    def run(instance: Instance, seed: int) -> CaseRun:
        assert instance.query is not None
        result = runner(instance.query, instance.relations, instance.p, seed=seed)
        # Normalize to the query's variable order for the multiset compare.
        rows = result.output.project(list(instance.query.variables)).rows()
        return CaseRun(rows, None, result.stats, dict(result.details))
    return run


def _relational_rows(instance: Instance, rows: list[Row]) -> list[Row]:
    return rows


def _no_claim(instance: Instance, run: CaseRun, out_size: int) -> None:
    return None


def _skew_robust_claim(factor: float):
    """√(OUT/p) + IN/p — the skew join / sort join guarantee on any input."""
    def claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
        predicted = math.sqrt(max(out_size, 1) / instance.p) + instance.in_size / instance.p
        additive = instance.p ** 2 + instance.max_degree() + 8
        return LoadClaim(predicted, factor, additive)
    return claim


def _hash_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim | None:
    if instance.profile in SKEWED_PROFILES:
        return None            # the IN/p promise assumes no heavy hitters
    predicted = instance.in_size / instance.p
    return LoadClaim(predicted, 4.0, instance.max_degree() + 8)


def _broadcast_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    small = min(len(rel) for rel in instance.relations.values())
    return LoadClaim(float(small), 1.5, 4)


def _cartesian_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    r, s = instance.relations["R"], instance.relations["S"]
    return LoadClaim(predicted_cartesian_load(len(r), len(s), instance.p), 3.0, 8)


def _one_round_claim(skewed_ok: bool, factor: float):
    """IN/p^{1/τ*} on skew-free data; IN/p^{1/ψ*} when the algorithm
    promises skew resilience (SkewHC); no claim otherwise."""
    def claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim | None:
        assert instance.query is not None
        skewed = instance.profile in SKEWED_PROFILES
        if skewed and not skewed_ok:
            return None
        jobs = run.details.get("jobs")
        if jobs is not None and jobs > instance.p:
            # The IN/p^{1/ψ*} analysis allocates each residual its
            # proportional server share; with more residual jobs than
            # servers some run on a single server and the formula makes
            # no promise (the toy threshold N/p finds "heavy" values
            # even on uniform data at these sizes).
            return None
        predicted = one_round_load_bound(
            instance.query, instance.in_size, instance.p, skewed=skewed
        )
        additive = instance.p + 8.0
        if skewed_ok:
            # SkewHC peels heavy values by measured degree on every
            # profile; residual jobs pay the output-driven product cost.
            additive += math.sqrt(max(out_size, 1) / instance.p) + instance.max_degree()
        return LoadClaim(predicted, factor, additive)
    return claim


def _gym_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    predicted = multi_round_load_bound(instance.in_size, out_size, instance.p)
    return LoadClaim(predicted, 6.0, instance.max_degree() + instance.p + 8)


def _binary_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    intermediates = run.details.get("intermediate_sizes", [])
    work = instance.in_size + sum(intermediates) + out_size
    return LoadClaim(work / instance.p, 4.0, instance.max_degree() + instance.p + 8)


def _reduced_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim | None:
    if instance.profile in SKEWED_PROFILES:
        return None
    assert instance.query is not None
    predicted = (
        one_round_load_bound(instance.query, instance.in_size, instance.p)
        + instance.in_size / instance.p
    )
    return LoadClaim(predicted, 4.0, instance.max_degree() + instance.p + 8)


def _run_psrs(instance: Instance, seed: int) -> CaseRun:
    out, stats = psrs_sort(instance.items, instance.p, seed=seed)
    return CaseRun(out, None, stats)


def _run_multiround(instance: Instance, seed: int) -> CaseRun:
    cap = _multiround_cap(instance)
    out, stats = multiround_sort(instance.items, instance.p, cap, seed=seed)
    return CaseRun(out, None, stats, {"load_cap": cap})


def _multiround_cap(instance: Instance) -> int:
    return max(16, len(instance.items) // instance.p)


def _sort_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    predicted = len(instance.items) / instance.p
    return LoadClaim(predicted, 4.0, instance.p ** 2 + instance.p + 8)


def _multiround_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    cap = run.details.get("load_cap", _multiround_cap(instance))
    return LoadClaim(float(cap), 4.0, instance.p ** 2 + instance.p + 8)


def _run_band(instance: Instance, seed: int) -> CaseRun:
    result = band_join(
        instance.relations["R"], instance.relations["S"], "a", "b",
        instance.epsilon, instance.p, seed=seed,
    )
    return CaseRun(result.output.rows(), None, result.stats)


def _band_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    n = instance.in_size
    predicted = n / instance.p + out_size / instance.p
    # Wide ε-windows replicate items across whole ranges: every item can
    # appear on all p servers in the worst case, bounded by n.
    return LoadClaim(predicted, 6.0, instance.p ** 2 + min(n, 4 * out_size + 64))


def _run_sql_matmul(instance: Instance, seed: int) -> CaseRun:
    a, b = instance.matrices  # type: ignore[misc]
    c, stats = sql_matmul(a, b, instance.p, seed=seed)
    return CaseRun(None, c, stats)


def _sql_matmul_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    a, b = instance.matrices  # type: ignore[misc]
    n = a.shape[0]
    nonzero = int((a != 0).sum() + (b != 0).sum())
    join_load = nonzero / instance.p + 2 * n
    aggregate_load = n ** 3 / instance.p + n
    return LoadClaim(max(join_load, aggregate_load), 4.0, instance.p + 8)


def _matmul_groups(instance: Instance) -> int:
    a, _ = instance.matrices  # type: ignore[misc]
    return max(2, min(int(math.isqrt(instance.p)), a.shape[0]))


def _run_rectangle(instance: Instance, seed: int) -> CaseRun:
    a, b = instance.matrices  # type: ignore[misc]
    c, stats = rectangle_block_matmul(a, b, _matmul_groups(instance), seed=seed)
    return CaseRun(None, c, stats)


def _rectangle_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    a, _ = instance.matrices  # type: ignore[misc]
    n = a.shape[0]
    k = _matmul_groups(instance)
    predicted = 2.0 * math.ceil(n / k) * n     # the slide's exact per-server load
    return LoadClaim(predicted, 1.5, 8)


def _square_block_size(instance: Instance) -> int:
    a, _ = instance.matrices  # type: ignore[misc]
    return max(2, a.shape[0] // 3)


def _run_square(instance: Instance, seed: int) -> CaseRun:
    a, b = instance.matrices  # type: ignore[misc]
    c, stats = square_block_matmul(a, b, instance.p, _square_block_size(instance), seed=seed)
    return CaseRun(None, c, stats)


def _square_claim(instance: Instance, run: CaseRun, out_size: int) -> LoadClaim:
    a, _ = instance.matrices  # type: ignore[misc]
    n = a.shape[0]
    bs = _square_block_size(instance)
    h = math.ceil(n / bs)
    replicas = max(1, instance.p // (h * h))
    per_round_products = h * h * replicas
    predicted = 2.0 * bs * bs * math.ceil(per_round_products / instance.p)
    return LoadClaim(predicted, 3.0, 8)


ALGORITHMS: tuple[AlgorithmCase, ...] = (
    # ----- two-way joins
    AlgorithmCase("broadcast_join", "joins", ("two_way",),
                  _join_case(broadcast_join), _broadcast_claim),
    AlgorithmCase("parallel_hash_join", "joins", ("two_way",),
                  _join_case(parallel_hash_join), _hash_claim),
    AlgorithmCase("skew_join", "joins", ("two_way",),
                  _join_case(skew_join), _skew_robust_claim(6.0)),
    AlgorithmCase("sort_join", "joins", ("two_way",),
                  _join_case(sort_join), _skew_robust_claim(8.0)),
    AlgorithmCase("cartesian_product", "joins", ("product",),
                  _join_case(cartesian_product), _cartesian_claim),
    # ----- multiway joins
    AlgorithmCase("hypercube_join", "multiway",
                  ("two_way", "product", "triangle", "path", "star"),
                  _multiway_case(hypercube_join), _one_round_claim(False, 4.0)),
    AlgorithmCase("skewhc_join", "multiway",
                  ("two_way", "product", "triangle", "path", "star"),
                  _multiway_case(skewhc_join), _one_round_claim(True, 6.0)),
    AlgorithmCase("gym", "multiway", ("two_way", "path", "star"),
                  _multiway_case(gym), _gym_claim),
    AlgorithmCase("binary_join_plan", "multiway",
                  ("two_way", "product", "triangle", "path", "star"),
                  _multiway_case(binary_join_plan), _binary_claim),
    AlgorithmCase("reduced_hypercube", "multiway", ("two_way", "path", "star"),
                  _multiway_case(reduced_hypercube), _reduced_claim),
    # ----- sorting
    AlgorithmCase("psrs_sort", "sorting", ("sort",), _run_psrs, _sort_claim),
    AlgorithmCase("multiround_sort", "sorting", ("sort",),
                  _run_multiround, _multiround_claim),
    AlgorithmCase("band_join", "sorting", ("band",), _run_band, _band_claim),
    # ----- matrix multiplication
    AlgorithmCase("sql_matmul", "matmul", ("matmul",),
                  _run_sql_matmul, _sql_matmul_claim),
    AlgorithmCase("rectangle_block_matmul", "matmul", ("matmul",),
                  _run_rectangle, _rectangle_claim),
    AlgorithmCase("square_block_matmul", "matmul", ("matmul",),
                  _run_square, _square_claim),
)


def algorithm(name: str) -> AlgorithmCase:
    """Look up a registered entry point by name."""
    for case in ALGORITHMS:
        if case.name == name:
            return case
    raise KeyError(f"no algorithm case named {name!r}")


# -------------------------------------------------------------------- runner


@dataclass
class DifferentialRecord:
    """The outcome of one (algorithm, instance) execution."""

    algorithm: str
    instance: str
    kind: str
    out_size: int
    max_load: int
    rounds: int
    diff: MultisetDiff | None      # None = numeric compare (matmul)
    matrix_ok: bool = True
    agm_ok: bool = True
    agm_ratio: float = 0.0
    claim: LoadClaim | None = None
    load_ok: bool = True
    error: str | None = None

    @property
    def output_ok(self) -> bool:
        if self.error is not None:
            return False
        if self.diff is not None:
            return not self.diff
        return self.matrix_ok

    @property
    def ok(self) -> bool:
        return self.output_ok and self.agm_ok and self.load_ok

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.algorithm} on {self.instance}: raised {self.error}"
        parts = []
        if self.diff is not None and self.diff:
            parts.append(f"output mismatch ({self.diff.summary()})")
        if self.diff is None and not self.matrix_ok:
            parts.append("matrix mismatch")
        if not self.agm_ok:
            parts.append(f"AGM bound exceeded (ratio {self.agm_ratio:.2f})")
        if not self.load_ok and self.claim is not None:
            parts.append(
                f"load {self.max_load} above {self.claim.factor:.1f}×"
                f"{self.claim.predicted:.1f}+{self.claim.additive:.0f}"
            )
        status = "; ".join(parts) if parts else "ok"
        return f"{self.algorithm} on {self.instance}: {status}"


def fault_plan_for(case_name: str, instance: Instance) -> FaultPlan:
    """The randomized fault plan one (algorithm, instance) pair runs under.

    Derived purely from the instance seed and the algorithm name, so a
    faulty sweep is reproducible and every entry point sees a *different*
    schedule on the same instance (the same plan on every algorithm would
    only exercise the round ordinals they share).
    """
    mix = splitmix64(instance.seed & ((1 << 64) - 1))
    for char in case_name:
        mix = splitmix64(mix ^ ord(char))
    return FaultPlan.random(mix, instance.p)


def run_case(
    case: AlgorithmCase,
    instance: Instance,
    reference=None,
    seed: int | None = None,
    audit: bool = True,
    faults: FaultPlan | None = None,
) -> DifferentialRecord:
    """Execute one entry point on one instance and check every contract.

    With ``faults`` the execution happens inside
    :func:`repro.mpc.faults.faulty`, so every cluster the algorithm
    builds runs under the plan — with recovery enabled the record must
    come out exactly as a fault-free one (same output, same loads, clean
    audit), which is precisely what ``selftest --faults`` asserts.
    """
    from contextlib import nullcontext

    if reference is None:
        reference = reference_output(instance)
    run_seed = instance.seed if seed is None else seed
    try:
        with faulty(faults) if faults is not None else nullcontext():
            if audit:
                with audited():
                    run = case.run(instance, run_seed)
            else:
                run = case.run(instance, run_seed)
    except Exception as exc:  # noqa: BLE001 - the record carries the failure
        return DifferentialRecord(
            case.name, instance.label, instance.kind, 0, 0, 0, None,
            error=f"{type(exc).__name__}: {exc}",
        )

    record = DifferentialRecord(
        case.name, instance.label, instance.kind,
        out_size=len(run.rows) if run.rows is not None else 0,
        max_load=run.stats.max_load,
        rounds=run.stats.num_rounds,
        diff=None,
    )
    if run.rows is not None:
        if instance.kind == "sort":
            # Sorted output is order-sensitive: exact sequence equality.
            record.diff = multiset_diff(
                [(i, v) for i, v in enumerate(reference)],
                [(i, v) for i, v in enumerate(run.rows)],
            )
        else:
            record.diff = multiset_diff(reference, run.rows)
    else:
        record.matrix_ok = matrices_close(reference, run.matrix.tolist())

    if instance.kind in RELATIONAL_KINDS and run.rows is not None:
        assert instance.query is not None
        record.agm_ok = output_within_agm(
            instance.query, instance.sizes, len(run.rows)
        )
        record.agm_ratio = agm_ratio(instance.query, instance.sizes, len(run.rows))

    out_size = len(reference) if isinstance(reference, list) else 0
    record.claim = case.claim(instance, run, out_size)
    if record.claim is not None:
        record.load_ok = record.claim.conforms(run.stats.max_load)
    return record


@dataclass
class DifferentialReport:
    """Aggregated outcome of a differential sweep."""

    records: list[DifferentialRecord] = field(default_factory=list)
    instances: int = 0

    @property
    def failures(self) -> list[DifferentialRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def mismatches(self) -> list[DifferentialRecord]:
        return [r for r in self.records if not r.output_ok]

    @property
    def bound_violations(self) -> list[DifferentialRecord]:
        return [r for r in self.records if r.output_ok and not (r.agm_ok and r.load_ok)]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_algorithm(self) -> dict[str, list[DifferentialRecord]]:
        grouped: dict[str, list[DifferentialRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.algorithm, []).append(record)
        return grouped


def run_differential(
    instances: Iterable[Instance],
    algorithms: Sequence[AlgorithmCase] = ALGORITHMS,
    audit: bool = True,
    faults: bool = False,
    on_record: Callable[[DifferentialRecord], None] | None = None,
) -> DifferentialReport:
    """Run every applicable entry point on every instance; collect records.

    ``faults=True`` runs each execution under its reproducible randomized
    :class:`~repro.mpc.faults.FaultPlan` (see :func:`fault_plan_for`).
    """
    report = DifferentialReport()
    for instance in instances:
        report.instances += 1
        reference = reference_output(instance)
        for case in algorithms:
            if not case.applies(instance):
                continue
            plan = fault_plan_for(case.name, instance) if faults else None
            record = run_case(
                case, instance, reference=reference, audit=audit, faults=plan
            )
            report.records.append(record)
            if on_record is not None:
                on_record(record)
    return report
