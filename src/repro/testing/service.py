"""``selftest --service`` — concurrency validation of every entry point.

The differential harness (:mod:`repro.testing.differential`) proves each
of the sixteen algorithm entry points correct *in isolation*; this
module proves them correct *under contention*. The same workload is run
twice:

1. a **serial oracle pass** — one thread, audits on — establishing the
   expected output fingerprint, max load, and round count for every
   (algorithm, instance) execution;
2. a **concurrent pass** — the same executions dealt round-robin to k
   barrier-started threads, audits off (the conservation auditor is a
   module-global ambient and is exercised by the serial pass).

Every concurrent execution must be **byte-identical** to its serial
twin: same canonical output fingerprint (sorted rows; exact sequence
for sorting; matrix cells for matmul), same L_max, same round count.
Any drift — a racy cache, a shared-relation corruption, a cross-thread
config leak — shows up as a positional mismatch with both sides
printed.

Each worker thread runs inside its own copy of the submitting thread's
:mod:`contextvars` context, so ambient kernel/backend forcing applies
to the concurrent pass exactly as to the serial one (a ``Context`` is
single-entrant — one copy per thread, never shared).
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass, field

from repro.testing.differential import (
    ALGORITHMS,
    AlgorithmCase,
    Instance,
    generate_instances,
    reference_output,
)
from repro.testing.oracle import matrices_close, multiset_diff

__all__ = [
    "ServiceSelftestReport",
    "ServiceSweepRecord",
    "run_service_selftest",
]


@dataclass
class ServiceSweepRecord:
    """One execution's comparable identity: output bytes + measured cost."""

    algorithm: str
    instance: str
    fingerprint: tuple | None      # canonical output (None on error)
    out_size: int
    max_load: int
    rounds: int
    oracle_ok: bool
    error: str | None = None

    def identity(self) -> tuple:
        """What a serial and a concurrent run must agree on, byte for byte."""
        return (
            self.algorithm, self.instance, self.fingerprint,
            self.max_load, self.rounds,
        )

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.algorithm} on {self.instance}: raised {self.error}"
        status = "ok" if self.oracle_ok else "oracle mismatch"
        return (
            f"{self.algorithm} on {self.instance}: {status} "
            f"(out={self.out_size}, L={self.max_load}, rounds={self.rounds})"
        )


@dataclass
class ServiceSelftestReport:
    """Serial-vs-concurrent comparison across the whole workload."""

    threads: int
    instances: int
    serial: list[ServiceSweepRecord] = field(default_factory=list)
    concurrent: list[ServiceSweepRecord] = field(default_factory=list)

    @property
    def drift(self) -> list[str]:
        """Positional serial/concurrent differences (must be empty)."""
        lines = []
        if len(self.serial) != len(self.concurrent):
            lines.append(
                f"execution counts differ: {len(self.serial)} serial, "
                f"{len(self.concurrent)} concurrent"
            )
            return lines
        for a, b in zip(self.serial, self.concurrent):
            if a.identity() != b.identity():
                what = []
                if a.fingerprint != b.fingerprint:
                    what.append(f"output bytes (sizes {a.out_size}/{b.out_size})")
                if a.max_load != b.max_load:
                    what.append(f"L_max {a.max_load}/{b.max_load}")
                if a.rounds != b.rounds:
                    what.append(f"rounds {a.rounds}/{b.rounds}")
                if (a.error is None) != (b.error is None):
                    what.append(f"errors {a.error}/{b.error}")
                lines.append(
                    f"{a.algorithm} on {a.instance}: serial vs concurrent "
                    f"differ on {', '.join(what) or 'identity'}"
                )
        return lines

    @property
    def failures(self) -> list[str]:
        lines = [r.describe() for r in self.serial if not r.oracle_ok]
        lines += [r.describe() for r in self.concurrent if not r.oracle_ok]
        lines += self.drift
        return lines

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_table(self) -> str:
        by_algorithm: dict[str, int] = {}
        for record in self.concurrent:
            by_algorithm[record.algorithm] = by_algorithm.get(record.algorithm, 0) + 1
        header = f"{'algorithm':<24} {'runs':>5}  serial==concurrent"
        lines = [header, "-" * len(header)]
        drift_by_algorithm = {
            line.split(" on ")[0] for line in self.drift if " on " in line
        }
        for name in sorted(by_algorithm):
            verdict = "DRIFT" if name in drift_by_algorithm else "byte-identical"
            lines.append(f"{name:<24} {by_algorithm[name]:>5}  {verdict}")
        lines.append("-" * len(header))
        lines.append(
            f"instances={self.instances} executions={len(self.concurrent)} "
            f"threads={self.threads} "
            f"verdict={'PASS' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def _execute(
    case: AlgorithmCase, instance: Instance, reference, audit: bool
) -> ServiceSweepRecord:
    """Run one entry point and reduce its output to a canonical fingerprint."""
    from contextlib import nullcontext

    from repro.mpc.audit import audited

    try:
        with audited() if audit else nullcontext():
            run = case.run(instance, instance.seed)
    except Exception as exc:  # noqa: BLE001 - the record carries the failure
        return ServiceSweepRecord(
            case.name, instance.label, None, 0, 0, 0, False,
            error=f"{type(exc).__name__}: {exc}",
        )
    if run.rows is not None:
        if instance.kind == "sort":
            # Sorting is order-sensitive: the sequence IS the bytes.
            fingerprint = tuple(run.rows)
            oracle_ok = list(run.rows) == list(reference)
        else:
            fingerprint = tuple(sorted(run.rows))
            oracle_ok = not multiset_diff(reference, run.rows)
        out_size = len(run.rows)
    else:
        cells = run.matrix.tolist()
        fingerprint = tuple(tuple(row) for row in cells)
        oracle_ok = matrices_close(reference, cells)
        out_size = len(cells)
    return ServiceSweepRecord(
        case.name, instance.label, fingerprint, out_size,
        run.stats.max_load, run.stats.num_rounds, oracle_ok,
    )


def run_service_selftest(
    instances: int = 24,
    threads: int = 4,
    seed: int = 0,
    kinds: list[str] | None = None,
    verbose: bool = False,
) -> ServiceSelftestReport:
    """Serial oracle pass, then the same sweep under k threads; compare.

    The concurrent pass deals executions round-robin across
    barrier-started threads, so neighbours in the serial order run on
    *different* threads at the *same* time — maximal interleaving of the
    shared relations, kernels, and planner paths. Audits stay on for the
    serial pass only (the auditor is a process-wide ambient).
    """
    if threads < 2:
        raise ValueError(f"a concurrency sweep needs at least 2 threads, got {threads}")
    workload = generate_instances(instances, seed=seed, kinds=kinds)
    items: list[tuple[AlgorithmCase, Instance, object]] = []
    for instance in workload:
        reference = reference_output(instance)
        for case in ALGORITHMS:
            if case.applies(instance):
                items.append((case, instance, reference))

    serial = [
        _execute(case, instance, reference, audit=True)
        for case, instance, reference in items
    ]
    if verbose:
        for record in serial:
            print(f"serial: {record.describe()}")

    results: list[ServiceSweepRecord | None] = [None] * len(items)
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def worker(thread_index: int, context: contextvars.Context) -> None:
        try:
            barrier.wait(timeout=30)
            for index in range(thread_index, len(items), threads):
                case, instance, reference = items[index]
                results[index] = context.run(
                    _execute, case, instance, reference, False
                )
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [
        threading.Thread(
            target=worker,
            # One private context copy per thread: Contexts are
            # single-entrant, and each copy carries the submitter's
            # ambient kernel/backend forcing into the worker.
            args=(index, contextvars.copy_context()),
            name=f"service-selftest-{index}",
        )
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]

    report = ServiceSelftestReport(
        threads=threads,
        instances=len(workload),
        serial=serial,
        concurrent=[record for record in results if record is not None],
    )
    if verbose:
        for record in report.concurrent:
            print(f"concurrent: {record.describe()}")
    return report
