"""Differential-testing oracle subsystem.

The correctness backbone of the reproduction: a trusted single-node
oracle (:mod:`repro.testing.oracle`), a randomized differential runner
covering all sixteen MPC algorithm entry points
(:mod:`repro.testing.differential`), metamorphic and analytic-bound
conformance checks (:mod:`repro.testing.properties`), and the
``python -m repro selftest`` gate (:mod:`repro.testing.selftest`).
"""

from repro.testing.differential import (
    ALGORITHMS,
    AlgorithmCase,
    CaseRun,
    DifferentialRecord,
    DifferentialReport,
    Instance,
    LoadClaim,
    algorithm,
    generate_instances,
    reference_output,
    run_case,
    run_differential,
)
from repro.testing.oracle import (
    MultisetDiff,
    matrices_close,
    multiset_diff,
    oracle_band_join,
    oracle_join,
    oracle_matmul,
    oracle_product,
    oracle_sort,
    oracle_two_way,
    same_bag,
)
from repro.testing.properties import (
    METAMORPHIC_CHECKS,
    PropertyResult,
    check_load_monotonicity,
    check_p_stability,
    check_seed_invariance,
    check_tuple_permutation,
    permuted_instance,
    run_metamorphic,
    with_servers,
)
from repro.testing.planner import (
    PlannerRecord,
    PlannerReport,
    run_planner_selftest,
)
from repro.testing.selftest import SelftestReport, run_selftest

__all__ = [
    "ALGORITHMS",
    "METAMORPHIC_CHECKS",
    "AlgorithmCase",
    "CaseRun",
    "DifferentialRecord",
    "DifferentialReport",
    "Instance",
    "LoadClaim",
    "MultisetDiff",
    "PlannerRecord",
    "PlannerReport",
    "PropertyResult",
    "SelftestReport",
    "algorithm",
    "check_load_monotonicity",
    "check_p_stability",
    "check_seed_invariance",
    "check_tuple_permutation",
    "generate_instances",
    "matrices_close",
    "multiset_diff",
    "oracle_band_join",
    "oracle_join",
    "oracle_matmul",
    "oracle_product",
    "oracle_sort",
    "oracle_two_way",
    "permuted_instance",
    "reference_output",
    "run_case",
    "run_differential",
    "run_metamorphic",
    "run_planner_selftest",
    "run_selftest",
    "same_bag",
    "with_servers",
]
