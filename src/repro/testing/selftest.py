"""``python -m repro selftest`` — the repo-wide correctness gate.

One command that differentially validates all sixteen algorithm entry
points against the single-node oracle on a budget of randomized
instances (uniform, Zipf-skewed, graph-shaped), runs the metamorphic
checks on a sample of them, and verifies the analytic-bound conformance
(load formulas and the AGM output bound). Exit status 0 means every
check passed; the report table lists per-algorithm outcomes either way.

Intended uses:

- CI gate: ``python -m repro selftest`` (defaults: 120 instances);
- quick local smoke: ``python -m repro selftest --instances 16``;
- debugging one algorithm: ``python -m repro selftest --algorithm
  skew_join --verbose``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.testing.differential import (
    ALGORITHMS,
    DifferentialReport,
    algorithm,
    generate_instances,
    run_differential,
)
from repro.testing.properties import PropertyResult, run_metamorphic


@dataclass
class SelftestReport:
    """Everything one selftest run measured."""

    differential: DifferentialReport
    metamorphic: list[PropertyResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.differential.ok and all(r.ok for r in self.metamorphic)

    @property
    def failures(self) -> list[str]:
        lines = [r.describe() for r in self.differential.failures]
        lines += [r.describe() for r in self.metamorphic if not r.ok]
        return lines

    def summary_table(self) -> str:
        """Per-algorithm rollup of the differential sweep."""
        header = (
            f"{'algorithm':<24} {'runs':>5} {'output':>7} {'agm':>5} "
            f"{'load':>5} {'maxL':>6} {'claim-use':>10}"
        )
        lines = [header, "-" * len(header)]
        for name, records in sorted(self.differential.by_algorithm().items()):
            out_ok = sum(1 for r in records if r.output_ok)
            agm_ok = sum(1 for r in records if r.agm_ok)
            load_ok = sum(1 for r in records if r.load_ok)
            max_load = max((r.max_load for r in records), default=0)
            ratios = [r.claim.ratio(r.max_load) for r in records if r.claim is not None]
            worst = max(ratios, default=0.0)
            lines.append(
                f"{name:<24} {len(records):>5} {out_ok:>3}/{len(records):<3} "
                f"{agm_ok:>5} {load_ok:>5} {max_load:>6} {worst:>9.0%}"
            )
        meta_ok = sum(1 for r in self.metamorphic if r.ok)
        lines.append("-" * len(header))
        lines.append(
            f"instances={self.differential.instances} "
            f"executions={len(self.differential.records)} "
            f"metamorphic={meta_ok}/{len(self.metamorphic)} "
            f"verdict={'PASS' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def run_selftest(
    instances: int = 120,
    seed: int = 0,
    kinds: list[str] | None = None,
    algorithms: list[str] | None = None,
    metamorphic_every: int = 8,
    monotonic_every: int = 24,
    audit: bool = True,
    verbose: bool = False,
    kernels: bool | None = None,
    faults: bool = False,
    backend: str | None = None,
    memo: bool | None = None,
) -> SelftestReport:
    """Run the whole harness under one instance budget.

    Every instance goes through the differential sweep; every
    ``metamorphic_every``-th also gets the metamorphic checks and every
    ``monotonic_every``-th the (4-run) load-monotonicity ladder, keeping
    the total execution count proportional to the budget. ``kernels``
    forces the columnar kernels on or off for the whole run (``None``
    keeps the ambient ``REPRO_KERNELS`` setting); ``backend`` does the
    same for the execution backend (``REPRO_BACKEND``) and ``memo`` for
    the intra-query memoization layer (``REPRO_MEMO``).
    ``faults=True`` runs every differential execution under a
    reproducible randomized :class:`~repro.mpc.faults.FaultPlan` with
    recovery enabled and demands the same outputs, loads, and clean
    audits as a fault-free run (metamorphic checks are skipped in this
    mode — their re-runs vary ``p`` and seeds, which would change the
    plans mid-comparison).
    """
    from repro.exec.config import use_backend
    from repro.kernels.config import use_kernels
    from repro.kernels.memo import use_memo

    with use_kernels(kernels), use_backend(backend), use_memo(memo):
        return _run_selftest(
            instances, seed, kinds, algorithms,
            0 if faults else metamorphic_every,
            0 if faults else monotonic_every,
            audit, verbose, faults,
        )


def _run_selftest(
    instances: int,
    seed: int,
    kinds: list[str] | None,
    algorithms: list[str] | None,
    metamorphic_every: int,
    monotonic_every: int,
    audit: bool,
    verbose: bool,
    faults: bool = False,
) -> SelftestReport:
    cases = (
        ALGORITHMS
        if algorithms is None
        else tuple(algorithm(name) for name in algorithms)
    )
    workload = generate_instances(instances, seed=seed, kinds=kinds)

    def narrate(record) -> None:
        if verbose:
            print(record.describe())

    differential = run_differential(
        workload, cases, audit=audit, faults=faults,
        on_record=narrate if verbose else None,
    )

    metamorphic: list[PropertyResult] = []
    if metamorphic_every:
        sample = workload[::metamorphic_every]
        metamorphic += run_metamorphic(sample, cases, monotonicity=False)
    if monotonic_every:
        sample = workload[::monotonic_every]
        metamorphic += run_metamorphic(sample, cases, checks=(), monotonicity=True)
    if verbose:
        for result in metamorphic:
            print(result.describe())
    return SelftestReport(differential, metamorphic)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro selftest",
        description="Differentially validate every MPC algorithm against the oracle.",
    )
    parser.add_argument("--instances", type=int, default=120,
                        help="randomized instance budget (default 120)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--kinds", nargs="*", default=None,
                        help="restrict instance kinds (two_way triangle path "
                             "star product sort band matmul)")
    parser.add_argument("--algorithm", action="append", dest="algorithms",
                        default=None, help="restrict to one entry point "
                        "(repeatable)")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic checks")
    parser.add_argument("--no-audit", action="store_true",
                        help="skip the cluster conservation audits")
    parser.add_argument("--verbose", action="store_true",
                        help="print every record as it completes")
    parser.add_argument("--kernels", choices=("on", "off", "both"), default=None,
                        help="force the columnar kernels on/off, or run the "
                             "sweep under both modes and cross-check loads "
                             "(default: ambient REPRO_KERNELS setting)")
    parser.add_argument("--faults", action="store_true",
                        help="run every execution under a reproducible "
                             "randomized fault plan (crashes, stragglers, "
                             "channel faults) with recovery enabled; outputs "
                             "and audits must match the fault-free contract")
    parser.add_argument("--backend", choices=("inline", "process", "both"),
                        default=None,
                        help="force the execution backend, or run the sweep "
                             "under both backends and cross-check outputs, "
                             "loads, and rounds (default: ambient "
                             "REPRO_BACKEND setting)")
    parser.add_argument("--memo", choices=("on", "off", "both"), default=None,
                        help="force intra-query memoization on/off, or run "
                             "the sweep under both and cross-check outputs, "
                             "loads, and rounds (default: ambient REPRO_MEMO "
                             "setting)")
    parser.add_argument("--service", action="store_true",
                        help="validate every entry point under concurrent "
                             "execution instead: the full sweep runs once "
                             "serially (audits on) and once across "
                             "--threads barrier-started threads, and every "
                             "concurrent result must be byte-identical to "
                             "its serial twin (see repro.testing.service)")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread count for --service (default 4)")
    parser.add_argument("--planner", action="store_true",
                        help="validate the cost-based optimizer instead: "
                             "auto-planned output must be byte-identical to "
                             "the oracle and to the forced chosen strategy, "
                             "and measured L_max must sit within each "
                             "prediction's constant envelope (see "
                             "repro.testing.planner)")
    args = parser.parse_args(argv)

    if args.service:
        from repro.testing.service import run_service_selftest

        kernels_mode = {"on": True, "off": False, "both": None, None: None}[
            args.kernels
        ]
        backend_mode = None if args.backend == "both" else args.backend
        memo_mode = {"on": True, "off": False, "both": None, None: None}[
            args.memo
        ]
        from repro.exec.config import use_backend
        from repro.kernels.config import use_kernels
        from repro.kernels.memo import use_memo

        with use_kernels(kernels_mode), use_backend(backend_mode), \
                use_memo(memo_mode):
            report = run_service_selftest(
                instances=args.instances if args.instances != 120 else 24,
                threads=args.threads, seed=args.seed, kinds=args.kinds,
                verbose=args.verbose,
            )
        print(report.summary_table())
        if not report.ok:
            print("\nfailures:", file=sys.stderr)
            for line in report.failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        return 0

    if args.planner:
        from repro.kernels.memo import use_memo
        from repro.testing.planner import run_planner_selftest

        memo_mode = {"on": True, "off": False, "both": None, None: None}[
            args.memo
        ]
        if args.kernels == "both" or args.backend == "both":
            status = 0
            modes = (
                [(True, None), (False, None)] if args.kernels == "both"
                else [(None, "inline"), (None, "process")]
            )
            for kernels_mode, backend_mode in modes:
                label = (
                    f"kernels {'on' if kernels_mode else 'off'}"
                    if backend_mode is None else f"backend {backend_mode}"
                )
                print(f"=== planner / {label} ===")
                with use_memo(memo_mode):
                    report = run_planner_selftest(
                        instances=args.instances, seed=args.seed,
                        kinds=args.kinds, verbose=args.verbose,
                        kernels=kernels_mode, backend=backend_mode,
                    )
                print(report.summary_table())
                if not report.ok:
                    for record in report.failures:
                        print(f"  {record.describe()}", file=sys.stderr)
                    status = 1
            return status
        kernels_mode = {"on": True, "off": False, None: None}[args.kernels]
        with use_memo(memo_mode):
            report = run_planner_selftest(
                instances=args.instances, seed=args.seed, kinds=args.kinds,
                verbose=args.verbose, kernels=kernels_mode,
                backend=args.backend,
            )
        print(report.summary_table())
        if not report.ok:
            print("\nfailures:", file=sys.stderr)
            for record in report.failures:
                print(f"  {record.describe()}", file=sys.stderr)
            return 1
        return 0

    def run(
        kernels: bool | None, backend: str | None, memo: bool | None
    ) -> SelftestReport:
        return run_selftest(
            instances=args.instances,
            seed=args.seed,
            kinds=args.kinds,
            algorithms=args.algorithms,
            metamorphic_every=0 if args.no_metamorphic else 8,
            monotonic_every=0 if args.no_metamorphic else 24,
            audit=not args.no_audit,
            verbose=args.verbose,
            kernels=kernels,
            faults=args.faults,
            backend=backend,
            memo=memo,
        )

    def report_failures(report: SelftestReport) -> None:
        print("\nfailures:", file=sys.stderr)
        for line in report.failures:
            print(f"  {line}", file=sys.stderr)

    # The sweep is the cell product of every axis given as "both": up to
    # the full kernels x backend x memo 2x2x2 grid. Every cell must pass
    # on its own, then cells differing in exactly one axis are compared
    # pairwise: the kernels axis must preserve model costs (loads), the
    # backend and memo axes full observational identity (outputs, loads,
    # and rounds).
    kernels_cells: list[bool | None] = (
        [True, False] if args.kernels == "both"
        else [{"on": True, "off": False, None: None}[args.kernels]]
    )
    backend_cells: list[str | None] = (
        ["inline", "process"] if args.backend == "both" else [args.backend]
    )
    memo_cells: list[bool | None] = (
        [True, False] if args.memo == "both"
        else [{"on": True, "off": False, None: None}[args.memo]]
    )
    cells = [
        (kernels, backend, memo)
        for kernels in kernels_cells
        for backend in backend_cells
        for memo in memo_cells
    ]

    if len(cells) == 1:
        report = run(*cells[0])
        print(report.summary_table())
        if not report.ok:
            report_failures(report)
            return 1
        return 0

    def cell_label(kernels: bool | None, backend: str | None,
                   memo: bool | None) -> str:
        parts = []
        if args.kernels == "both":
            parts.append(f"kernels {'on' if kernels else 'off'}")
        if args.backend == "both":
            parts.append(str(backend))
        if args.memo == "both":
            parts.append(f"memo {'on' if memo else 'off'}")
        return " / ".join(parts)

    status = 0
    reports: dict[tuple, SelftestReport] = {}
    for cell in cells:
        print(f"=== {cell_label(*cell)} ===")
        report = run(*cell)
        reports[cell] = report
        print(report.summary_table())
        if not report.ok:
            report_failures(report)
            status = 1

    def check(drift: list[str], title: str) -> None:
        nonlocal status
        if drift:
            print(f"\n{title}:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            status = 1

    def held(*parts: str | None) -> str:
        kept = [part for part in parts if part]
        return f" ({', '.join(kept)})" if kept else ""

    def backend_held(backend: str | None) -> str | None:
        return backend if args.backend == "both" else None

    def memo_held(memo: bool | None) -> str | None:
        if args.memo != "both":
            return None
        return f"memo {'on' if memo else 'off'}"

    def kernels_held(kernels: bool | None) -> str | None:
        if args.kernels != "both":
            return None
        return f"kernels {'on' if kernels else 'off'}"

    if args.kernels == "both":
        for backend in backend_cells:
            for memo in memo_cells:
                check(
                    cross_mode_drift(
                        reports[(True, backend, memo)],
                        reports[(False, backend, memo)],
                    ),
                    "kernels on/off drift"
                    + held(backend_held(backend), memo_held(memo)),
                )
    if args.backend == "both":
        for kernels in kernels_cells:
            for memo in memo_cells:
                check(
                    cross_backend_drift(
                        reports[(kernels, "inline", memo)],
                        reports[(kernels, "process", memo)],
                    ),
                    "inline/process drift"
                    + held(kernels_held(kernels), memo_held(memo)),
                )
    if args.memo == "both":
        for kernels in kernels_cells:
            for backend in backend_cells:
                check(
                    cross_memo_drift(
                        reports[(kernels, backend, True)],
                        reports[(kernels, backend, False)],
                    ),
                    "memo on/off drift"
                    + held(kernels_held(kernels), backend_held(backend)),
                )

    if status == 0:
        swept = [
            name for name, flag in (
                ("kernels", args.kernels == "both"),
                ("backend", args.backend == "both"),
                ("memo", args.memo == "both"),
            ) if flag
        ]
        print("no cross-mode drift across the full "
              + " x ".join(swept) + " sweep")
    return status


def cross_mode_drift(
    on: SelftestReport, off: SelftestReport
) -> list[str]:
    """Differences in model-visible cost between the two kernel modes.

    The kernels must not change what the simulator *measures* — compare
    the per-execution ``(algorithm, max_load)`` sequences of two sweeps
    over the same workload.
    """
    on_records = on.differential.records
    off_records = off.differential.records
    if len(on_records) != len(off_records):
        return [
            f"execution counts differ: {len(on_records)} with kernels on, "
            f"{len(off_records)} off"
        ]
    return [
        f"{a.algorithm}: max_load {a.max_load} with kernels on, {b.max_load} off"
        for a, b in zip(on_records, off_records)
        if a.algorithm != b.algorithm or a.max_load != b.max_load
    ]


def cross_backend_drift(
    inline: SelftestReport, process: SelftestReport
) -> list[str]:
    """Differences between the inline and process execution backends.

    The backends must be observationally identical, not just load-equal:
    every execution is compared on output size, max load, *and* round
    count (output contents are already differentially validated against
    the oracle inside each sweep, so equal sizes + both oracle-exact
    means equal multisets).
    """
    return observational_drift(inline, process, "inline", "process")


def cross_memo_drift(on: SelftestReport, off: SelftestReport) -> list[str]:
    """Differences between memo-enabled and memo-disabled sweeps.

    Memoized replay only changes *how* a round's messages are produced,
    never what they contain: the partition cache must be byte-identical
    to rebuilding from scratch, so outputs, loads, and round counts are
    compared in full — the same contract as the backend axis.
    """
    return observational_drift(on, off, "memo on", "memo off")


def observational_drift(
    a_report: SelftestReport, b_report: SelftestReport,
    a_label: str, b_label: str,
) -> list[str]:
    """Full per-execution (out_size, max_load, rounds) comparison."""
    a_records = a_report.differential.records
    b_records = b_report.differential.records
    if len(a_records) != len(b_records):
        return [
            f"execution counts differ: {len(a_records)} {a_label}, "
            f"{len(b_records)} {b_label}"
        ]
    drift = []
    for a, b in zip(a_records, b_records):
        if a.algorithm != b.algorithm or a.instance != b.instance:
            drift.append(
                f"sweep order diverged: {a.algorithm}/{a.instance} {a_label} "
                f"vs {b.algorithm}/{b.instance} {b_label}"
            )
        elif (a.out_size, a.max_load, a.rounds) != (
            b.out_size, b.max_load, b.rounds
        ):
            drift.append(
                f"{a.algorithm} on {a.instance}: "
                f"(out={a.out_size}, L={a.max_load}, rounds={a.rounds}) "
                f"{a_label} vs (out={b.out_size}, L={b.max_load}, "
                f"rounds={b.rounds}) {b_label}"
            )
    return drift


if __name__ == "__main__":
    raise SystemExit(main())
