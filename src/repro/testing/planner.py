"""``selftest --planner`` — the optimizer's predicted-vs-measured gate.

Runs :func:`repro.planner.optimizer.plan_query` over the relational
slice of the differential-oracle corpus and holds every decision to
three contracts:

- **oracle byte-identity** — the auto-planned output, sorted, equals the
  single-node oracle's rows exactly (not merely as a multiset summary);
- **forced-strategy identity** — re-running the query while explicitly
  forcing the chosen strategy reproduces the same rows, L_max, and round
  count (``strategy="auto"`` is a pure shortcut, never a different
  executor);
- **envelope conformance** — the measured L_max is within the chosen
  candidate's constant envelope ``factor · predicted + additive``, the
  same slack discipline the differential claims use;

plus an internal-consistency check that the chosen strategy's predicted
load never exceeds any other applicable candidate's (the cost model
actually picked a minimum).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planner.optimizer import ExplainResult, execute_strategy
from repro.testing.differential import RELATIONAL_KINDS, generate_instances
from repro.testing.oracle import oracle_join


@dataclass
class PlannerRecord:
    """One instance's planner verdicts."""

    instance: str
    kind: str
    chosen: str
    predicted_load: float
    predicted_rounds: int
    envelope: float
    measured_load: int
    measured_rounds: int
    out_size: int
    oracle_identical: bool
    forced_identical: bool
    envelope_ok: bool
    optimal_choice: bool
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.oracle_identical
            and self.forced_identical
            and self.envelope_ok
            and self.optimal_choice
        )

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.instance}: raised {self.error}"
        parts = []
        if not self.oracle_identical:
            parts.append("output differs from the oracle")
        if not self.forced_identical:
            parts.append(f"forcing {self.chosen!r} diverged from auto")
        if not self.envelope_ok:
            parts.append(
                f"measured L {self.measured_load} above envelope "
                f"{self.envelope:.1f} (predicted {self.predicted_load:.1f})"
            )
        if not self.optimal_choice:
            parts.append("a rejected candidate predicted lower load")
        status = "; ".join(parts) if parts else "ok"
        return f"{self.instance}: chose {self.chosen} -> {status}"


@dataclass
class PlannerReport:
    """Aggregated outcome of one planner sweep."""

    records: list[PlannerRecord] = field(default_factory=list)
    instances: int = 0

    @property
    def failures(self) -> list[PlannerRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok(self) -> bool:
        return bool(self.records) and not self.failures

    def by_strategy(self) -> dict[str, list[PlannerRecord]]:
        grouped: dict[str, list[PlannerRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.chosen, []).append(record)
        return grouped

    def summary_table(self) -> str:
        header = (
            f"{'chosen strategy':<12} {'runs':>5} {'oracle':>7} {'forced':>7} "
            f"{'envelope':>9} {'optimal':>8} {'worst L/env':>12}"
        )
        lines = [header, "-" * len(header)]
        for name, records in sorted(self.by_strategy().items()):
            oracle_ok = sum(1 for r in records if r.oracle_identical)
            forced_ok = sum(1 for r in records if r.forced_identical)
            env_ok = sum(1 for r in records if r.envelope_ok)
            optimal = sum(1 for r in records if r.optimal_choice)
            worst = max(
                (r.measured_load / r.envelope for r in records if r.envelope > 0),
                default=0.0,
            )
            lines.append(
                f"{name:<12} {len(records):>5} {oracle_ok:>3}/{len(records):<3} "
                f"{forced_ok:>3}/{len(records):<3} {env_ok:>5}/{len(records):<3} "
                f"{optimal:>4}/{len(records):<3} {worst:>11.0%}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"instances={self.instances} failures={len(self.failures)} "
            f"verdict={'PASS' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def check_instance(instance) -> PlannerRecord:
    """Plan, execute, and verify one differential-corpus instance.

    The auto and forced runs both go through the full
    :class:`~repro.engine.Engine` wiring (parser, alignment cache,
    optimizer, dispatch), so this exercises exactly what a user of
    ``Engine.query(strategy="auto")`` gets.
    """
    from repro.engine import Engine

    assert instance.query is not None
    try:
        engine = Engine(instance.p, seed=instance.seed)
        for name, relation in instance.relations.items():
            engine.register(relation, name=name)
        auto = engine.query(instance.query, strategy="auto")
        explain: ExplainResult = auto.explain  # type: ignore[assignment]
        assert explain is not None
        chosen = explain.chosen_plan
        forced = engine.query(instance.query, strategy=explain.chosen)
        # The standalone dispatch must agree with the engine path too.
        direct_out, direct_stats = execute_strategy(
            instance.query, instance.relations, instance.p,
            explain.chosen, seed=instance.seed,
        )
    except Exception as exc:  # noqa: BLE001 - the record carries the failure
        return PlannerRecord(
            instance.label, instance.kind, "?", 0.0, 0, 0.0, 0, 0, 0,
            False, False, False, False,
            error=f"{type(exc).__name__}: {exc}",
        )
    oracle_rows = sorted(oracle_join(instance.query, instance.relations).rows())
    auto_rows = sorted(auto.output.rows())
    forced_identical = (
        auto.output.rows() == forced.output.rows()
        and auto.output.rows() == direct_out.rows()
        and auto.stats.max_load == forced.stats.max_load
        and auto.stats.max_load == direct_stats.max_load
        and auto.stats.num_rounds == forced.stats.num_rounds
        and auto.stats.num_rounds == direct_stats.num_rounds
    )
    auto_stats = auto.stats
    rejected = [
        c for c in explain.candidates
        if c.applicable and c.strategy != explain.chosen
    ]
    optimal = all(
        c.predicted_load is None or chosen.predicted_load <= c.predicted_load
        for c in rejected
    )
    return PlannerRecord(
        instance=instance.label,
        kind=instance.kind,
        chosen=explain.chosen,
        predicted_load=float(chosen.predicted_load or 0.0),
        predicted_rounds=int(chosen.predicted_rounds or 0),
        envelope=float(chosen.envelope or 0.0),
        measured_load=auto_stats.max_load,
        measured_rounds=auto_stats.num_rounds,
        out_size=len(auto_rows),
        oracle_identical=auto_rows == oracle_rows,
        forced_identical=forced_identical,
        envelope_ok=chosen.within_envelope(auto_stats.max_load),
        optimal_choice=optimal,
    )


def run_planner_selftest(
    instances: int = 120,
    seed: int = 0,
    kinds: list[str] | None = None,
    verbose: bool = False,
    kernels: bool | None = None,
    backend: str | None = None,
) -> PlannerReport:
    """Sweep the optimizer over the differential corpus's relational slice.

    ``kinds`` defaults to every relational kind; non-relational kinds
    (sort, band, matmul) have no conjunctive query to plan and are
    filtered out if requested.
    """
    from repro.exec.config import use_backend
    from repro.kernels.config import use_kernels

    selected = [
        k for k in (kinds if kinds is not None else RELATIONAL_KINDS)
        if k in RELATIONAL_KINDS
    ]
    report = PlannerReport()
    workload = generate_instances(instances, seed=seed, kinds=selected)
    with use_kernels(kernels), use_backend(backend):
        for instance in workload:
            report.instances += 1
            record = check_instance(instance)
            report.records.append(record)
            if verbose:
                print(record.describe())
    return report
