"""`repro.service` — the concurrent, multi-tenant query service.

The paper's model measures the communication load of *one* query; the
service layer makes throughput under *concurrent* load a first-class
quantity. :class:`QueryService` is a long-lived, thread-based front end
over :class:`repro.engine.Engine`:

- many in-flight SQL/CQ queries through a **bounded work queue** served
  by a pool of worker threads (global backpressure: a full queue
  rejects with :class:`~repro.errors.QueueFullError`);
- **per-tenant admission control**: an in-flight quota and a
  predicted-load cap priced by the PR 7 cost-based optimizer, with
  rejections surfaced as typed :class:`~repro.errors.AdmissionError`
  subclasses and counted in :class:`ServiceStats`;
- a shared :class:`~repro.data.warehouse.RelationWarehouse` behind a
  reader-writer lock — queries hold the read side, catalog mutations
  the write side;
- a real **plan/result cache** (:class:`ResultCache`) generalizing the
  engine's ``_align`` LRU: keyed on the query fingerprint plus every
  input relation's identity and mutation token, explicitly invalidated
  by warehouse writes, with hit/miss/eviction/invalidation counters;
- a **query-splitting rewriter** (:mod:`repro.service.splitter`) that
  partitions one conjunctive query into k disjoint mod-based branches
  executed as independent engine calls and merged with a byte-identity
  guarantee against the unsplit result.

``python -m repro serve`` stands up a service over a generated
warehouse and drives it with a configurable concurrent client load.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.service import (
    QueryService,
    ServiceResult,
    ServiceStats,
    ServiceTicket,
    TenantQuota,
)
from repro.service.splitter import merge_branches, split_bindings, split_relation

__all__ = [
    "CacheStats",
    "QueryService",
    "ResultCache",
    "ServiceResult",
    "ServiceStats",
    "ServiceTicket",
    "TenantQuota",
    "merge_branches",
    "split_bindings",
    "split_relation",
]
