"""The service's plan/result cache.

Generalizes the engine's ``_align`` LRU (PR 5/6) from per-atom aligned
inputs to whole query results. An entry is keyed on the **query
fingerprint** — canonical query text, execution parameters (p, seed,
strategy, split factor) — plus the **relation state**: every input
relation's name, object identity, and mutation token. The token keying
makes stale hits structurally impossible (an ``add``/``extend`` bumps
the token, so the old key can never be rebuilt), and the explicit
invalidation hook reclaims the dead entries eagerly: the warehouse
calls :meth:`ResultCache.invalidate_relation` inside its write lock,
so by the time any new query can be admitted the cache no longer holds
anything that mentions the mutated relation.

All operations are thread-safe under one internal lock; the cache never
holds its lock while user code runs.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

__all__ = ["CacheKey", "CacheStats", "ResultCache"]

# (name, id(relation), mutation token) per input relation, sorted by name.
RelationState = tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class CacheKey:
    """One cached execution's identity."""

    query: str                 # canonical query text
    p: int
    seed: int
    strategy: str
    split: int
    relation_state: RelationState

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(name for name, _, _ in self.relation_state)


@dataclass
class CacheStats:
    """Counters the service surfaces in :class:`~repro.service.ServiceStats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0     # entries dropped by explicit invalidation
    size: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded, thread-safe LRU over :class:`CacheKey` → result.

    ``capacity <= 0`` disables caching entirely (every lookup is a miss
    and stores are dropped) — the bench harness's "cache off" arm.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: dict[CacheKey, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: CacheKey) -> Any | None:
        """The cached value (bumped to most-recent), or None on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            # Refresh LRU recency (dict preserves insertion order).
            self._entries.pop(key)
            self._entries[key] = value
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            if self.capacity <= 0:
                return
            if key in self._entries:
                self._entries.pop(key)
            elif len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
                self._evictions += 1
            self._entries[key] = value

    def invalidate_relation(self, name: str) -> int:
        """Drop every entry whose key mentions ``name``; returns the count.

        This is the warehouse's invalidation listener: it runs inside
        the warehouse write lock, so no concurrent query can be filling
        the cache with the stale relation while the drop happens (fills
        require the read side).
        """
        with self._lock:
            dead = [
                key for key in self._entries if name in key.relation_names
            ]
            for key in dead:
                self._entries.pop(key)
            self._invalidations += len(dead)
            return len(dead)

    def invalidate_all(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._invalidations += count
            return count

    def keys(self) -> Iterable[CacheKey]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
            )
