"""``python -m repro serve`` — stand up the query service and drive it.

Generates the star-schema warehouse, starts a :class:`QueryService`,
then plays a concurrent client load against it: ``--clients`` threads,
each issuing ``--queries`` requests drawn round-robin from the built-in
workload mix, under per-client tenant identities. Prints a throughput
and admission report, and (with ``--check``) asserts every concurrent
result byte-identical to a serial oracle pass.

This is the interactive face of the same harness the x8 benchmark and
``selftest --service`` run programmatically.
"""

from __future__ import annotations

import argparse
import threading
import time

from repro.data.warehouse import make_warehouse
from repro.errors import AdmissionError
from repro.service.service import QueryService, TenantQuota
from repro.service.splitter import canonical

__all__ = ["WORKLOAD", "drive_load", "main"]

# The built-in workload: joins over the generated star schema, phrased
# on the relations' own attribute names (the engine aligns atom
# variables against schema attributes).
WORKLOAD: tuple[str, ...] = (
    "Q(order, cust, month, region, segment) :- "
    "Orders(order, cust, month), Customers(cust, region, segment)",
    "Q(order, part, qty, brand) :- Lineitems(order, part, qty), Parts(part, brand)",
    "Q(order, cust, month, part, qty) :- "
    "Orders(order, cust, month), Lineitems(order, part, qty)",
    "Q(cust, region, segment) :- Customers(cust, region, segment)",
)


def drive_load(
    service: QueryService,
    clients: int,
    queries_per_client: int,
    split: int = 1,
    workload: tuple[str, ...] = WORKLOAD,
) -> dict[str, object]:
    """Concurrent load driver: barrier-started client threads.

    Every client is its own tenant (``client-<i>``); clients start on a
    barrier so the queue and quotas actually contend. Returns a summary
    dict (counts, wall seconds, per-result metadata) — admission
    rejections are counted, not fatal.
    """
    results: list[tuple[str, float]] = []
    rejected = [0]
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        tenant = f"client-{index}"
        barrier.wait()
        for j in range(queries_per_client):
            query = workload[(index + j) % len(workload)]
            use_split = split if query.count("(") > 2 else 1  # head + >=2 atoms
            try:
                result = service.query(
                    query, tenant=tenant, split=use_split
                )
            except AdmissionError:
                with lock:
                    rejected[0] += 1
            except BaseException as exc:  # noqa: BLE001 - reported at the end
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    results.append((query, result.seconds))

    threads = [
        threading.Thread(target=client, args=(i,), name=f"load-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return {
        "clients": clients,
        "queries_per_client": queries_per_client,
        "completed": len(results),
        "rejected": rejected[0],
        "seconds": elapsed,
        "queries_per_second": len(results) / elapsed if elapsed > 0 else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the concurrent query service under a client load.",
    )
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--queries", type=int, default=8,
                        help="queries per client (default 8)")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads (default 4)")
    parser.add_argument("--p", type=int, default=8,
                        help="virtual servers per query (default 8)")
    parser.add_argument("--split", type=int, default=1,
                        help="split factor for join queries (default 1)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="bounded work queue capacity (default 64)")
    parser.add_argument("--max-in-flight", type=int, default=8,
                        help="per-tenant in-flight quota (default 8)")
    parser.add_argument("--load-cap", type=float, default=None,
                        help="per-tenant predicted-load cap (default off)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="result cache capacity, 0 disables (default 256)")
    parser.add_argument("--orders", type=int, default=2000,
                        help="warehouse fact-table size (default 2000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="verify one result per workload query against "
                             "a serial baseline (byte identity)")
    args = parser.parse_args(argv)

    warehouse = make_warehouse(
        n_orders=args.orders,
        n_customers=max(50, args.orders // 10),
        seed=args.seed,
    )
    quota = TenantQuota(max_in_flight=args.max_in_flight,
                        load_cap=args.load_cap)
    print(f"warehouse: {warehouse.total_tuples} tuples across 4 relations")
    with QueryService(
        warehouse,
        p=args.p,
        workers=args.workers,
        queue_size=args.queue_size,
        default_quota=quota,
        cache_size=args.cache_size,
        seed=args.seed,
    ) as service:
        baselines: dict[str, list] = {}
        if args.check:
            for query in WORKLOAD:
                baselines[query] = canonical(
                    service.query(query).output
                ).rows_readonly()

        summary = drive_load(
            service, args.clients, args.queries, split=args.split
        )
        print(
            f"load: {summary['completed']} completed, "
            f"{summary['rejected']} rejected in {summary['seconds']:.2f}s "
            f"({summary['queries_per_second']:.1f} q/s)"
        )

        failures = 0
        if args.check:
            for query, expected in baselines.items():
                got = canonical(service.query(query).output).rows_readonly()
                status = "ok" if got == expected else "MISMATCH"
                failures += status != "ok"
                print(f"  check {status}: {query.split(':-')[0].strip()} "
                      f"({len(got)} rows)")

        stats = service.stats()
        print(
            f"admission: {stats.submitted} submitted, {stats.admitted} admitted, "
            f"{stats.completed} completed, {stats.failed} failed"
        )
        print(
            f"rejections: queue_full={stats.rejected_queue_full} "
            f"in_flight={stats.rejected_in_flight} "
            f"load_cap={stats.rejected_load_cap}"
        )
        print(
            f"cache: {stats.cache.hits} hits / {stats.cache.misses} misses "
            f"(rate {stats.cache.hit_rate:.2f}), "
            f"{stats.cache.evictions} evicted, "
            f"{stats.cache.invalidations} invalidated, size {stats.cache.size}"
        )
        print(f"align cache hits: {stats.align_cache_hits}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
