"""The long-lived concurrent query service over :class:`repro.engine.Engine`.

Threading model (documented in DESIGN.md, tested by ``tests/service``):

- **Submitters** (any thread) run admission control synchronously:
  parse, tenant quota checks (in-flight slot reserved atomically under
  the stats lock; predicted-load cap priced by the cost-based
  optimizer under the warehouse read lock), then a non-blocking put
  into the bounded work queue. Every rejection is a typed
  :class:`~repro.errors.AdmissionError` and a counter — nothing about
  a rejected query ever reaches a worker.
- **Workers** (a fixed pool of daemon threads) pull jobs and execute
  them under the warehouse **read** lock inside the submitter's copied
  :mod:`contextvars` context (so ambient kernel/backend forcing crosses
  the queue). The shared engine's ``_align`` LRU and the service's
  :class:`~repro.service.cache.ResultCache` are both thread-safe; the
  relations themselves are safe for concurrent readers per the
  :mod:`repro.data.relation` contract.
- **Catalog writers** go through the warehouse's **write** lock
  (:meth:`QueryService.register` / :meth:`QueryService.extend`), which
  excludes all running queries, fires the cache invalidation listeners,
  and re-registers into the engine — so a query admitted after a write
  observes the new catalog, the bumped mutation tokens, and an already
  purged cache, in that order.

Lock ordering is strictly ``stats lock → (nothing)``, ``warehouse lock
→ cache/engine locks``; no path acquires them in reverse, so the
service cannot deadlock against itself.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.data.relation import Relation
from repro.data.warehouse import RelationWarehouse, Warehouse
from repro.engine import Engine
from repro.errors import (
    InFlightQuotaError,
    LoadCapQuotaError,
    OracleMismatchError,
    QueryError,
    QueueFullError,
    ServiceClosedError,
)
from repro.planner.optimizer import plan_query, price_branches
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.service.cache import CacheKey, CacheStats, ResultCache
from repro.service.splitter import canonical, merge_branches, split_bindings
from repro.testing.oracle import multiset_diff, oracle_join

__all__ = [
    "QueryService",
    "ServiceResult",
    "ServiceStats",
    "ServiceTicket",
    "TenantQuota",
]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_in_flight`` bounds how many of the tenant's queries may be
    admitted-but-unfinished at once (queued or executing).
    ``load_cap`` caps the optimizer's predicted max-load for a single
    query (``None`` = unlimited): the service prices the query — every
    branch, when split — before admitting it, so a tenant cannot queue
    work the cost model already knows will swamp the cluster.
    """

    max_in_flight: int = 8
    load_cap: float | None = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise QueryError(
                f"max_in_flight must be at least 1, got {self.max_in_flight}"
            )
        if self.load_cap is not None and self.load_cap <= 0:
            raise QueryError(
                f"load_cap must be positive, got {self.load_cap}"
            )


@dataclass
class TenantStats:
    """One tenant's admission ledger."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_in_flight: int = 0
    rejected_load_cap: int = 0
    rejected_queue_full: int = 0
    in_flight: int = 0


@dataclass
class ServiceStats:
    """A point-in-time snapshot of the service's counters."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_in_flight: int = 0
    rejected_load_cap: int = 0
    split_queries: int = 0
    align_cache_hits: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_in_flight
            + self.rejected_load_cap
        )


@dataclass
class ServiceResult:
    """What one admitted-and-finished query returns.

    ``output`` rows are in query-variable order; split executions are
    normalized to the canonical row order (so they are byte-comparable
    against ``canonical()`` of an unsplit run). ``max_load`` is the
    largest per-branch L_max, ``total_load`` the sum across branches
    (they coincide for split=1).
    """

    output: Relation
    tenant: str
    query: str
    strategy: tuple[str, ...]
    split: int
    predicted_load: float
    max_load: int
    total_load: int
    rounds: int
    cache_hit: bool
    seconds: float

    @property
    def load(self) -> int:
        return self.max_load


class ServiceTicket:
    """A handle to one admitted query; resolves to a :class:`ServiceResult`."""

    def __init__(self, tenant: str, query: str) -> None:
        self.tenant = tenant
        self.query = query
        self._done = threading.Event()
        self._result: ServiceResult | None = None
        self._error: BaseException | None = None

    def _resolve(self, result: ServiceResult | None,
                 error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Block until the query finishes; raise what the execution raised."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.query!r} (tenant {self.tenant!r}) did not "
                f"finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class _Job:
    ticket: ServiceTicket
    cq: ConjunctiveQuery
    strategy: str
    split: int
    verify: bool
    predicted: float
    context: contextvars.Context


class QueryService:
    """A bounded-queue, multi-tenant, cache-fronted query service."""

    _SENTINEL: object = None   # queue item that tells a worker to exit

    def __init__(
        self,
        warehouse: RelationWarehouse | Warehouse | Mapping[str, Relation] | None = None,
        p: int = 8,
        workers: int = 2,
        queue_size: int = 32,
        default_quota: TenantQuota | None = None,
        quotas: Mapping[str, TenantQuota] | None = None,
        cache_size: int = 256,
        seed: int = 0,
        kernels: bool | None = None,
        backend: str | None = None,
    ) -> None:
        if workers < 1:
            raise QueryError(f"need at least one worker thread, got {workers}")
        if queue_size < 1:
            raise QueryError(f"queue size must be at least 1, got {queue_size}")
        if isinstance(warehouse, Warehouse):
            warehouse = RelationWarehouse.from_warehouse(warehouse)
        elif warehouse is None:
            warehouse = RelationWarehouse()
        elif not isinstance(warehouse, RelationWarehouse):
            warehouse = RelationWarehouse(warehouse)
        self.warehouse = warehouse
        self.p = p
        self.seed = seed
        self.default_quota = default_quota or TenantQuota()
        self._quotas = dict(quotas or {})
        self.cache = ResultCache(cache_size)
        self._engine = Engine(p, seed=seed, kernels=kernels, backend=backend)
        with self.warehouse.read_view() as catalog:
            for name, relation in catalog.items():
                self._engine.register(relation, name=name)
        # Invalidation protocol: both listeners run inside the warehouse
        # write lock — cache entries die and the engine re-registers
        # (clearing its _align LRU) before any new query can be
        # admitted under the read lock.
        self.warehouse.add_invalidation_listener(self.cache.invalidate_relation)
        self.warehouse.add_invalidation_listener(self._sync_engine)

        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._stats_lock = threading.Lock()
        self._tenants: dict[str, TenantStats] = {}
        self._counters = ServiceStats()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------ catalog

    def _sync_engine(self, name: str) -> None:
        """Warehouse write-lock listener: mirror the change into the engine."""
        relation = self.warehouse._relations.get(name)  # caller holds the lock
        if relation is not None:
            self._engine.register(relation, name=name)

    def register(self, relation: Relation, name: str | None = None) -> None:
        """Add or replace a relation (write lock; invalidates the cache)."""
        self.warehouse.register(relation, name=name)

    def extend(self, name: str, rows) -> None:
        """Append rows to a relation (write lock; invalidates the cache)."""
        self.warehouse.extend(name, rows)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    # ---------------------------------------------------------- admission

    def _tenant(self, tenant: str) -> TenantStats:
        # Caller holds _stats_lock.
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats()
        return stats

    def _release(self, tenant: str) -> None:
        with self._stats_lock:
            self._tenant(tenant).in_flight -= 1

    def submit(
        self,
        query: str | ConjunctiveQuery,
        tenant: str = "default",
        strategy: str = "auto",
        split: int = 1,
        verify: bool = False,
    ) -> ServiceTicket:
        """Admit one query; returns a ticket (or raises a typed rejection).

        Admission happens on the calling thread: the in-flight slot is
        reserved atomically, the load cap (if any) is priced by the
        optimizer — per branch when ``split > 1`` — and the job enters
        the bounded queue without blocking. Any failure releases the
        slot and counts the precise rejection reason.
        """
        cq = parse_query(query) if isinstance(query, str) else query
        if split < 1:
            raise QueryError(f"split factor must be at least 1, got {split}")
        if split > 1 and len(cq.atoms) < 2:
            raise QueryError("splitting needs a query with at least two atoms")
        quota = self.quota_for(tenant)
        with self._stats_lock:
            if self._closed:
                raise ServiceClosedError("the query service has been closed")
            stats = self._tenant(tenant)
            self._counters.submitted += 1
            stats.submitted += 1
            if stats.in_flight >= quota.max_in_flight:
                self._counters.rejected_in_flight += 1
                stats.rejected_in_flight += 1
                raise InFlightQuotaError(
                    tenant, stats.in_flight, quota.max_in_flight
                )
            stats.in_flight += 1      # reserve the slot before pricing

        predicted = 0.0
        try:
            if quota.load_cap is not None:
                predicted = self._price(cq, strategy, split)
                if predicted > quota.load_cap:
                    with self._stats_lock:
                        self._counters.rejected_load_cap += 1
                        self._tenant(tenant).rejected_load_cap += 1
                    raise LoadCapQuotaError(tenant, predicted, quota.load_cap)

            ticket = ServiceTicket(tenant, str(cq))
            job = _Job(
                ticket, cq, strategy, split, verify, predicted,
                contextvars.copy_context(),
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                with self._stats_lock:
                    self._counters.rejected_queue_full += 1
                    self._tenant(tenant).rejected_queue_full += 1
                raise QueueFullError(tenant, self._queue.maxsize) from None
        except BaseException:
            self._release(tenant)
            raise
        with self._stats_lock:
            self._counters.admitted += 1
        return ticket

    def _price(self, cq: ConjunctiveQuery, strategy: str, split: int) -> float:
        """The optimizer's predicted load for this submission (admission)."""
        with self.warehouse.read_view() as catalog:
            bindings = {a.name: self._binding(catalog, a.name) for a in cq.atoms}
            if split == 1:
                explain = plan_query(cq, bindings, self.p, seed=self.seed)
                candidate = (
                    explain.chosen_plan if strategy == "auto"
                    else explain.candidate(strategy)
                    if any(c.strategy == strategy for c in explain.candidates)
                    else explain.chosen_plan
                )
                return candidate.predicted_load or 0.0
            branches = split_bindings(cq, bindings, split)
            return price_branches(cq, branches, self.p, seed=self.seed).predicted_load

    @staticmethod
    def _binding(catalog: Mapping[str, Relation], name: str) -> Relation:
        rel = catalog.get(name)
        if rel is None:
            raise QueryError(
                f"no relation {name!r} in the warehouse "
                f"(have {sorted(catalog)})"
            )
        return rel

    # ---------------------------------------------------------- execution

    def query(
        self,
        query: str | ConjunctiveQuery,
        tenant: str = "default",
        strategy: str = "auto",
        split: int = 1,
        verify: bool = False,
        timeout: float | None = 60.0,
    ) -> ServiceResult:
        """Submit and wait: the synchronous convenience wrapper."""
        ticket = self.submit(
            query, tenant=tenant, strategy=strategy, split=split, verify=verify
        )
        return ticket.result(timeout=timeout)

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is self._SENTINEL:
                self._queue.task_done()
                return
            try:
                result = job.context.run(self._execute, job)
            except BaseException as exc:  # noqa: BLE001 - ticket carries it
                with self._stats_lock:
                    self._counters.failed += 1
                    self._tenant(job.ticket.tenant).failed += 1
                self._release(job.ticket.tenant)
                job.ticket._resolve(None, exc)
            else:
                with self._stats_lock:
                    self._counters.completed += 1
                    self._tenant(job.ticket.tenant).completed += 1
                    if job.split > 1:
                        self._counters.split_queries += 1
                self._release(job.ticket.tenant)
                job.ticket._resolve(result)
            finally:
                self._queue.task_done()

    def _execute(self, job: _Job) -> ServiceResult:
        start = time.perf_counter()
        cq = job.cq
        with self.warehouse.read_view() as catalog:
            key = CacheKey(
                query=str(cq),
                p=self.p,
                seed=self.seed,
                strategy=job.strategy,
                split=job.split,
                relation_state=tuple(sorted(
                    (a.name, id(self._binding(catalog, a.name)),
                     self._binding(catalog, a.name).mutation_token())
                    for a in cq.atoms
                )),
            )
            cached = self.cache.get(key)
            if cached is not None:
                output, strategies, max_load, total_load, rounds, predicted = cached
                return ServiceResult(
                    self._detached(output), job.ticket.tenant, str(cq),
                    strategies, job.split, predicted, max_load, total_load,
                    rounds, True, time.perf_counter() - start,
                )
            if job.split == 1:
                result = self._engine.query(cq, strategy=job.strategy)
                output = result.output
                strategies = (
                    result.explain.chosen
                    if job.strategy == "auto" and result.explain is not None
                    else job.strategy,
                )
                predicted = job.predicted or (
                    (result.explain.chosen_plan.predicted_load or 0.0)
                    if result.explain is not None else 0.0
                )
                max_load = total_load = result.stats.max_load
                rounds = result.stats.num_rounds
            else:
                bindings = {
                    a.name: self._binding(catalog, a.name) for a in cq.atoms
                }
                branches = split_bindings(cq, bindings, job.split)
                outputs, strategies_list, loads, rounds_list = [], [], [], []
                for branch in branches:
                    # Each branch is an independent Engine call: a fresh
                    # engine over the branch's bindings, same p and seed,
                    # so a branch is byte-identical to running that
                    # fragment query on its own. ``align_with`` shares the
                    # service engine's alignment memo, so the *unsplit*
                    # inputs (identical relation objects in every branch)
                    # are aligned and stored once — not re-derived as k
                    # detached copies — and branch hits land in the one
                    # counter :meth:`stats` reports.
                    engine = Engine(
                        self.p, seed=self.seed,
                        kernels=self._engine.kernels,
                        backend=self._engine.backend,
                        align_with=self._engine,
                    )
                    for name, rel in branch.items():
                        engine.register(rel, name=name)
                    branch_result = engine.query(cq, strategy=job.strategy)
                    outputs.append(branch_result.output)
                    strategies_list.append(
                        branch_result.explain.chosen
                        if job.strategy == "auto"
                        and branch_result.explain is not None
                        else job.strategy
                    )
                    loads.append(branch_result.stats.max_load)
                    rounds_list.append(branch_result.stats.num_rounds)
                output = merge_branches(outputs)
                strategies = tuple(strategies_list)
                predicted = job.predicted
                max_load = max(loads, default=0)
                total_load = sum(loads)
                rounds = sum(rounds_list)
            if job.verify:
                self._verify(cq, catalog, output)
            self.cache.put(
                key,
                (output, strategies, max_load, total_load, rounds, predicted),
            )
        return ServiceResult(
            self._detached(output), job.ticket.tenant, str(cq), strategies,
            job.split, predicted, max_load, total_load, rounds, False,
            time.perf_counter() - start,
        )

    def _verify(
        self,
        cq: ConjunctiveQuery,
        catalog: Mapping[str, Relation],
        output: Relation,
    ) -> None:
        bindings = {a.name: self._binding(catalog, a.name) for a in cq.atoms}
        expected = oracle_join(cq, bindings)
        diff = multiset_diff(expected.rows_readonly(), output.rows_readonly())
        if diff:
            raise OracleMismatchError(f"service query {cq}", diff)

    @staticmethod
    def _detached(output: Relation) -> Relation:
        """A caller-safe view of a (possibly cached) result relation.

        Cached outputs are shared across hits, so callers get a fresh
        Relation wrapper: columnar results share their (immutable by
        convention) arrays, row-primary results get a copied tuple
        list — either way a caller's ``rows()`` borrow or mutation can
        never corrupt the cached entry.
        """
        return output.project(list(output.schema.attributes), name=output.name)

    # ------------------------------------------------------------ lifecycle

    def stats(self) -> ServiceStats:
        with self._stats_lock:
            snapshot = ServiceStats(
                submitted=self._counters.submitted,
                admitted=self._counters.admitted,
                completed=self._counters.completed,
                failed=self._counters.failed,
                rejected_queue_full=self._counters.rejected_queue_full,
                rejected_in_flight=self._counters.rejected_in_flight,
                rejected_load_cap=self._counters.rejected_load_cap,
                split_queries=self._counters.split_queries,
                align_cache_hits=self._engine._align_hits,
                cache=self.cache.stats(),
                tenants={
                    name: TenantStats(**vars(stats))
                    for name, stats in self._tenants.items()
                },
            )
        return snapshot

    def drain(self) -> None:
        """Block until every admitted query has finished."""
        self._queue.join()

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting queries, finish the queue, join the workers."""
        with self._stats_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(self._SENTINEL)
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
