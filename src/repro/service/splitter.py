"""Query splitting: one conjunctive query → k disjoint mod-based branches.

The trick (larsql's ``PARALLEL_SIMPLE_SOLUTION``: rewrite ``SELECT ...``
into k copies guarded by ``mod(key, k) = i`` and ``UNION ALL`` them) is
sound for conjunctive queries because a join is *linear* in each of its
arguments over bag union: if one atom's relation R is partitioned into
disjoint fragments R_0 ⊎ … ⊎ R_{k-1}, then

    Q(R, S, …) = Q(R_0, S, …) ⊎ … ⊎ Q(R_{k-1}, S, …)

as bags — every output tuple is witnessed by exactly one row of R, and
that row lives in exactly one fragment. :func:`split_relation`
partitions by ``value mod k`` on one attribute (any row lands in
exactly one branch whatever the value distribution), so the rewrite
needs no semantic analysis beyond picking the atom to split.

**Byte-identity guarantee**: bag equality is what the algebra gives;
to make the merged result *byte*-comparable against the unsplit run,
:func:`merge_branches` and :func:`canonical` both order rows by the
same total order (lexicographic on the tuple). The service's contract —
asserted by the concurrency suite and the x8 bench — is

    canonical(merge_branches(branch outputs)) == canonical(unsplit output)

down to the exact row list.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.data.relation import Relation, union_all
from repro.errors import QueryError
from repro.query.cq import ConjunctiveQuery

__all__ = [
    "canonical",
    "choose_split_atom",
    "merge_branches",
    "split_bindings",
    "split_relation",
]


def split_relation(
    relation: Relation, k: int, attribute: str | None = None
) -> list[Relation]:
    """Partition ``relation`` into k disjoint fragments by ``value mod k``.

    ``attribute`` defaults to the relation's first attribute (larsql
    splits on the leading key column for the same reason: it always
    exists). Fragments are column-primary when the input is; each keeps
    the original schema, with the branch index appended to the name for
    traceability. Values that are not integers fall back to the row
    predicate path via Python's ``%`` on their hash.
    """
    if k <= 0:
        raise QueryError(f"split factor must be positive, got {k}")
    if k == 1:
        return [relation]
    attrs = relation.schema.attributes
    if not attrs:
        raise QueryError("cannot split a zero-arity relation")
    attr = attribute or attrs[0]
    if attr not in attrs:
        raise QueryError(
            f"split attribute {attr!r} not in schema {list(attrs)}"
        )
    index = relation.schema.index(attr)
    cols = relation.columns()
    branches: list[Relation] = []
    if cols is not None:
        key = cols[index]
        residue = key % k          # numpy % matches Python's sign rule
        for branch in range(k):
            mask = residue == branch
            branches.append(
                Relation.from_columns(
                    f"{relation.name}#{branch}",
                    relation.schema,
                    [c[mask] for c in cols],
                )
            )
        return branches

    def residue_of(value: object) -> int:
        if isinstance(value, int):
            return value % k
        return hash(value) % k

    for branch in range(k):
        branches.append(
            relation.select(
                lambda row, b=branch: residue_of(row[index]) == b,
                name=f"{relation.name}#{branch}",
            )
        )
    return branches


def choose_split_atom(
    query: ConjunctiveQuery, bindings: Mapping[str, Relation]
) -> str:
    """The atom whose relation the rewriter partitions: the largest one.

    Splitting the biggest input balances branch sizes best under the
    mod rule and maximizes the per-branch input reduction the optimizer
    can reprice (ties resolve to atom order for determinism).
    """
    if not query.atoms:
        raise QueryError("cannot split an empty query")
    return max(
        (atom.name for atom in query.atoms),
        key=lambda name: (len(bindings[name]),),
    )


def split_bindings(
    query: ConjunctiveQuery,
    bindings: Mapping[str, Relation],
    k: int,
    atom: str | None = None,
    attribute: str | None = None,
) -> list[dict[str, Relation]]:
    """The k branch relation-maps: one atom partitioned, the rest shared.

    Each returned dict binds every atom of ``query``; branch i holds
    fragment i of the split atom and the *same* relation objects for
    all others (no copies — branches only read).
    """
    split_name = atom or choose_split_atom(query, bindings)
    if all(a.name != split_name for a in query.atoms):
        raise QueryError(
            f"split atom {split_name!r} is not an atom of {query}"
        )
    fragments = split_relation(bindings[split_name], k, attribute=attribute)
    return [
        {
            name: (fragments[i] if name == split_name else rel)
            for name, rel in bindings.items()
        }
        for i in range(len(fragments))
    ]


def canonical(relation: Relation, name: str = "OUT") -> Relation:
    """The relation with rows in the canonical (lexicographic) order.

    The common total order both sides of the byte-identity check are
    normalized to; duplicates are preserved (bag semantics).
    """
    out = Relation(name, relation.schema, sorted(relation.rows_readonly()))
    return out


def merge_branches(outputs: Sequence[Relation], name: str = "OUT") -> Relation:
    """Bag-union branch outputs and normalize to the canonical order."""
    if not outputs:
        raise QueryError("merge_branches needs at least one branch output")
    return canonical(union_all(name, list(outputs)), name=name)
