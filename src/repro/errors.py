"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query references attributes inconsistently."""


class QueryError(ReproError):
    """A conjunctive query is malformed or unsupported by an algorithm."""


class ClusterError(ReproError):
    """Misuse of the MPC cluster simulator (bad server id, nested rounds...)."""


class LoadExceededError(ClusterError):
    """A round tried to deliver more units to a server than the load cap.

    Raised at the round barrier *before* any tuple is delivered: the
    offending round is recorded in the statistics (marked undelivered)
    but no server fragment is mutated, so the cluster stays usable.
    """

    def __init__(self, server: int, load: int, cap: int) -> None:
        super().__init__(
            f"server {server} received {load} units in one round, "
            f"exceeding the load cap {cap}"
        )
        self.server = server
        self.load = load
        self.cap = cap


class FaultPlanError(ClusterError):
    """A fault-injection plan is malformed (see :mod:`repro.mpc.faults`).

    Raised when a :class:`~repro.mpc.faults.FaultPlan` carries
    inconsistent data — negative rounds, unknown channel-fault kinds,
    non-positive counts, or a checkpoint interval below one.
    """


class AuditError(ClusterError):
    """A conservation invariant of the MPC simulator was violated.

    Raised by :mod:`repro.mpc.audit` when a round's accounting does not
    add up (tuples sent ≠ tuples received, charged units ≠ recorded
    loads, free-round units charged, or combined sub-cluster stats that
    do not partition the server budget).
    """

    def __init__(self, check: str, detail: str) -> None:
        super().__init__(f"audit check {check!r} failed: {detail}")
        self.check = check
        self.detail = detail


class OracleMismatchError(ReproError):
    """A distributed execution disagreed with the single-node oracle.

    Raised by the differential harness (:mod:`repro.testing`) and by
    ``Engine.query(..., verify=True)`` when an algorithm's output differs
    from the trusted nested-loop evaluation as a multiset. Carries the
    inspectable bag difference.
    """

    def __init__(self, context: str, diff: object) -> None:
        summary = getattr(diff, "summary", lambda: str(diff))()
        super().__init__(f"{context}: {summary}")
        self.context = context
        self.diff = diff


class ServiceError(ReproError):
    """Base class for the concurrent query service (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """A query was submitted to a service that has been shut down."""


class AdmissionError(ServiceError):
    """A query was rejected at admission; subclasses say why.

    Every admission rejection is *graceful*: the query never enters the
    work queue, no worker state is touched, and the rejection is counted
    in :class:`~repro.service.ServiceStats` under the subclass's
    counter. The ``tenant`` attribute names who was rejected.
    """

    def __init__(self, tenant: str, detail: str) -> None:
        super().__init__(f"tenant {tenant!r}: {detail}")
        self.tenant = tenant


class QueueFullError(AdmissionError):
    """The service's bounded work queue is full (global backpressure)."""

    def __init__(self, tenant: str, capacity: int) -> None:
        super().__init__(
            tenant, f"work queue is full (capacity {capacity})"
        )
        self.capacity = capacity


class InFlightQuotaError(AdmissionError):
    """The tenant already has its maximum number of queries in flight."""

    def __init__(self, tenant: str, in_flight: int, quota: int) -> None:
        super().__init__(
            tenant,
            f"{in_flight} queries in flight, quota allows {quota}",
        )
        self.in_flight = in_flight
        self.quota = quota


class LoadCapQuotaError(AdmissionError):
    """The optimizer priced the query above the tenant's load cap."""

    def __init__(self, tenant: str, predicted: float, cap: float) -> None:
        super().__init__(
            tenant,
            f"predicted load {predicted:.1f} exceeds the tenant load cap "
            f"{cap:.1f}",
        )
        self.predicted = predicted
        self.cap = cap


class DecompositionError(ReproError):
    """A hypertree decomposition could not be built (e.g. cyclic query)."""


class OptimizationError(ReproError):
    """An LP / share-optimization problem failed to solve."""
