"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query references attributes inconsistently."""


class QueryError(ReproError):
    """A conjunctive query is malformed or unsupported by an algorithm."""


class ClusterError(ReproError):
    """Misuse of the MPC cluster simulator (bad server id, nested rounds...)."""


class LoadExceededError(ClusterError):
    """A server received more tuples in a round than the configured load cap."""

    def __init__(self, server: int, load: int, cap: int) -> None:
        super().__init__(
            f"server {server} received {load} units in one round, "
            f"exceeding the load cap {cap}"
        )
        self.server = server
        self.load = load
        self.cap = cap


class DecompositionError(ReproError):
    """A hypertree decomposition could not be built (e.g. cyclic query)."""


class OptimizationError(ReproError):
    """An LP / share-optimization problem failed to solve."""
