"""The parallel hash join (slide 23).

Round 1 communication: every tuple of R and S is sent to server
``h(join key)``; round 1 computation: each server joins what it received
locally. With skew-free data (every join value of degree ≤ IN/p·…) the
load concentrates at L = Θ(IN/p) (slides 24–25); a single heavy value of
degree d pushes the load to Θ(d).
"""

from __future__ import annotations

from repro.data.relation import Relation
from repro.joins.base import JoinRun, distributed_local_join, require_join_key
from repro.kernels.memo import route_scattered
from repro.kernels.partition import try_route
from repro.mpc.cluster import Cluster


def parallel_hash_join(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    audit: bool | None = None,
) -> JoinRun:
    """One-round hash-partitioned natural join of R and S on ``p`` servers.

    ``audit=True`` runs the round under the conservation checks of
    :mod:`repro.mpc.audit` (default: the ambient ``audited()`` setting).
    """
    require_join_key(r, s)
    cluster = Cluster(p, seed=seed, audit=audit)
    hash_partition_join(cluster, r, s, output_fragment="out")
    output = cluster.gather_relation("out", output_name, _out_attrs(r, s))
    return JoinRun(output, cluster.stats)


def hash_partition_join(
    cluster: Cluster,
    r: Relation,
    s: Relation,
    output_fragment: str = "out",
    hash_index: int = 0,
) -> None:
    """In-cluster primitive: scatter, shuffle by join key, join locally.

    Leaves the output distributed in ``output_fragment`` so multi-round
    plans can keep composing without gathering.
    """
    shared = require_join_key(r, s)
    r_frag = cluster.scatter(r, f"{r.name}@in")
    s_frag = cluster.scatter(s, f"{s.name}@in")
    shuffle_fragments_by_key(cluster, r, s, r_frag, s_frag, shared, hash_index)
    distributed_local_join(
        cluster, f"{r.name}@j", f"{s.name}@j", r, s, output_fragment
    )


def shuffle_fragments_by_key(
    cluster: Cluster,
    r: Relation,
    s: Relation,
    r_fragment: str,
    s_fragment: str,
    shared: tuple[str, ...],
    hash_index: int = 0,
) -> None:
    """The round-1 communication: route both fragments by hashed join key.

    Per-(destination, fragment) arrival order is source-server ascending
    whether the sides go through the memoized whole-relation replay
    (:func:`repro.kernels.memo.route_scattered`) or the per-server loop,
    so the two paths deliver byte-identical fragments.
    """
    h = cluster.hash_function(hash_index)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    with cluster.round("hash-shuffle") as rnd:
        for rel, fragment, idx, out in (
            (r, r_fragment, r_idx, f"{r.name}@j"),
            (s, s_fragment, s_idx, f"{s.name}@j"),
        ):
            if route_scattered(cluster, rnd, rel, fragment, idx, h, out):
                continue
            for server in cluster.servers:
                rows, cols = server.take_with_columns(fragment, tuple(idx))
                if not try_route(rnd, rows, idx, h, out, columns=cols):
                    for row in rows:
                        rnd.send(h(tuple(row[i] for i in idx)), out, row)


def _out_attrs(r: Relation, s: Relation) -> list[str]:
    return list(r.schema.attributes) + [
        a for a in s.schema.attributes if a not in r.schema
    ]
