"""The skew-resilient two-way join (slides 29–30).

Heavy hitters — join values of degree ≥ IN/p in R or S — would overload
a hash-partitioned server, so they are peeled off and handled by grid
Cartesian products on exclusive server allocations, while light values
take the ordinary parallel hash join. Choosing the per-value allocations
proportional to output contributions yields

    L = O( √(OUT/p) + IN/p ),

the optimal load for any skew (slide 30).
"""

from __future__ import annotations

from typing import Any

from repro.data.relation import Relation
from repro.joins.base import JoinRun, local_join, require_join_key
from repro.joins.heavy import heavy_value_products
from repro.mpc.cluster import Cluster, combine_parallel

Row = tuple[Any, ...]


def find_heavy_keys(
    r: Relation,
    s: Relation,
    shared: tuple[str, ...],
    threshold: float | tuple[float, float],
) -> list[Row]:
    """Join-key values of degree ≥ threshold in R or in S.

    ``threshold`` may be a single cutoff applied to both sides (the
    tutorial's IN/p) or an ``(r_threshold, s_threshold)`` pair for the
    per-relation m/p rule of arXiv:1401.1872, where each relation's
    heavy hitters are judged against its own cardinality.
    """
    from collections import Counter

    if isinstance(threshold, tuple):
        r_threshold, s_threshold = threshold
    else:
        r_threshold = s_threshold = threshold
    r_deg = Counter(tuple(row[i] for i in r.schema.indices(shared)) for row in r)
    s_deg = Counter(tuple(row[i] for i in s.schema.indices(shared)) for row in s)
    heavy = {k for k, c in r_deg.items() if c >= r_threshold}
    heavy |= {k for k, c in s_deg.items() if c >= s_threshold}
    return sorted(heavy)


def skew_join(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    threshold: float | tuple[float, float] | None = None,
    audit: bool | None = None,
) -> JoinRun:
    """Skew-aware natural join: hash join for light values, grid products
    for heavy ones, all in one (model) round on disjoint server pools.

    ``threshold`` defaults to the tutorial's IN/p. Lower thresholds peel
    more values into products (an ablation knob); an ``(r, s)`` pair
    applies the per-relation m/p rule (see :func:`find_heavy_keys`).
    """
    shared = require_join_key(r, s)
    in_size = len(r) + len(s)
    if threshold is None:
        threshold = in_size / p
    heavy_keys = find_heavy_keys(r, s, shared, threshold)
    heavy_set = set(heavy_keys)

    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    r_light = r.select(lambda row: tuple(row[i] for i in r_idx) not in heavy_set)
    s_light = s.select(lambda row: tuple(row[i] for i in s_idx) not in heavy_set)

    # Server budget: the light hash join's load is ~IN_light/p_light while
    # the heavy products pay ~sqrt(OUT_heavy/p_heavy); scan all splits and
    # take the one minimizing the analytic max (exact sizes are known to
    # the simulator; an engine would use sketched estimates).
    import math

    light_in = len(r_light) + len(s_light)
    light_out_estimate = max(_join_size_estimate(r_light, s_light, r_idx, s_idx), 1)
    heavy_out_estimate = max(
        _join_size_estimate(r, s, r_idx, s_idx) - light_out_estimate, 0
    )
    p_heavy = 0
    if heavy_keys and p > 1:
        best_split, best_cost = 1, math.inf
        for candidate in range(1, p):
            p_l = p - candidate
            light_cost = light_in / p_l if light_in else 0.0
            heavy_cost = math.sqrt(heavy_out_estimate / candidate)
            cost = max(light_cost, heavy_cost)
            if cost < best_cost:
                best_cost = cost
                best_split = candidate
        p_heavy = best_split
    p_light = p - p_heavy

    runs = []
    out_rows: list[Row] = []

    if p_light > 0 and (len(r_light) or len(s_light)):
        light_cluster = Cluster(p_light, seed=seed, audit=audit)
        _light_hash_join(light_cluster, r_light, s_light, shared)
        out_rows.extend(light_cluster.gather("out"))
        runs.append(light_cluster.stats)

    if heavy_keys and p_heavy > 0:
        heavy_rows, heavy_runs = heavy_value_products(
            r, s, shared, heavy_keys, p_heavy, seed=seed, audit=audit
        )
        out_rows.extend(heavy_rows)
        runs.extend(heavy_runs)

    attrs = list(r.schema.attributes) + [
        a for a in s.schema.attributes if a not in r.schema
    ]
    output = Relation(output_name, attrs, out_rows)
    return JoinRun(output, combine_parallel(p, runs))


def _light_hash_join(
    cluster: Cluster, r: Relation, s: Relation, shared: tuple[str, ...]
) -> None:
    from repro.joins.hash_join import shuffle_fragments_by_key

    r_frag = cluster.scatter(r, f"{r.name}@in")
    s_frag = cluster.scatter(s, f"{s.name}@in")
    shuffle_fragments_by_key(cluster, r, s, r_frag, s_frag, shared)
    for server in cluster.servers:
        local_join(server, f"{r.name}@j", f"{s.name}@j", r, s, "out")


def _join_size_estimate(
    r: Relation, s: Relation, r_idx: tuple[int, ...], s_idx: tuple[int, ...]
) -> int:
    """Exact join cardinality Σ_k deg_R(k)·deg_S(k) from degree sketches.

    The simulator computes this exactly; a real system would use sampled
    frequency sketches — the quantity, not its provenance, is what the
    allocation rule needs.
    """
    from collections import Counter

    r_deg = Counter(tuple(row[i] for i in r_idx) for row in r)
    s_deg = Counter(tuple(row[i] for i in s_idx) for row in s)
    return sum(c * s_deg.get(k, 0) for k, c in r_deg.items())
