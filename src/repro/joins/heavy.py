"""Per-heavy-value Cartesian products (slide 30, step 2).

Both the skew-aware hash join and the parallel sort join fall back to the
grid Cartesian product for join values whose degree is too high for hash
partitioning. Each heavy value ``b`` gets ``p_b`` *exclusive* servers,
sized proportionally to its output contribution ``|R_b|·|S_b|``, so all
heavy products finish with balanced load ``O(√(OUT/p))`` while running in
parallel (in the model) with the light-value join.
"""

from __future__ import annotations

from typing import Any

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats

Row = tuple[Any, ...]


def allocate_servers(weights: list[float], p: int) -> list[int]:
    """Split ``p`` servers proportionally to ``weights`` (≥ 1 each).

    Largest-remainder rounding; every entry gets at least one server even
    when its weight is tiny, and the total never exceeds ``p`` unless
    forced by the ≥1 floor.
    """
    if not weights:
        return []
    total = sum(weights) or 1.0
    raw = [w / total * p for w in weights]
    floors = [max(1, int(x)) for x in raw]
    spare = p - sum(floors)
    if spare > 0:
        remainders = sorted(
            range(len(raw)), key=lambda i: raw[i] - int(raw[i]), reverse=True
        )
        for i in remainders[:spare]:
            floors[i] += 1
    return floors


def heavy_value_products(
    r: Relation,
    s: Relation,
    shared: tuple[str, ...],
    heavy_keys: list[Row],
    p: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[list[Row], list[RunStats]]:
    """Join R ⋈ S restricted to the given heavy join-key values.

    Returns the output rows (in R-then-S-extra attribute order, matching
    :meth:`Relation.join`) and one :class:`RunStats` per heavy value; the
    sub-runs execute on exclusive servers, so callers combine them with
    :func:`repro.mpc.cluster.combine_parallel`.
    """
    if not heavy_keys:
        return [], []

    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    extra = [a for a in s.schema.attributes if a not in r.schema]
    extra_idx = s.schema.indices(extra)

    r_groups: dict[Row, list[Row]] = {k: [] for k in heavy_keys}
    s_groups: dict[Row, list[Row]] = {k: [] for k in heavy_keys}
    for row in r:
        key = tuple(row[i] for i in r_idx)
        if key in r_groups:
            r_groups[key].append(row)
    for row in s:
        key = tuple(row[i] for i in s_idx)
        if key in s_groups:
            s_groups[key].append(row)

    # Proportional allocation; values whose fair share is below one whole
    # server are *packed* onto a shared pool (several heavy values per
    # server) instead of each grabbing a dedicated server — otherwise
    # more heavy values than servers would oversubscribe the cluster.
    weights = [max(len(r_groups[k]) * len(s_groups[k]), 1) for k in heavy_keys]
    total = sum(weights)
    big: list[tuple[Row, int]] = []
    small: list[Row] = []
    for key, weight in zip(heavy_keys, weights):
        share = weight / total * p
        if share >= 1.0:
            big.append((key, max(1, int(share))))
        else:
            small.append(key)
    p_big = sum(alloc for _, alloc in big)
    p_small = max(p - p_big, 1) if small else 0

    out_rows: list[Row] = []
    runs: list[RunStats] = []
    for key, p_b in big:
        rows, stats = _one_heavy_product(
            r, s, r_groups[key], s_groups[key], extra_idx, p_b, seed, audit
        )
        out_rows.extend(rows)
        runs.append(stats)
    if small:
        rows, stats = _packed_heavy_products(
            r_groups, s_groups, small, extra_idx, p_small, seed, audit
        )
        out_rows.extend(rows)
        runs.append(stats)
    return out_rows, runs


def _packed_heavy_products(
    r_groups: dict[Row, list[Row]],
    s_groups: dict[Row, list[Row]],
    keys: list[Row],
    extra_idx: tuple[int, ...],
    p: int,
    seed: int,
    audit: bool | None = None,
) -> tuple[list[Row], RunStats]:
    """Many small heavy values share one pool, one server per value."""
    from repro.mpc.hashing import HashFamily

    cluster = Cluster(p, seed=seed, audit=audit)
    placement = HashFamily(seed + 77).function(0, p)
    for i, key in enumerate(keys):
        for j, row in enumerate(r_groups[key]):
            cluster.servers[(i + j) % p].fragment("R@src").append((key, row))
        for j, row in enumerate(s_groups[key]):
            cluster.servers[(i + j) % p].fragment("S@src").append((key, row))
    with cluster.round("heavy-packed") as rnd:
        for server in cluster.servers:
            for key, row in server.take("R@src"):
                rnd.send(placement(key), "R@v", (key, row))
            for key, row in server.take("S@src"):
                rnd.send(placement(key), "S@v", (key, row))
    out_rows: list[Row] = []
    for server in cluster.servers:
        r_local: dict[Row, list[Row]] = {}
        for key, row in server.take("R@v"):
            r_local.setdefault(key, []).append(row)
        s_local: dict[Row, list[Row]] = {}
        for key, row in server.take("S@v"):
            s_local.setdefault(key, []).append(row)
        for key, r_rows in r_local.items():
            for r_row in r_rows:
                for s_row in s_local.get(key, ()):
                    if extra_idx:
                        out_rows.append(r_row + tuple(s_row[i] for i in extra_idx))
                    else:
                        out_rows.append(r_row)
    return out_rows, cluster.stats


def _one_heavy_product(
    r: Relation,
    s: Relation,
    r_rows: list[Row],
    s_rows: list[Row],
    extra_idx: tuple[int, ...],
    p_b: int,
    seed: int,
    audit: bool | None = None,
) -> tuple[list[Row], RunStats]:
    """Grid product of one heavy value's tuples on ``p_b`` exclusive servers."""
    from repro.joins.cartesian import cartesian_on_cluster

    cluster = Cluster(max(p_b, 1), seed=seed, audit=audit)
    if not r_rows or not s_rows:
        return [], cluster.stats

    if extra_idx:
        left = Relation("Rb", Schema([f"_l{i}" for i in range(r.schema.arity)]), r_rows)
        right = Relation(
            "Sb",
            Schema([f"_r{i}" for i in range(len(extra_idx))]),
            [tuple(row[i] for i in extra_idx) for row in s_rows],
        )
        cartesian_on_cluster(cluster, left, right, output_fragment="out")
        return cluster.gather("out"), cluster.stats

    # S contributes no new attributes: the join just multiplies each R row
    # by the number of matching S rows. Spread R's rows, keep bag counts.
    multiplicity = len(s_rows)
    for i, row in enumerate(r_rows):
        cluster.servers[i % cluster.p].fragment("rb").append(row)
    with cluster.round("heavy-degenerate") as rnd:
        for server in cluster.servers:
            for row in server.take("rb"):
                rnd.send(server.sid, "out", row, units=1)
    rows = [row for row in cluster.gather("out") for _ in range(multiplicity)]
    return rows, cluster.stats
