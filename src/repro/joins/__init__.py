"""Distributed two-way joins on the MPC model."""

from repro.joins.base import JoinRun, join_schemas, require_join_key
from repro.joins.broadcast_join import broadcast_join
from repro.joins.cartesian import (
    cartesian_product,
    optimal_rectangle,
    predicted_cartesian_load,
)
from repro.joins.hash_join import hash_partition_join, parallel_hash_join
from repro.joins.heavy import allocate_servers, heavy_value_products
from repro.joins.local import (
    cartesian_rows,
    hash_join_rows,
    merge_join_rows,
    nested_loop_rows,
)
from repro.joins.skew_join import find_heavy_keys, skew_join
from repro.joins.sort_join import sort_join

__all__ = [
    "JoinRun",
    "allocate_servers",
    "broadcast_join",
    "cartesian_product",
    "cartesian_rows",
    "find_heavy_keys",
    "hash_join_rows",
    "hash_partition_join",
    "heavy_value_products",
    "join_schemas",
    "merge_join_rows",
    "nested_loop_rows",
    "optimal_rectangle",
    "parallel_hash_join",
    "predicted_cartesian_load",
    "require_join_key",
    "skew_join",
    "sort_join",
]
