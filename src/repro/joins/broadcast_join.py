"""The broadcast join (slide 32).

When one relation is much smaller than the other, replicate the small
one to every server and leave the big one in place. One round, load
``|small|`` per server — cheaper than hash partitioning whenever
``|small| < |big| / p``. Hive, Impala and SparkSQL all implement this.
"""

from __future__ import annotations

from repro.data.relation import Relation
from repro.joins.base import JoinRun, local_join, require_join_key
from repro.mpc.cluster import Cluster


def broadcast_join(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    audit: bool | None = None,
) -> JoinRun:
    """Broadcast the smaller of R, S; join against the bigger in place."""
    require_join_key(r, s)
    small, big = (r, s) if len(r) <= len(s) else (s, r)

    cluster = Cluster(p, seed=seed, audit=audit)
    big_frag = cluster.scatter(big, f"{big.name}@in")
    small_frag = cluster.scatter(small, f"{small.name}@in")

    with cluster.round("broadcast") as rnd:
        for server in cluster.servers:
            for row in server.take(small_frag):
                rnd.broadcast(f"{small.name}@all", row)

    for server in cluster.servers:
        # Keep the user-facing attribute order: R's attributes first.
        left_frag = big_frag if big is r else f"{small.name}@all"
        right_frag = f"{small.name}@all" if big is r else big_frag
        local_join(
            server,
            left_frag,
            right_frag,
            r,
            s,
            "out",
        )

    attrs = list(r.schema.attributes) + [
        a for a in s.schema.attributes if a not in r.schema
    ]
    output = cluster.gather_relation("out", output_name, attrs)
    return JoinRun(output, cluster.stats)
