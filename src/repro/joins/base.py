"""Shared plumbing for the distributed join algorithms.

Every two-way join algorithm follows the same contract: take the two
input relations and a server count, run rounds on a fresh
:class:`~repro.mpc.cluster.Cluster`, and return a :class:`JoinRun`
bundling the (gathered) output relation with the run's cost statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.mpc.server import Server
from repro.mpc.stats import RunStats


@dataclass
class JoinRun:
    """Output and cost of one distributed join execution."""

    output: Relation
    stats: RunStats

    @property
    def load(self) -> int:
        return self.stats.max_load

    @property
    def rounds(self) -> int:
        return self.stats.num_rounds


def join_schemas(r: Relation, s: Relation) -> tuple[tuple[str, ...], Schema]:
    """The shared attributes and the natural-join output schema of R, S."""
    shared = r.schema.common(s.schema)
    extra = [a for a in s.schema.attributes if a not in r.schema]
    return shared, Schema(list(r.schema.attributes) + extra)


def require_join_key(r: Relation, s: Relation) -> tuple[str, ...]:
    """The shared attributes, or an error if the join is a pure product."""
    shared, _schema = join_schemas(r, s)
    if not shared:
        raise QueryError(
            f"{r.name} and {s.name} share no attributes; use the Cartesian "
            f"product algorithm instead"
        )
    return shared


def local_join(
    server: Server,
    left_fragment: str,
    right_fragment: str,
    left: Relation,
    right: Relation,
    out_fragment: str,
) -> None:
    """Join the server's two local fragments and store the result locally.

    ``left`` and ``right`` supply the schemas; only the fragments' rows
    are read. Consumes both input fragments.
    """
    l_rel = Relation(left.name, left.schema, ())
    l_rel.rows().extend(server.take(left_fragment))
    r_rel = Relation(right.name, right.schema, ())
    r_rel.rows().extend(server.take(right_fragment))
    joined = l_rel.join(r_rel)
    server.fragment(out_fragment).extend(joined.rows())
