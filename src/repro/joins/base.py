"""Shared plumbing for the distributed join algorithms.

Every two-way join algorithm follows the same contract: take the two
input relations and a server count, run rounds on a fresh
:class:`~repro.mpc.cluster.Cluster`, and return a :class:`JoinRun`
bundling the (gathered) output relation with the run's cost statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.kernels.config import kernels_enabled
from repro.kernels.join import join_rows_columnar
from repro.mpc.server import Server
from repro.mpc.stats import RunStats


@dataclass
class JoinRun:
    """Output and cost of one distributed join execution."""

    output: Relation
    stats: RunStats

    @property
    def load(self) -> int:
        return self.stats.max_load

    @property
    def rounds(self) -> int:
        return self.stats.num_rounds


def join_schemas(r: Relation, s: Relation) -> tuple[tuple[str, ...], Schema]:
    """The shared attributes and the natural-join output schema of R, S."""
    shared = r.schema.common(s.schema)
    extra = [a for a in s.schema.attributes if a not in r.schema]
    return shared, Schema(list(r.schema.attributes) + extra)


def require_join_key(r: Relation, s: Relation) -> tuple[str, ...]:
    """The shared attributes, or an error if the join is a pure product."""
    shared, _schema = join_schemas(r, s)
    if not shared:
        raise QueryError(
            f"{r.name} and {s.name} share no attributes; use the Cartesian "
            f"product algorithm instead"
        )
    return shared


def local_join(
    server: Server,
    left_fragment: str,
    right_fragment: str,
    left: Relation,
    right: Relation,
    out_fragment: str,
) -> None:
    """Join the server's two local fragments and store the result locally.

    ``left`` and ``right`` supply the schemas; only the fragments' rows
    are read. Consumes both input fragments. When a kernel-routed shuffle
    delivered the fragments with their key-column side-cars, the columnar
    join kernel reuses them directly.
    """
    shared = left.schema.common(right.schema)
    if kernels_enabled() and shared:
        l_idx = left.schema.indices(shared)
        r_idx = right.schema.indices(shared)
        l_rows, l_cols = server.take_with_columns(left_fragment, tuple(l_idx))
        r_rows, r_cols = server.take_with_columns(right_fragment, tuple(r_idx))
        extra = [a for a in right.schema.attributes if a not in left.schema]
        joined_rows = join_rows_columnar(
            l_rows,
            r_rows,
            l_idx,
            r_idx,
            right.schema.indices(extra),
            left_cols=l_cols,
            right_cols=r_cols,
        )
        if joined_rows is not None:
            server.fragment(out_fragment).extend(joined_rows)
            return
        l_rel = Relation.wrap(left.name, left.schema, l_rows)
        r_rel = Relation.wrap(right.name, right.schema, r_rows)
    else:
        l_rel = Relation.wrap(left.name, left.schema, server.take(left_fragment))
        r_rel = Relation.wrap(right.name, right.schema, server.take(right_fragment))
    joined = l_rel.join(r_rel)
    server.fragment(out_fragment).extend(joined.rows())
