"""Shared plumbing for the distributed join algorithms.

Every two-way join algorithm follows the same contract: take the two
input relations and a server count, run rounds on a fresh
:class:`~repro.mpc.cluster.Cluster`, and return a :class:`JoinRun`
bundling the (gathered) output relation with the run's cost statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.kernels.config import kernels_enabled
from repro.kernels.join import join_rows_columnar
from repro.mpc.server import Server
from repro.mpc.stats import RunStats


@dataclass
class JoinRun:
    """Output and cost of one distributed join execution."""

    output: Relation
    stats: RunStats

    @property
    def load(self) -> int:
        return self.stats.max_load

    @property
    def rounds(self) -> int:
        return self.stats.num_rounds


def join_schemas(r: Relation, s: Relation) -> tuple[tuple[str, ...], Schema]:
    """The shared attributes and the natural-join output schema of R, S."""
    shared = r.schema.common(s.schema)
    extra = [a for a in s.schema.attributes if a not in r.schema]
    return shared, Schema(list(r.schema.attributes) + extra)


def require_join_key(r: Relation, s: Relation) -> tuple[str, ...]:
    """The shared attributes, or an error if the join is a pure product."""
    shared, _schema = join_schemas(r, s)
    if not shared:
        raise QueryError(
            f"{r.name} and {s.name} share no attributes; use the Cartesian "
            f"product algorithm instead"
        )
    return shared


def join_fragment_rows(
    l_rows: list,
    l_cols,
    r_rows: list,
    r_cols,
    left_name: str,
    left_schema: Schema,
    right_name: str,
    right_schema: Schema,
) -> list:
    """Join two already-taken fragments; the pure core of a local join.

    Shared verbatim by the inline path and the process-backend workers
    (via the ``join.fragments`` task), which is what makes their outputs
    byte-identical. ``l_cols``/``r_cols`` are the delivery side-cars of
    the shared key columns, or ``None`` for the tuple path.
    """
    shared = left_schema.common(right_schema)
    if kernels_enabled() and shared:
        l_idx = left_schema.indices(shared)
        r_idx = right_schema.indices(shared)
        extra = [a for a in right_schema.attributes if a not in left_schema]
        joined_rows = join_rows_columnar(
            l_rows,
            r_rows,
            l_idx,
            r_idx,
            right_schema.indices(extra),
            left_cols=l_cols,
            right_cols=r_cols,
        )
        if joined_rows is not None:
            return joined_rows
    l_rel = Relation.wrap(left_name, left_schema, l_rows)
    r_rel = Relation.wrap(right_name, right_schema, r_rows)
    return l_rel.join(r_rel).rows()


def join_fragment_chunk(payloads: list, common) -> list:
    """Exec task ``join.fragments``: elementwise local joins of a chunk."""
    left_name, left_schema, right_name, right_schema = common
    return [
        join_fragment_rows(
            l_rows, l_cols, r_rows, r_cols,
            left_name, left_schema, right_name, right_schema,
        )
        for l_rows, l_cols, r_rows, r_cols in payloads
    ]


def _take_join_inputs(
    server: Server,
    left_fragment: str,
    right_fragment: str,
    left: Relation,
    right: Relation,
) -> tuple[list, object, list, object]:
    """Consume both fragments (with side-cars on the kernel path)."""
    shared = left.schema.common(right.schema)
    if kernels_enabled() and shared:
        l_rows, l_cols = server.take_with_columns(
            left_fragment, tuple(left.schema.indices(shared))
        )
        r_rows, r_cols = server.take_with_columns(
            right_fragment, tuple(right.schema.indices(shared))
        )
        return l_rows, l_cols, r_rows, r_cols
    return server.take(left_fragment), None, server.take(right_fragment), None


def local_join(
    server: Server,
    left_fragment: str,
    right_fragment: str,
    left: Relation,
    right: Relation,
    out_fragment: str,
) -> None:
    """Join the server's two local fragments and store the result locally.

    ``left`` and ``right`` supply the schemas; only the fragments' rows
    are read. Consumes both input fragments. When a kernel-routed shuffle
    delivered the fragments with their key-column side-cars, the columnar
    join kernel reuses them directly.
    """
    l_rows, l_cols, r_rows, r_cols = _take_join_inputs(
        server, left_fragment, right_fragment, left, right
    )
    server.fragment(out_fragment).extend(
        join_fragment_rows(
            l_rows, l_cols, r_rows, r_cols,
            left.name, left.schema, right.name, right.schema,
        )
    )


def distributed_local_join(
    cluster,
    left_fragment: str,
    right_fragment: str,
    left: Relation,
    right: Relation,
    out_fragment: str,
) -> None:
    """Run every server's local join through the cluster's exec backend.

    The computation-phase counterpart of a shuffle round: with the
    ``process`` backend the per-server joins run concurrently on the
    worker pool (key-column side-cars travel via shared memory); with
    ``inline`` this is exactly the historical ``for server: local_join``
    loop, sharing :func:`join_fragment_rows` either way.
    """
    payloads = [
        _take_join_inputs(server, left_fragment, right_fragment, left, right)
        for server in cluster.servers
    ]
    results = cluster.map_servers(
        "join.fragments",
        payloads,
        (left.name, left.schema, right.name, right.schema),
    )
    for server, rows in zip(cluster.servers, results):
        server.fragment(out_fragment).extend(rows)
