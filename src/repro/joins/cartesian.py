"""The grid Cartesian product (slide 28).

Arrange ``p = p1 × p2`` servers in a rectangle. Each R tuple is assigned
a random row and replicated to that row's ``p2`` servers; each S tuple is
assigned a random column and replicated to its ``p1`` servers. Every
(r, s) pair meets at exactly one server. The per-server load is
``|R|/p1 + |S|/p2``, minimized at ``|R|/p1 = |S|/p2``, giving the optimal

    L = 2·√(|R|·|S| / p).

When one relation is much smaller, the optimum degenerates to ``p1 = 1``:
broadcast the small relation, partition the other.
"""

from __future__ import annotations

import math

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.joins.base import JoinRun
from repro.joins.local import cartesian_rows
from repro.mpc.cluster import Cluster
from repro.mpc.topology import Grid


def optimal_rectangle(r_size: int, s_size: int, p: int) -> tuple[int, int]:
    """Integer ``(p1, p2)`` with ``p1·p2 ≤ p`` minimizing |R|/p1 + |S|/p2.

    Scans the divisor-like candidates around the fractional optimum
    ``p1* = √(p·|R|/|S|)``; exact for the modest p of the simulator.
    """
    if p <= 0:
        raise QueryError("p must be positive")
    best: tuple[int, int] = (1, p)
    best_load = math.inf
    for p1 in range(1, p + 1):
        p2 = p // p1
        load = r_size / p1 + s_size / p2
        if load < best_load:
            best_load = load
            best = (p1, p2)
    return best


def predicted_cartesian_load(r_size: int, s_size: int, p: int) -> float:
    """The slide-28 optimum 2·√(|R||S|/p)."""
    return 2.0 * math.sqrt(r_size * s_size / p)


def cartesian_product(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    audit: bool | None = None,
) -> JoinRun:
    """Distributed Cartesian product of R and S on a ``p``-server grid.

    The schemas must be disjoint (it is a product, not a join).
    """
    if r.schema.common(s.schema):
        raise QueryError(
            f"{r.name} and {s.name} share attributes; use a join algorithm"
        )
    cluster = Cluster(p, seed=seed, audit=audit)
    cartesian_on_cluster(cluster, r, s, output_fragment="out")
    attrs = list(r.schema.attributes) + list(s.schema.attributes)
    output = cluster.gather_relation("out", output_name, attrs)
    return JoinRun(output, cluster.stats)


def cartesian_on_cluster(
    cluster: Cluster,
    r: Relation,
    s: Relation,
    output_fragment: str = "out",
    servers: list[int] | None = None,
) -> None:
    """In-cluster primitive: grid product on a subset of servers.

    ``servers`` (default: all) are arranged in the optimal rectangle; any
    leftover servers beyond ``p1·p2`` idle. The inputs are scattered over
    the chosen servers (free initial placement), then replicated along
    grid rows/columns in one charged round.
    """
    pool = list(range(cluster.p)) if servers is None else servers
    if not pool:
        raise QueryError("cartesian_on_cluster needs at least one server")
    p1, p2 = optimal_rectangle(len(r), len(s), len(pool))
    grid = Grid([p1, p2])

    r_frag = f"{r.name}@cart"
    s_frag = f"{s.name}@cart"
    for i, row in enumerate(r):
        cluster.servers[pool[i % len(pool)]].fragment(r_frag).append(row)
    for i, row in enumerate(s):
        cluster.servers[pool[i % len(pool)]].fragment(s_frag).append(row)

    row_of = cluster.hash_function(101, p1)
    col_of = cluster.hash_function(102, p2)
    with cluster.round("cartesian-replicate") as rnd:
        for sid in pool:
            server = cluster.servers[sid]
            for serial, row in enumerate(server.take(r_frag)):
                target_row = row_of((sid, serial, 0))
                for j in range(p2):
                    rnd.send(pool[grid.flat((target_row, j))], f"{r_frag}@row", row)
            for serial, row in enumerate(server.take(s_frag)):
                target_col = col_of((sid, serial, 1))
                for i in range(p1):
                    rnd.send(pool[grid.flat((i, target_col))], f"{s_frag}@col", row)

    for sid in pool:
        server = cluster.servers[sid]
        left = server.take(f"{r_frag}@row")
        right = server.take(f"{s_frag}@col")
        server.fragment(output_fragment).extend(cartesian_rows(left, right))


def product_schema(r: Relation, s: Relation) -> Schema:
    """Schema of the product output (R's attributes then S's)."""
    return Schema(list(r.schema.attributes) + list(s.schema.attributes))
