"""The parallel sort join (slide 31, [Hu et al. '17]).

1. Union R and S (tuples tagged with their origin).
2. Parallel-sort the union by join key (PSRS).
3. Key groups entirely inside one server join locally; keys straddling a
   server boundary fall back to the grid Cartesian product on dedicated
   servers.

Achieves the same optimal bound as the skew-aware hash join,
``L = O(√(OUT/p) + IN/p)``, because a key can only straddle servers if
its degree is Ω(1) fraction of a server's range.
"""

from __future__ import annotations

from typing import Any

from repro.data.relation import Relation
from repro.joins.base import JoinRun, require_join_key
from repro.joins.heavy import heavy_value_products
from repro.joins.local import hash_join_rows
from repro.mpc.cluster import Cluster, combine_parallel
from repro.sorting.psrs import IndexKey, psrs_partition

Row = tuple[Any, ...]


def sort_join(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    audit: bool | None = None,
) -> JoinRun:
    """Sort-based natural join of R and S on ``p`` servers."""
    shared = require_join_key(r, s)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    extra = [a for a in s.schema.attributes if a not in r.schema]
    extra_idx = s.schema.indices(extra)

    cluster = Cluster(p, seed=seed, audit=audit)
    # Tagged union: (key, origin, serial, original row). Tags ride along
    # for free (metadata of the tuple, not extra tuples). The serial
    # breaks ties so heavily duplicated keys spread across servers — the
    # straddling-key pass below re-collects them.
    union_rows = [
        (tuple(row[i] for i in r_idx), 0, serial, row)
        for serial, row in enumerate(r)
    ]
    union_rows += [
        (tuple(row[i] for i in s_idx), 1, len(r) + serial, row)
        for serial, row in enumerate(s)
    ]
    cluster.scatter_rows(union_rows, "U")

    psrs_partition(cluster, "U", "U@sorted", key=IndexKey(0, 2))

    # Identify keys that straddle a server boundary: each server reports
    # its first and last key to the coordinator (2 tuples per server).
    with cluster.round("boundary-report") as rnd:
        for server in cluster.servers:
            frag = server.get("U@sorted")
            if frag:
                rnd.send(0, "bounds", (server.sid, frag[0][0], frag[-1][0]))
    straddling = _straddling_keys(cluster.servers[0].take("bounds"))

    # Local join of non-straddling key groups.
    out_rows: list[Row] = []
    for server in cluster.servers:
        r_local = [t[3] for t in server.get("U@sorted") if t[1] == 0 and t[0] not in straddling]
        s_local = [t[3] for t in server.get("U@sorted") if t[1] == 1 and t[0] not in straddling]
        out_rows.extend(
            hash_join_rows(r_local, s_local, r_idx, s_idx, extra_idx)
        )

    runs = [cluster.stats]
    if straddling:
        heavy_rows, heavy_runs = heavy_value_products(
            r, s, shared, sorted(straddling), max(p // 2, 1), seed=seed, audit=audit
        )
        out_rows.extend(heavy_rows)
        runs.extend(heavy_runs)

    attrs = list(r.schema.attributes) + extra
    output = Relation(output_name, attrs, out_rows)
    return JoinRun(output, combine_parallel(p, runs))


def _straddling_keys(bounds: list[Row]) -> set[Row]:
    """Keys appearing on more than one server, from (sid, first, last) reports."""
    ordered = sorted(bounds)
    straddling: set[Row] = set()
    for (_, _, prev_last), (_, next_first, _) in zip(ordered, ordered[1:]):
        if prev_last == next_first:
            straddling.add(prev_last)
    return straddling
