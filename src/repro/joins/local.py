"""Local (single-server) join kernels.

The tutorial notes (slide 32) that the choice of the *local* join
algorithm is independent of the parallel shuffle. These kernels operate
on raw row lists plus key positions; the distributed operators pick one
per server after routing. All three produce identical outputs — the
tests assert this — and differ only in access pattern:

- :func:`hash_join_rows` — build a hash table on the smaller side;
- :func:`merge_join_rows` — merge two key-sorted inputs;
- :func:`nested_loop_rows` — quadratic fallback / Cartesian product.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

Row = tuple[Any, ...]


def hash_join_rows(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    right_payload: Sequence[int],
) -> list[Row]:
    """Hash join; output rows are ``left_row + right_row[right_payload]``."""
    index: dict[Row, list[Row]] = {}
    for row in right:
        index.setdefault(tuple(row[i] for i in right_key), []).append(row)
    out: list[Row] = []
    for row in left:
        key = tuple(row[i] for i in left_key)
        for match in index.get(key, ()):
            out.append(row + tuple(match[i] for i in right_payload))
    return out


def merge_join_rows(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    right_payload: Sequence[int],
) -> list[Row]:
    """Sort-merge join (inputs need not be pre-sorted; we sort here)."""
    lk = lambda row: tuple(row[i] for i in left_key)  # noqa: E731
    rk = lambda row: tuple(row[i] for i in right_key)  # noqa: E731
    ls = sorted(left, key=lk)
    rs = sorted(right, key=rk)
    out: list[Row] = []
    i = j = 0
    while i < len(ls) and j < len(rs):
        lkey, rkey = lk(ls[i]), rk(rs[j])
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Gather the full run of equal keys on the right.
            j_end = j
            while j_end < len(rs) and rk(rs[j_end]) == rkey:
                j_end += 1
            i_end = i
            while i_end < len(ls) and lk(ls[i_end]) == lkey:
                i_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    out.append(ls[li] + tuple(rs[rj][t] for t in right_payload))
            i, j = i_end, j_end
    return out


def nested_loop_rows(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    right_payload: Sequence[int],
) -> list[Row]:
    """Nested-loop join; with empty keys this is the Cartesian product."""
    out: list[Row] = []
    for lrow in left:
        lkey = tuple(lrow[i] for i in left_key)
        for rrow in right:
            if lkey == tuple(rrow[i] for i in right_key):
                out.append(lrow + tuple(rrow[i] for i in right_payload))
    return out


def cartesian_rows(left: Sequence[Row], right: Sequence[Row]) -> list[Row]:
    """The full Cartesian product of two row lists."""
    return [lrow + rrow for lrow in left for rrow in right]
