"""Lower bounds: joins, sorting, and matrix multiplication.

The tutorial's counting arguments:

- **multi-round join LB** (slide 56): a server that ever sees r·L tuples
  can emit at most (r·L)^{ρ*} outputs; covering OUT outputs across p
  servers forces L ≥ OUT^{1/ρ*} / (r·p^{1/ρ*}), i.e. L = Ω(IN/p^{1/ρ*})
  on worst-case inputs with OUT = IN^{ρ*};
- **sorting** (slide 105): r = Ω(log_L N) rounds and C = Ω(N·log_L N)
  total communication, independent of p;
- **matrix multiplication** (slides 123–126): with L received elements a
  server performs at most O(L^{3/2}) elementary products (the AGM bound
  of the join view, ρ* = 3/2), hence C = Ω(n³/√L) over any number of
  rounds, r ≥ n³/(p·L^{3/2}), and one-round algorithms need C = Ω(n⁴/L).
"""

from __future__ import annotations

import math


def join_load_lower_bound(out_size: float, rho: float, p: int, rounds: int) -> float:
    """Slide 56: L ≥ OUT^{1/ρ*} / (r · p^{1/ρ*})."""
    if min(out_size, rho, p, rounds) <= 0:
        raise ValueError("all arguments must be positive")
    return out_size ** (1.0 / rho) / (rounds * p ** (1.0 / rho))


def sort_rounds_lower_bound(n: int, load: float) -> float:
    """Slide 105: any MPC sort of N items needs Ω(log_L N) rounds."""
    if load <= 1:
        raise ValueError("load must exceed 1")
    return math.log(max(n, 2)) / math.log(load)


def sort_communication_lower_bound(n: int, load: float) -> float:
    """Slide 105: total communication Ω(N·log_L N)."""
    return n * sort_rounds_lower_bound(n, load)


def matmul_products_per_server(load: float) -> float:
    """Slides 123–124: ≤ L^{3/2} elementary products from L received elements.

    This is the AGM bound applied to the triangle-shaped join view of
    conventional matrix multiplication (ρ* = 3/2).
    """
    if load < 0:
        raise ValueError("load must be non-negative")
    return load**1.5


def matmul_communication_lower_bound(n: int, load: float) -> float:
    """Slide 124: C ≥ n³ / √L for conventional algorithms, any rounds."""
    if load <= 0:
        raise ValueError("load must be positive")
    return n**3 / math.sqrt(load)


def matmul_one_round_communication_lower_bound(n: int, load: float) -> float:
    """Slide 126: one-round algorithms need C ≥ n⁴ / L."""
    if load <= 0:
        raise ValueError("load must be positive")
    return n**4 / load


def matmul_rounds_lower_bound(n: int, p: int, load: float) -> float:
    """Slide 125: r = Ω(max(n³/(p·L^{3/2}), log_L n))."""
    if load <= 1:
        raise ValueError("load must exceed 1")
    product_bound = n**3 / (p * load**1.5)
    aggregation_bound = math.log(max(n, 2)) / math.log(load)
    return max(product_bound, aggregation_bound)


def minimum_rounds_at_load(n: int, load: float) -> int:
    """Slide 126's frontier annotations: rounds forced at a given load.

    Compares the multi-round communication optimum n³/√L with the
    k-round capability: with k rounds a server sees ≤ k·L, so total
    products ≤ p·(k·L)^{3/2}·… — the slide's simplified reading is that
    C(L) between n³/√L and n⁴/L requires ≥ k rounds where
    k ≈ (n⁴/L) / C … we expose the standard form: the least k with
    n³/(p_max·(L)^{3/2}) ≤ k given unbounded p, i.e. k ≥ log_L n for the
    aggregation tree alone.
    """
    return max(1, math.ceil(sort_rounds_lower_bound(n, load)))
