"""Closed-form load and speedup formulas (slides 40–45, 51–54).

Collects the tutorial's headline cost expressions so experiments can
print paper-vs-measured side by side:

- one-round skew-free load IN/p^{1/τ*} and skewed load IN/p^{1/ψ*};
- the slide-51/54 table rows for the triangle, the two-way join, and the
  intersection path;
- the HyperCube speedup curve of slide 45.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.cq import ConjunctiveQuery
from repro.query.fractional import psi_star, rho_star, tau_star


@dataclass(frozen=True)
class QueryCostProfile:
    """The slide-54 table row for one query."""

    query: str
    tau_star: float
    psi_star: float
    rho_star: float

    def one_round_load_no_skew(self, in_size: float, p: int) -> float:
        return in_size / p ** (1.0 / self.tau_star)

    def one_round_load_skew(self, in_size: float, p: int) -> float:
        return in_size / p ** (1.0 / self.psi_star)

    def multi_round_load_no_skew(self, in_size: float, p: int) -> float:
        # Slide 54: multi-round, no skew — IN/p for all the examples.
        return in_size / p

    def multi_round_load_skew(self, in_size: float, p: int) -> float:
        # Slide 54: multi-round under skew is governed by ρ* (tight for
        # some queries, open in general).
        return in_size / p ** (1.0 / self.rho_star)


def cost_profile(query: ConjunctiveQuery) -> QueryCostProfile:
    """Compute a query's (τ*, ψ*, ρ*) cost profile via the LPs."""
    return QueryCostProfile(
        query=str(query),
        tau_star=tau_star(query),
        psi_star=psi_star(query),
        rho_star=rho_star(query),
    )


def one_round_load_bound(
    query: ConjunctiveQuery, in_size: float, p: int, skewed: bool = False
) -> float:
    """The tutorial's one-round load formula for a query and input size.

    Skew-free data: IN/p^{1/τ*}; skewed data: IN/p^{1/ψ*} (the best any
    one-round algorithm can promise). Used by the conformance checks of
    :mod:`repro.testing.properties` as the analytic reference that
    measured loads are compared against.
    """
    profile = cost_profile(query)
    if skewed:
        return profile.one_round_load_skew(in_size, p)
    return profile.one_round_load_no_skew(in_size, p)


def multi_round_load_bound(in_size: float, out_size: float, p: int) -> float:
    """The multi-round (GYM / Yannakakis-style) load formula O((IN+OUT)/p)."""
    return (in_size + out_size) / p


def load_conforms(
    measured: float,
    predicted: float,
    factor: float = 4.0,
    additive: float = 0.0,
) -> bool:
    """Whether a measured load is within a constant factor of a prediction.

    The tutorial's bounds are asymptotic, so conformance means
    ``measured ≤ factor · predicted + additive``; the additive term
    absorbs small-instance constants (splitter broadcasts, ceil effects).
    """
    return measured <= factor * predicted + additive


def hypercube_speedup(
    exponent_sum: float, tau: float, p_values: list[int]
) -> list[tuple[int, float]]:
    """The slide-45 speedup curve.

    For small p the integral shares track the LP solution and the
    speedup follows p^{Σu} (``exponent_sum``); as p grows the speedup
    degrades toward p^{1/τ*}. The returned curve is the *ideal* envelope
    min(p^{Σu}, p^{1/τ}) used as reference in the benchmarks.
    """
    curve = []
    for p in p_values:
        curve.append((p, min(p**exponent_sum, p ** (1.0 / tau))))
    return curve


def required_processors_for_speedup(speedup: float, tau: float) -> float:
    """Invert L = IN/p^{1/τ*}: the p needed for a given load speedup.

    Slide 62's scalability warning: with τ* = 10, a 2× speedup needs
    2¹⁰ = 1024× more processors.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return speedup**tau
