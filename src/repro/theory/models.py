"""Relating MPC to the traditional parallel models (slide 19).

Slide 19's dictionary:

- **circuits ≈ oblivious MPC**: an MPC algorithm with parameters
  (p, r, L) corresponds to a circuit of size p·r, depth r and fan-in L;
- **PRAM / Brent's theorem**: T_p = O(circuit-size / p + depth);
- **BSP**: MPC is BSP with the detailed communication charges removed.

These conversions let the benchmarks sanity-check MPC costs against the
classical bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpc.stats import RunStats


@dataclass(frozen=True)
class CircuitShape:
    """The circuit corresponding to an oblivious MPC execution."""

    size: float   # p · r gates
    depth: float  # r
    fan_in: float  # L


def circuit_of_mpc(p: int, rounds: int, load: float) -> CircuitShape:
    """Slide 19: circuit-size = p×r, depth = r, fan-in = L."""
    if p <= 0 or rounds < 0 or load < 0:
        raise ValueError("p must be positive; rounds and load non-negative")
    return CircuitShape(size=p * rounds, depth=rounds, fan_in=load)


def circuit_of_run(stats: RunStats) -> CircuitShape:
    """The circuit shape of a recorded MPC execution."""
    return circuit_of_mpc(stats.p, max(stats.num_rounds, 1), stats.max_load)


def brent_bound(circuit_size: float, depth: float, p: int) -> float:
    """Brent's theorem: T_p = O(circuit-size / p + depth) on a PRAM."""
    if p <= 0:
        raise ValueError("p must be positive")
    return circuit_size / p + depth


def pram_time_of_run(stats: RunStats, p: int | None = None) -> float:
    """PRAM time of an MPC run via Brent, with work = total communication.

    Uses C (tuples moved) as the circuit-size proxy: each received tuple
    is one unit of work some gate must absorb.
    """
    shape = circuit_of_run(stats)
    work = max(stats.total_communication, shape.size)
    return brent_bound(work, shape.depth, p if p is not None else stats.p)
