"""Analytic formulas behind the tutorial's figures and tables."""

from repro.theory.chernoff import (
    degree_threshold,
    empirical_overload_probability,
    overload_probability_bound,
    threshold_curve,
)
from repro.theory.loads import (
    QueryCostProfile,
    cost_profile,
    hypercube_speedup,
    required_processors_for_speedup,
)
from repro.theory.models import (
    CircuitShape,
    brent_bound,
    circuit_of_mpc,
    circuit_of_run,
    pram_time_of_run,
)
from repro.theory.lower_bounds import (
    join_load_lower_bound,
    matmul_communication_lower_bound,
    matmul_one_round_communication_lower_bound,
    matmul_products_per_server,
    matmul_rounds_lower_bound,
    minimum_rounds_at_load,
    sort_communication_lower_bound,
    sort_rounds_lower_bound,
)

__all__ = [
    "CircuitShape",
    "QueryCostProfile",
    "brent_bound",
    "circuit_of_mpc",
    "circuit_of_run",
    "cost_profile",
    "degree_threshold",
    "empirical_overload_probability",
    "hypercube_speedup",
    "join_load_lower_bound",
    "matmul_communication_lower_bound",
    "matmul_one_round_communication_lower_bound",
    "matmul_products_per_server",
    "matmul_rounds_lower_bound",
    "minimum_rounds_at_load",
    "overload_probability_bound",
    "pram_time_of_run",
    "required_processors_for_speedup",
    "sort_communication_lower_bound",
    "sort_rounds_lower_bound",
    "threshold_curve",
]
