"""Chernoff-bound analysis of hash-partition load (slides 24–26).

For a hash join over data where every join value has degree ``d``, the
tutorial bounds the probability that some server exceeds the expected
load IN/p by a factor (1 + δ):

    Pr[ L ≥ (1+δ)·IN/p ] ≤ p · exp( −δ²·IN / (3·p·d) )        (slide 25)

Degree d = 1 gives the skew-free concentration of slide 24. Solving the
bound for ``d`` at a fixed overload δ and confidence yields the *degree
threshold* curve of slide 26: the largest degree for which hash
partitioning still balances, as a function of p.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mpc.hashing import HashFamily


def overload_probability_bound(
    in_size: float, p: int, degree: float, delta: float
) -> float:
    """The slide-25 upper bound on Pr[L ≥ (1+δ)·IN/p], capped at 1."""
    if in_size <= 0 or p <= 0 or degree <= 0 or delta <= 0:
        raise ValueError("in_size, p, degree and delta must be positive")
    exponent = -(delta**2) * in_size / (3.0 * p * degree)
    return min(1.0, p * math.exp(exponent))


def degree_threshold(
    in_size: float, p: int, delta: float = 0.3, confidence: float = 0.95
) -> float:
    """The largest degree d with overload probability ≤ 1 − confidence.

    Inverts slide 25's bound: p·exp(−δ²·IN/(3pd)) = 1 − confidence gives

        d = δ²·IN / (3·p·ln(p / (1 − confidence))).

    Slide 26 plots this for IN = 10¹¹, δ = 0.3, confidence = 0.95.
    """
    failure = 1.0 - confidence
    if not 0 < failure < 1:
        raise ValueError("confidence must be in (0, 1)")
    if p <= failure:
        raise ValueError("p must exceed the failure probability")
    return (delta**2) * in_size / (3.0 * p * math.log(p / failure))


def threshold_curve(
    in_size: float,
    p_values: list[int],
    delta: float = 0.3,
    confidence: float = 0.95,
) -> list[tuple[int, float]]:
    """The (p, degree-threshold) series behind the slide-26 figure."""
    return [(p, degree_threshold(in_size, p, delta, confidence)) for p in p_values]


def empirical_overload_probability(
    n_keys: int,
    degree: int,
    p: int,
    delta: float,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Measured Pr[L ≥ (1+δ)·IN/p] over random hash functions.

    Simulates hash-partitioning ``n_keys`` distinct join values of degree
    ``degree`` (IN = n_keys·degree tuples) with a fresh hash function per
    trial; used to validate that the Chernoff bound indeed upper-bounds
    reality.
    """
    in_size = n_keys * degree
    threshold = (1.0 + delta) * in_size / p
    overloads = 0
    for trial in range(trials):
        h = HashFamily(seed + trial).function(0, p)
        counts = np.zeros(p, dtype=np.int64)
        for key in range(n_keys):
            counts[h(key)] += degree
        if counts.max() >= threshold:
            overloads += 1
    return overloads / trials
