"""Distributed matrix multiplication in the MPC model."""

from repro.matmul.blocks import (
    assemble_blocks,
    block_count,
    get_block,
    matrix_as_relation_rows,
)
from repro.matmul.multi_round import square_block_costs, square_block_matmul
from repro.matmul.one_round import rectangle_block_costs, rectangle_block_matmul
from repro.matmul.rectangular import (
    balanced_groups,
    rectangular_block_matmul,
    rectangular_costs,
)
from repro.matmul.sql import sql_matmul

__all__ = [
    "assemble_blocks",
    "balanced_groups",
    "block_count",
    "get_block",
    "matrix_as_relation_rows",
    "rectangle_block_costs",
    "rectangle_block_matmul",
    "rectangular_block_matmul",
    "rectangular_costs",
    "sql_matmul",
    "square_block_costs",
    "square_block_matmul",
]
