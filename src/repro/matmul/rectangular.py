"""Non-square matrix multiplication (slide 127, "Other Results").

Generalizes the rectangle-block one-round algorithm to
C = A (n1×n2) · B (n2×n3): servers form a ``K1 × K3`` grid; server
(a, c) receives row group ``a`` of A (t1 rows × n2 elements) and column
group ``c`` of B (n2 × t3 elements) and emits C's ``t1 × t3`` block.

Per-server load L = (t1 + t3)·n2, minimized at t1 = t3 for a fixed
product t1·t3 (output share); total communication

    C_comm = K1·K3·(t1 + t3)·n2 = n1·n3·n2·(1/t3 + 1/t1),

recovering the square case 4n⁴/L at n1 = n2 = n3, t1 = t3 = L/(2n).
"""

from __future__ import annotations

import math

import numpy as np

from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats
from repro.mpc.topology import Grid


def rectangular_block_matmul(
    a: np.ndarray,
    b: np.ndarray,
    row_groups: int,
    col_groups: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[np.ndarray, RunStats]:
    """One-round C = A·B for rectangular A (n1×n2), B (n2×n3).

    ``row_groups`` (K1) splits A's rows; ``col_groups`` (K3) splits B's
    columns; the server count is K1·K3.
    """
    n1, n2 = a.shape
    n2b, n3 = b.shape
    if n2 != n2b:
        raise ValueError(f"shape mismatch: {a.shape} × {b.shape}")
    if not 1 <= row_groups <= n1:
        raise ValueError(f"row_groups must be in [1, {n1}]")
    if not 1 <= col_groups <= n3:
        raise ValueError(f"col_groups must be in [1, {n3}]")

    t1 = math.ceil(n1 / row_groups)
    t3 = math.ceil(n3 / col_groups)
    grid = Grid([row_groups, col_groups])
    cluster = Cluster(grid.size, seed=seed, audit=audit)

    with cluster.round("rectangular-distribute") as rnd:
        for row in range(n1):
            dest_group = row // t1
            for col_group in range(col_groups):
                dest = grid.flat((dest_group, col_group))
                rnd.send(dest, "A@rows", (row, a[row, :]), units=n2)
        for col in range(n3):
            dest_group = col // t3
            for row_group in range(row_groups):
                dest = grid.flat((row_group, dest_group))
                rnd.send(dest, "B@cols", (col, b[:, col]), units=n2)

    c = np.zeros((n1, n3))
    for sid in range(grid.size):
        server = cluster.servers[sid]
        rows = server.take("A@rows")
        cols = server.take("B@cols")
        for row_index, row_vec in rows:
            for col_index, col_vec in cols:
                c[row_index, col_index] = float(row_vec @ col_vec)
    return c, cluster.stats


def balanced_groups(n1: int, n3: int, p: int) -> tuple[int, int]:
    """(K1, K3) with K1·K3 ≤ p minimizing the load (t1 + t3)·n2 ∝ n1/K1 + n3/K3."""
    best = (1, 1)
    best_cost = math.inf
    for k1 in range(1, min(n1, p) + 1):
        k3 = min(p // k1, n3)
        if k3 < 1:
            continue
        cost = n1 / k1 + n3 / k3
        if cost < best_cost:
            best_cost = cost
            best = (k1, k3)
    return best


def rectangular_costs(n1: int, n2: int, n3: int, row_groups: int,
                      col_groups: int) -> dict[str, float]:
    """Predicted one-round costs for the chosen grouping."""
    t1 = math.ceil(n1 / row_groups)
    t3 = math.ceil(n3 / col_groups)
    load = (t1 + t3) * n2
    return {
        "t1": t1,
        "t3": t3,
        "servers": row_groups * col_groups,
        "load": load,
        "communication": row_groups * col_groups * load,
    }
