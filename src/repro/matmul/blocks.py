"""Block partitioning helpers for distributed matrix multiplication.

The square-block algorithm views an n×n matrix as an H×H grid of
b×b blocks (b = n/H, padding the edge blocks when H ∤ n). Blocks are the
unit of communication; a block message costs ``b²`` load units (one per
element, matching the tutorial's element-counting convention).
"""

from __future__ import annotations

import math

import numpy as np


def block_count(n: int, block_size: int) -> int:
    """Number of blocks per dimension: ⌈n / b⌉."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return math.ceil(n / block_size)


def get_block(matrix: np.ndarray, i: int, j: int, block_size: int) -> np.ndarray:
    """Block (i, j), zero-padded to ``block_size`` on the boundary."""
    n_rows, n_cols = matrix.shape
    r0, c0 = i * block_size, j * block_size
    if r0 >= n_rows or c0 >= n_cols:
        raise IndexError(f"block ({i}, {j}) outside a {matrix.shape} matrix")
    block = matrix[r0 : r0 + block_size, c0 : c0 + block_size]
    if block.shape == (block_size, block_size):
        return block
    padded = np.zeros((block_size, block_size), dtype=matrix.dtype)
    padded[: block.shape[0], : block.shape[1]] = block
    return padded


def assemble_blocks(
    blocks: dict[tuple[int, int], np.ndarray], n: int, block_size: int
) -> np.ndarray:
    """Rebuild an n×n matrix from its (i, j) → block map (padding trimmed)."""
    h = block_count(n, block_size)
    out = np.zeros((n, n), dtype=float)
    for (i, j), block in blocks.items():
        if not (0 <= i < h and 0 <= j < h):
            raise IndexError(f"block ({i}, {j}) outside the {h}×{h} grid")
        r0, c0 = i * block_size, j * block_size
        rows = min(block_size, n - r0)
        cols = min(block_size, n - c0)
        out[r0 : r0 + rows, c0 : c0 + cols] = block[:rows, :cols]
    return out


def matrix_as_relation_rows(matrix: np.ndarray) -> list[tuple[int, int, float]]:
    """COO triples (i, j, value) of the non-zero entries — the slide-108 view."""
    rows, cols = np.nonzero(matrix)
    return [
        (int(i), int(j), float(matrix[i, j])) for i, j in zip(rows.tolist(), cols.tolist())
    ]
