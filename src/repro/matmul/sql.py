"""Matrix multiplication as a SQL query on the MPC simulator (slide 108).

    SELECT A.i, B.k, sum(A.v * B.v)
    FROM A, B
    WHERE A.j = B.j
    GROUP BY A.i, B.k

Two rounds: a hash join on ``j`` (each server emits the partial products
of its j-bucket) followed by a hash aggregation on ``(i, k)``. This is
the element-wise view of the conventional algorithm — every one of the
n³ elementary products is materialized, so the aggregation round carries
the full n³ product stream and the approach only makes sense for sparse
inputs. The blocked algorithms of :mod:`repro.matmul.one_round` and
:mod:`repro.matmul.multi_round` avoid exactly this blow-up.
"""

from __future__ import annotations

import numpy as np

from repro.matmul.blocks import matrix_as_relation_rows
from repro.mpc.cluster import Cluster, combine_sequential
from repro.mpc.stats import RunStats


def sql_matmul(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Multiply dense (or sparse) matrices via join + group-by on ``p`` servers.

    Returns ``(C, stats)`` with C = A·B computed exactly (up to float
    association order).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} × {b.shape}")
    a_rows = matrix_as_relation_rows(a)
    b_rows = matrix_as_relation_rows(b)

    # Round 1: join on j.
    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter_rows(a_rows, "A@in")
    cluster.scatter_rows(b_rows, "B@in")
    h = cluster.hash_function(0)
    with cluster.round("join-j") as rnd:
        for server in cluster.servers:
            for i, j, v in server.take("A@in"):
                rnd.send(h(j), "A@j", (i, j, v))
            for j, k, v in server.take("B@in"):
                rnd.send(h(j), "B@j", (j, k, v))

    # The n³ elementary products dominate the run; the exec backend
    # computes each server's block concurrently and returns (i, k, v)
    # *arrays* — through shared memory under the process backend — that
    # the coordinator zips back into tuples (int64/float64 round-trips
    # are exact, so the partials match the historical loop bit-for-bit).
    payloads = [(server.take("A@j"), server.take("B@j")) for server in cluster.servers]
    partials: list[tuple[int, int, float]] = []
    for iis, ks, vs in cluster.map_servers("matmul.partials", payloads):
        partials.extend(zip(iis.tolist(), ks.tolist(), vs.tolist()))
    join_stats = cluster.stats

    # Round 2: aggregate by (i, k).
    agg = Cluster(p, seed=seed + 1, audit=audit)
    agg.scatter_rows(partials, "P@in")
    h2 = agg.hash_function(1)
    with agg.round("groupby-ik") as rnd:
        for server in agg.servers:
            for i, k, v in server.take("P@in"):
                rnd.send(h2((i, k)), "P@j", (i, k, v))

    c = np.zeros((a.shape[0], b.shape[1]))
    sum_payloads = [server.take("P@j") for server in agg.servers]
    for iis, ks, vs in agg.map_servers("matmul.sums", sum_payloads):
        c[iis, ks] = vs

    stats = combine_sequential(p, [join_stats, agg.stats])
    return c, stats


def matmul_partials_chunk(payloads: list, common) -> list:
    """Exec task ``matmul.partials``: per-server join-side products.

    Returns ``(i, k, v)`` int64/int64/float64 arrays per server, in the
    exact emission order of the historical tuple loop; products are
    computed on Python floats before array packing, so values are
    bit-identical to the inline path.
    """
    out = []
    for a_rows, b_rows in payloads:
        index: dict[int, list[tuple[int, float]]] = {}
        for j, k, v in b_rows:
            index.setdefault(j, []).append((k, v))
        iis: list[int] = []
        ks: list[int] = []
        vs: list[float] = []
        for i, j, av in a_rows:
            for k, bv in index.get(j, ()):
                iis.append(i)
                ks.append(k)
                vs.append(av * bv)
        out.append(
            (
                np.asarray(iis, dtype=np.int64),
                np.asarray(ks, dtype=np.int64),
                np.asarray(vs, dtype=np.float64),
            )
        )
    return out


def matmul_sums_chunk(payloads: list, common) -> list:
    """Exec task ``matmul.sums``: per-server (i, k) group sums.

    Sums accumulate on Python floats in arrival order (matching the
    historical dict loop's association order) and are returned as
    arrays in first-arrival key order.
    """
    out = []
    for rows in payloads:
        sums: dict[tuple[int, int], float] = {}
        for i, k, v in rows:
            sums[(i, k)] = sums.get((i, k), 0.0) + v
        iis = np.asarray([i for i, _ in sums], dtype=np.int64)
        ks = np.asarray([k for _, k in sums], dtype=np.int64)
        vs = np.asarray(list(sums.values()), dtype=np.float64)
        out.append((iis, ks, vs))
    return out
