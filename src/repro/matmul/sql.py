"""Matrix multiplication as a SQL query on the MPC simulator (slide 108).

    SELECT A.i, B.k, sum(A.v * B.v)
    FROM A, B
    WHERE A.j = B.j
    GROUP BY A.i, B.k

Two rounds: a hash join on ``j`` (each server emits the partial products
of its j-bucket) followed by a hash aggregation on ``(i, k)``. This is
the element-wise view of the conventional algorithm — every one of the
n³ elementary products is materialized, so the aggregation round carries
the full n³ product stream and the approach only makes sense for sparse
inputs. The blocked algorithms of :mod:`repro.matmul.one_round` and
:mod:`repro.matmul.multi_round` avoid exactly this blow-up.
"""

from __future__ import annotations

import numpy as np

from repro.matmul.blocks import matrix_as_relation_rows
from repro.mpc.cluster import Cluster, combine_sequential
from repro.mpc.stats import RunStats


def sql_matmul(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Multiply dense (or sparse) matrices via join + group-by on ``p`` servers.

    Returns ``(C, stats)`` with C = A·B computed exactly (up to float
    association order).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} × {b.shape}")
    a_rows = matrix_as_relation_rows(a)
    b_rows = matrix_as_relation_rows(b)

    # Round 1: join on j.
    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter_rows(a_rows, "A@in")
    cluster.scatter_rows(b_rows, "B@in")
    h = cluster.hash_function(0)
    with cluster.round("join-j") as rnd:
        for server in cluster.servers:
            for i, j, v in server.take("A@in"):
                rnd.send(h(j), "A@j", (i, j, v))
            for j, k, v in server.take("B@in"):
                rnd.send(h(j), "B@j", (j, k, v))

    partials: list[tuple[int, int, float]] = []
    for server in cluster.servers:
        index: dict[int, list[tuple[int, float]]] = {}
        for j, k, v in server.take("B@j"):
            index.setdefault(j, []).append((k, v))
        for i, j, av in server.take("A@j"):
            for k, bv in index.get(j, ()):
                partials.append((i, k, av * bv))
    join_stats = cluster.stats

    # Round 2: aggregate by (i, k).
    agg = Cluster(p, seed=seed + 1, audit=audit)
    agg.scatter_rows(partials, "P@in")
    h2 = agg.hash_function(1)
    with agg.round("groupby-ik") as rnd:
        for server in agg.servers:
            for i, k, v in server.take("P@in"):
                rnd.send(h2((i, k)), "P@j", (i, k, v))

    c = np.zeros((a.shape[0], b.shape[1]))
    for server in agg.servers:
        sums: dict[tuple[int, int], float] = {}
        for i, k, v in server.take("P@j"):
            sums[(i, k)] = sums.get((i, k), 0.0) + v
        for (i, k), v in sums.items():
            c[i, k] = v

    stats = combine_sequential(p, [join_stats, agg.stats])
    return c, stats
