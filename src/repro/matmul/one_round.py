"""The rectangle-block one-round algorithm (slides 109–110).

With load budget ``L = 2tn`` each server can hold ``t`` full rows of A
and ``t`` full columns of B, producing a ``t × t`` output block with
``t²n`` elementary products. Divide A into ``K = n/t`` row groups and B
into ``K`` column groups; server ``(a, b)`` of the ``K × K`` grid
receives row group ``a`` and column group ``b`` and emits C's block
``(a, b)``. One round, total communication

    C_comm = p · L = K² · 2tn = 2n³/t = 4n⁴/L,

the one-round lower bound (slide 126) up to constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats
from repro.mpc.topology import Grid


def rectangle_block_matmul(
    a: np.ndarray,
    b: np.ndarray,
    groups: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[np.ndarray, RunStats]:
    """One-round C = A·B on a ``groups × groups`` server grid.

    ``groups`` is K, the number of row/column groups; the server count is
    K². Returns ``(C, stats)``; the per-server load is 2·(n/K)·n elements.
    """
    n = a.shape[0]
    if a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise ValueError("rectangle-block algorithm expects square same-size matrices")
    if not 1 <= groups <= n:
        raise ValueError(f"groups must be in [1, {n}], got {groups}")

    k = groups
    t = math.ceil(n / k)
    grid = Grid([k, k])
    cluster = Cluster(grid.size, seed=seed, audit=audit)

    with cluster.round("rectangle-distribute") as rnd:
        for row in range(n):
            dest_group = row // t
            for col_group in range(k):
                dest = grid.flat((dest_group, col_group))
                rnd.send(dest, "A@rows", (row, a[row, :]), units=n)
        for col in range(n):
            dest_group = col // t
            for row_group in range(k):
                dest = grid.flat((row_group, dest_group))
                rnd.send(dest, "B@cols", (col, b[:, col]), units=n)

    c = np.zeros((n, n))
    for sid in range(grid.size):
        server = cluster.servers[sid]
        rows = server.take("A@rows")
        cols = server.take("B@cols")
        for row_index, row_vec in rows:
            for col_index, col_vec in cols:
                c[row_index, col_index] = float(row_vec @ col_vec)
    return c, cluster.stats


def rectangle_block_costs(n: int, load: float) -> dict[str, float]:
    """Predicted one-round costs for an n×n multiply under load L = 2tn.

    Returns t, K, p, and total communication C = 4n⁴/L (slide 110's
    C = O(n⁴/L) with the constant made explicit).
    """
    if load < 2 * n:
        raise ValueError(f"one round needs L ≥ 2n = {2 * n} (full rows and columns)")
    t = load / (2 * n)
    k = n / t
    return {
        "t": t,
        "groups": k,
        "servers": k * k,
        "communication": k * k * load,
    }
