"""The square-block multi-round algorithm (slides 111–122).

Split A and B into ``H × H`` square blocks of side ``b`` (so a server
holding two blocks stores ``L = 2b²`` elements). The ``H³`` block
products are organized into ``H`` groups (slide 112)

    G_z = { A_{i,j} × B_{j,k} : j = (i + k + z) mod H },

each containing exactly one product per output block C_{i,k}. With
``p = H²`` servers, server (i, k) performs its group-z product in round
z, accumulating C_{i,k} locally — ``H`` rounds of load ``2b²``. With
``p = c·H²`` the rounds split across ``c`` replicas per output block and
one extra round merges the partial sums (slides 119–121); with
``p < H²`` each server handles several output blocks per round. Total
communication C ≈ p·r·L = 2n³/b = O(n³/√L) — the multi-round lower
bound (slide 124).
"""

from __future__ import annotations

import math

import numpy as np

from repro.matmul.blocks import assemble_blocks, block_count, get_block
from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats


def square_block_matmul(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    block_size: int,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Multi-round C = A·B with ``H = ⌈n/block_size⌉`` block groups.

    Returns ``(C, stats)``. Loads count matrix *elements*; each block
    message costs ``block_size²`` units.
    """
    n = a.shape[0]
    if a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise ValueError("square-block algorithm expects square same-size matrices")
    h = block_count(n, block_size)
    units = block_size * block_size
    cluster = Cluster(p, seed=seed, audit=audit)

    # Output-block ownership and replication: with p ≥ H² each block gets
    # c = p // H² replicas that split the H products; otherwise blocks
    # wrap around the p servers.
    replicas = max(1, p // (h * h))

    def owner(i: int, k: int, replica: int) -> int:
        return ((i * h + k) * replicas + replica) % p

    accumulators: dict[int, dict[tuple[int, int], np.ndarray]] = {
        sid: {} for sid in range(p)
    }

    rounds = math.ceil(h / replicas)
    for rnd_index in range(rounds):
        with cluster.round(f"block-products-{rnd_index}") as rnd:
            for i in range(h):
                for k in range(h):
                    for replica in range(replicas):
                        z = rnd_index * replicas + replica
                        if z >= h:
                            continue
                        j = (i + k + z) % h
                        dest = owner(i, k, replica)
                        rnd.send(dest, "A@blk", (i, j, k), units=units)
                        rnd.send(dest, "B@blk", (j, k, i), units=units)
        # Local compute: every server multiplies the block pairs it received.
        for sid in range(p):
            server = cluster.servers[sid]
            a_blocks = server.take("A@blk")
            server.take("B@blk")
            for i, j, k in a_blocks:
                product = get_block(a, i, j, block_size) @ get_block(
                    b, j, k, block_size
                )
                acc = accumulators[sid]
                if (i, k) in acc:
                    acc[(i, k)] = acc[(i, k)] + product
                else:
                    acc[(i, k)] = product

    # Merge replica partial sums (slide 121's final round); free when c=1.
    if replicas > 1:
        with cluster.round("merge-partials") as rnd:
            for sid in range(p):
                for (i, k), partial in accumulators[sid].items():
                    primary = owner(i, k, 0)
                    if primary != sid:
                        rnd.send(primary, "C@partial", (i, k, partial), units=units)
        for sid in range(p):
            for i, k, partial in cluster.servers[sid].take("C@partial"):
                acc = accumulators[sid]
                acc[(i, k)] = acc.get((i, k), 0) + partial
        final = {}
        for sid in range(p):
            for (i, k), block in accumulators[sid].items():
                if owner(i, k, 0) == sid:
                    final[(i, k)] = block
    else:
        final = {}
        for sid in range(p):
            final.update(accumulators[sid])

    c = assemble_blocks(final, n, block_size)
    return c, cluster.stats


def square_block_costs(n: int, p: int, load: float) -> dict[str, float]:
    """Predicted multi-round costs under per-round load L = 2b².

    Returns b, H, rounds r = max(H³/p, 1) (compute-bound) and total
    communication C = O(n³/√L) — slide 122's table row.
    """
    if load < 2:
        raise ValueError("load must allow at least one block pair")
    b = math.sqrt(load / 2.0)
    h = n / b
    product_rounds = max(h * h * h / p, 1.0)
    return {
        "block_size": b,
        "h": h,
        "rounds": product_rounds + math.log(max(n, 2)) / math.log(max(load, 2)),
        "communication": 2 * n**3 / b,
    }
