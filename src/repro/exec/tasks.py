"""The task registry: names workers use to find per-chunk functions.

A task is a module-level pure function ``fn(payloads, common) ->
results`` (elementwise over ``payloads``; see :mod:`repro.exec.base` for
the contract). Registering by *name* instead of shipping code objects
keeps messages tiny and spawn-safe: a worker resolves the name against
its own imported modules, so both sides are guaranteed to run the exact
same function — which is the whole byte-identity argument.

Population is lazy because the algorithm modules import the cluster,
which imports the backend layer; resolving at first use breaks the
cycle for free.
"""

from __future__ import annotations

from typing import Any, Callable

TaskFn = Callable[[list[Any], Any], list[Any]]

_REGISTRY: dict[str, TaskFn] = {}


def _populate() -> None:
    from repro.joins import base as joins_base
    from repro.matmul import sql as matmul_sql
    from repro.multiway import base as multiway_base
    from repro.multiway import hypercube
    from repro.sorting import psrs

    _REGISTRY.update(
        {
            "join.fragments": joins_base.join_fragment_chunk,
            "semijoin.filter": multiway_base.semijoin_filter_chunk,
            "aggregate.groups": multiway_base.aggregate_groups_chunk,
            "hypercube.eval": hypercube.hypercube_eval_chunk,
            "matmul.partials": matmul_sql.matmul_partials_chunk,
            "matmul.sums": matmul_sql.matmul_sums_chunk,
            "psrs.localsort": psrs.psrs_localsort_chunk,
            "psrs.finalsort": psrs.psrs_finalsort_chunk,
        }
    )


def resolve(name: str) -> TaskFn:
    """The registered chunk function for ``name`` (raises KeyError style)."""
    if not _REGISTRY:
        _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise LookupError(
            f"unknown exec task {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def register(name: str, fn: TaskFn) -> None:
    """Add a task (tests and future algorithms; must be importable in
    workers, i.e. a module-level function, for the process backend)."""
    if not _REGISTRY:
        _populate()
    _REGISTRY[name] = fn
