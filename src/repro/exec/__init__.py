"""Pluggable execution backends for per-round local computation.

``inline`` (default) runs server-local work in the coordinating process
exactly as before; ``process`` fans it out over a persistent
multiprocessing worker pool where worker i owns the i-th contiguous
range of the p simulated servers, with numpy column side-cars traveling
through shared memory. Select with ``REPRO_BACKEND=process`` /
``REPRO_WORKERS=4`` / ``REPRO_TRANSPORT=shm|pickle``, or in code::

    with use_backend("process", workers=4):
        run = parallel_hash_join(r, s, p=64)

Outputs, per-server loads, round counts, audit conservation, and
fault/recovery replay are byte-identical across backends: all cluster
state stays on the coordinator and both backends execute the same
registered pure functions (see :mod:`repro.exec.base`).
"""

from repro.exec.base import (
    ExecutionBackend,
    FallbackHotPathWarning,
    InlineBackend,
    ProcessBackend,
    chunk_bounds,
    get_backend,
)
from repro.exec.config import (
    BACKENDS,
    PROTOCOLS,
    TRANSPORTS,
    backend_name,
    protocol_name,
    resident_cache_bytes,
    set_backend,
    shm_rows_enabled,
    transport_name,
    use_backend,
    use_protocol,
    use_shm_rows,
    worker_count,
)
from repro.exec.pool import (
    DispatchStats,
    WorkerError,
    invalidate_resident,
    shutdown_pools,
)

__all__ = [
    "BACKENDS",
    "PROTOCOLS",
    "TRANSPORTS",
    "DispatchStats",
    "ExecutionBackend",
    "FallbackHotPathWarning",
    "InlineBackend",
    "ProcessBackend",
    "WorkerError",
    "backend_name",
    "chunk_bounds",
    "get_backend",
    "invalidate_resident",
    "protocol_name",
    "resident_cache_bytes",
    "set_backend",
    "shm_rows_enabled",
    "shutdown_pools",
    "transport_name",
    "use_backend",
    "use_protocol",
    "use_shm_rows",
    "worker_count",
]
