"""Backend objects: who runs a round's per-server local computation.

A *task* is a registered module-level pure function
``fn(payloads: list, common) -> list`` that maps a chunk of per-server
payloads to the same-length list of per-server results, elementwise and
without cross-item state. That contract is what makes the two backends
interchangeable: ``inline`` calls the function once over the whole
payload list, ``process`` splits the list into one contiguous chunk per
worker and concatenates the chunk results in chunk order — for an
elementwise function the two compositions are the same function, so
outputs are byte-identical by construction.

Backends only execute; they own no servers, rounds, faults, or audit
state. All of that stays on the coordinator (see
:mod:`repro.mpc.cluster`), which is why loads, round counts, audit
conservation, and fault replay cannot diverge between backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.exec import config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.mpc pkg)
    from repro.mpc.stats import ExecStats

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "chunk_bounds",
    "get_backend",
]


def chunk_bounds(count: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of ``range(count)`` into ``parts``.

    The first ``count % parts`` chunks get one extra element; empty
    chunks are omitted. Chunk i is worker i's contiguous server range.
    """
    if parts < 1:
        raise ValueError(f"need at least one part, got {parts}")
    base, extra = divmod(count, parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size:
            bounds.append((start, start + size))
            start += size
    return bounds


def _resolve_task(name: str) -> Callable[[list[Any], Any], list[Any]]:
    # Imported lazily: the task registry pulls in the algorithm modules,
    # which import this module for map_servers plumbing.
    from repro.exec import tasks

    return tasks.resolve(name)


class ExecutionBackend:
    """Interface both backends implement; also documents the contract."""

    name: str

    def new_stats(self) -> "ExecStats":
        raise NotImplementedError

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        """Apply the named task to every payload, in order."""
        raise NotImplementedError


class InlineBackend(ExecutionBackend):
    """The historical single-process path: one chunk, zero transport."""

    name = "inline"

    def new_stats(self) -> "ExecStats":
        from repro.mpc.stats import ExecStats

        return ExecStats(backend=self.name, workers=1, transport="none")

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        if stats is not None:
            stats.dispatches += 1
            stats.chunks += 1
            stats.items += len(payloads)
        return _resolve_task(task)(list(payloads), common)


class ProcessBackend(ExecutionBackend):
    """Persistent worker pool; chunk i goes to worker i, merged in order."""

    name = "process"

    def __init__(self, workers: int, transport: str) -> None:
        self.workers = workers
        self.transport = transport

    def new_stats(self) -> "ExecStats":
        from repro.mpc.stats import ExecStats

        return ExecStats(
            backend=self.name, workers=self.workers, transport=self.transport
        )

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        # The pool forks lazily, on first real work only.
        from repro.exec.pool import UnpicklablePayloadError, get_pool
        from repro.kernels.config import kernels_enabled

        chunks = [
            (index, payloads[start:stop])
            for index, (start, stop) in enumerate(
                chunk_bounds(len(payloads), self.workers)
            )
        ]
        pool = get_pool(self.workers, self.transport)
        try:
            results, shm_out, shm_in, pickle_out, pickle_in, worker_seconds = (
                pool.run(task, chunks, common, kernels_enabled())
            )
        except UnpicklablePayloadError:
            # Same pure function, same order — byte-identical, just local.
            if stats is not None:
                stats.fallbacks += 1
            return _inline.map_payloads(task, payloads, common, stats=stats)
        if stats is not None:
            stats.dispatches += 1
            stats.chunks += len(chunks)
            stats.items += len(payloads)
            stats.shm_bytes_out += shm_out
            stats.shm_bytes_in += shm_in
            stats.pickle_bytes_out += pickle_out
            stats.pickle_bytes_in += pickle_in
            stats.worker_seconds += worker_seconds
        merged: list[Any] = []
        for chunk_result in results:
            merged.extend(chunk_result)
        if len(merged) != len(payloads):
            raise RuntimeError(
                f"task {task!r} returned {len(merged)} results for "
                f"{len(payloads)} payloads; chunk results must be "
                "same-length elementwise maps"
            )
        return merged


_inline = InlineBackend()
_process_backends: dict[tuple[int, str], ProcessBackend] = {}


def get_backend(spec: "str | ExecutionBackend | None" = None) -> ExecutionBackend:
    """Resolve a backend: an instance passes through, a name or ``None``
    consults :mod:`repro.exec.config` (``None`` = the ambient setting)."""
    if isinstance(spec, ExecutionBackend):
        return spec
    name = config._validated_backend(spec) if spec else config.backend_name()
    if name == "inline":
        return _inline
    key = (config.worker_count(), config.transport_name())
    backend = _process_backends.get(key)
    if backend is None:
        backend = ProcessBackend(*key)
        _process_backends[key] = backend
    return backend
