"""Backend objects: who runs a round's per-server local computation.

A *task* is a registered module-level pure function
``fn(payloads: list, common) -> list`` that maps a chunk of per-server
payloads to the same-length list of per-server results, elementwise and
without cross-item state. That contract is what makes the two backends
interchangeable: ``inline`` calls the function once over the whole
payload list, ``process`` splits the list into one contiguous chunk per
worker and concatenates the chunk results in chunk order — for an
elementwise function the two compositions are the same function, so
outputs are byte-identical by construction.

Backends only execute; they own no servers, rounds, faults, or audit
state. All of that stays on the coordinator (see
:mod:`repro.mpc.cluster`), which is why loads, round counts, audit
conservation, and fault replay cannot diverge between backends.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable

from repro.exec import config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.mpc pkg)
    from repro.mpc.stats import ExecStats

__all__ = [
    "ExecutionBackend",
    "FallbackHotPathWarning",
    "InlineBackend",
    "ProcessBackend",
    "chunk_bounds",
    "get_backend",
]


class FallbackHotPathWarning(UserWarning):
    """Columnar-sized row data rode the queue pickle instead of shm.

    The shm transport is the only sanctioned hot path for columnar
    data; a dispatch whose pack-eligible rows fell back to per-tuple
    pickling at this volume is paying serialization cost the transport
    was built to avoid. The event is counted
    (``ExecStats.fallback_dispatches``) on every occurrence and warned
    about once per task when it crosses the hot threshold.
    """


# One dispatch moving this many pack-eligible rows through pickle is
# "hot": roughly a megabyte of per-tuple pickling, far past the point
# where the segment cost would have amortized.
_HOT_FALLBACK_ROWS = 50_000

# Task names already warned about (once per process, not per dispatch).
_warned_hot_tasks: set[str] = set()


def chunk_bounds(count: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of ``range(count)`` into ``parts``.

    The first ``count % parts`` chunks get one extra element; empty
    chunks are omitted. Chunk i is worker i's contiguous server range.
    """
    if parts < 1:
        raise ValueError(f"need at least one part, got {parts}")
    base, extra = divmod(count, parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size:
            bounds.append((start, start + size))
            start += size
    return bounds


def _resolve_task(name: str) -> Callable[[list[Any], Any], list[Any]]:
    # Imported lazily: the task registry pulls in the algorithm modules,
    # which import this module for map_servers plumbing.
    from repro.exec import tasks

    return tasks.resolve(name)


class ExecutionBackend:
    """Interface both backends implement; also documents the contract."""

    name: str

    def new_stats(self) -> "ExecStats":
        raise NotImplementedError

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        """Apply the named task to every payload, in order."""
        raise NotImplementedError

    def map_payload_batch(
        self,
        calls: list[tuple[str, list[Any], Any]],
        stats: ExecStats | None = None,
    ) -> list[list[Any]]:
        """Run several *independent* task maps as one dispatch.

        ``calls[k] = (task, payloads, common)``; the result list is
        call-aligned. The calls must not depend on each other's results
        (the process backend ships them in a single queue message per
        worker). The default runs them sequentially — backends override
        to actually collapse the round-trips.
        """
        return [
            self.map_payloads(task, payloads, common, stats=stats)
            for task, payloads, common in calls
        ]


class InlineBackend(ExecutionBackend):
    """The historical single-process path: one chunk, zero transport."""

    name = "inline"

    def new_stats(self) -> "ExecStats":
        from repro.mpc.stats import ExecStats

        return ExecStats(backend=self.name, workers=1, transport="none")

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        if stats is not None:
            stats.dispatches += 1
            stats.chunks += 1
            stats.items += len(payloads)
        return _resolve_task(task)(list(payloads), common)


class ProcessBackend(ExecutionBackend):
    """Persistent worker pool; chunk i goes to worker i, merged in order."""

    name = "process"

    def __init__(self, workers: int, transport: str) -> None:
        self.workers = workers
        self.transport = transport

    def new_stats(self) -> "ExecStats":
        from repro.exec.config import protocol_name
        from repro.mpc.stats import ExecStats

        return ExecStats(
            backend=self.name, workers=self.workers, transport=self.transport,
            protocol=protocol_name(),
        )

    def _chunked(self, payloads: list[Any]) -> list[tuple[int, list[Any]]]:
        return [
            (index, payloads[start:stop])
            for index, (start, stop) in enumerate(
                chunk_bounds(len(payloads), self.workers)
            )
        ]

    def _account(self, stats: "ExecStats | None", dispatch: Any) -> None:
        if stats is None:
            return
        stats.shm_bytes_out += dispatch.shm_bytes_out
        stats.shm_bytes_in += dispatch.shm_bytes_in
        stats.pickle_bytes_out += dispatch.pickle_bytes_out
        stats.pickle_bytes_in += dispatch.pickle_bytes_in
        stats.worker_seconds += dispatch.worker_seconds
        stats.queue_messages += dispatch.queue_messages
        stats.snapshot_dispatches += dispatch.snapshot_dispatches
        stats.resident_hits += dispatch.resident_hits
        stats.resident_misses += dispatch.resident_misses
        stats.resident_bytes_saved += dispatch.resident_bytes_saved
        stats.fallback_dispatches += dispatch.fallback_encodes

    @staticmethod
    def _warn_hot_fallback(dispatch: Any, task_names: list[str]) -> None:
        """Surface a dispatch whose pickle fallback crossed the hot bar."""
        if dispatch.fallback_rows < _HOT_FALLBACK_ROWS:
            return
        label = "+".join(sorted(set(task_names)))
        if label in _warned_hot_tasks:
            return
        _warned_hot_tasks.add(label)
        warnings.warn(
            f"dispatch of {label!r} moved {dispatch.fallback_rows} "
            "pack-eligible rows through queue pickle (non-uniform or "
            "non-integer tuples); the shm columnar transport is the "
            "intended hot path — consider normalizing the rows or "
            "accepting the counted ExecStats.fallback_dispatches cost",
            FallbackHotPathWarning,
            stacklevel=3,
        )

    def _merge_elementwise(
        self, task: str, payloads: list[Any], chunk_results: list[list[Any]]
    ) -> list[Any]:
        merged: list[Any] = []
        for chunk_result in chunk_results:
            merged.extend(chunk_result)
        if len(merged) != len(payloads):
            raise RuntimeError(
                f"task {task!r} returned {len(merged)} results for "
                f"{len(payloads)} payloads; chunk results must be "
                "same-length elementwise maps"
            )
        return merged

    def map_payloads(
        self,
        task: str,
        payloads: list[Any],
        common: Any = None,
        stats: ExecStats | None = None,
    ) -> list[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        # The pool forks lazily, on first real work only.
        from repro.exec.pool import UnpicklablePayloadError, get_pool
        from repro.kernels.config import kernels_enabled

        chunks = self._chunked(payloads)
        pool = get_pool(self.workers, self.transport)
        try:
            results, dispatch = pool.run(task, chunks, common, kernels_enabled())
        except UnpicklablePayloadError:
            # Same pure function, same order — byte-identical, just local.
            if stats is not None:
                stats.fallbacks += 1
            return _inline.map_payloads(task, payloads, common, stats=stats)
        if stats is not None:
            stats.dispatches += 1
            stats.chunks += len(chunks)
            stats.items += len(payloads)
            self._account(stats, dispatch)
        self._warn_hot_fallback(dispatch, [task])
        return self._merge_elementwise(task, payloads, results)

    def map_payload_batch(
        self,
        calls: list[tuple[str, list[Any], Any]],
        stats: ExecStats | None = None,
    ) -> list[list[Any]]:
        """Collapse k independent task maps into one round-trip per worker."""
        calls = [(task, list(payloads), common) for task, payloads, common in calls]
        live = [
            (index, task, payloads, common)
            for index, (task, payloads, common) in enumerate(calls)
            if payloads
        ]
        out: list[list[Any]] = [[] for _ in calls]
        if not live:
            return out
        from repro.exec.pool import UnpicklablePayloadError, get_pool
        from repro.kernels.config import kernels_enabled

        pool_calls = [
            (task, self._chunked(payloads), common)
            for _, task, payloads, common in live
        ]
        pool = get_pool(self.workers, self.transport)
        try:
            results, dispatch = pool.run_batch(pool_calls, kernels_enabled())
        except UnpicklablePayloadError:
            # One unpicklable payload degrades the whole batch to inline
            # (the batch shares queue messages, so per-call retry would
            # re-encode everything anyway); counted once per lost call.
            if stats is not None:
                stats.fallbacks += len(live)
            for index, task, payloads, common in live:
                out[index] = _inline.map_payloads(task, payloads, common, stats=stats)
            return out
        if stats is not None:
            stats.dispatches += len(live)
            stats.chunks += sum(len(chunks) for _, chunks, _ in pool_calls)
            stats.items += sum(len(payloads) for _, _, payloads, _ in live)
            self._account(stats, dispatch)
        self._warn_hot_fallback(dispatch, [task for _, task, _, _ in live])
        for (index, task, payloads, _), chunk_results in zip(live, results):
            out[index] = self._merge_elementwise(task, payloads, chunk_results)
        return out


_inline = InlineBackend()
_process_backends: dict[tuple[int, str], ProcessBackend] = {}


def get_backend(spec: "str | ExecutionBackend | None" = None) -> ExecutionBackend:
    """Resolve a backend: an instance passes through, a name or ``None``
    consults :mod:`repro.exec.config` (``None`` = the ambient setting)."""
    if isinstance(spec, ExecutionBackend):
        return spec
    name = config._validated_backend(spec) if spec else config.backend_name()
    if name == "inline":
        return _inline
    key = (config.worker_count(), config.transport_name())
    backend = _process_backends.get(key)
    if backend is None:
        backend = ProcessBackend(*key)
        _process_backends[key] = backend
    return backend
