"""Persistent multiprocessing worker pool for the ``process`` backend.

One pool per (worker count, transport) pair lives for the rest of the
interpreter session — pools are expensive to start, and the whole point
of a *persistent* pool is that a run of b rounds pays the fork cost
once, not b times. Each worker owns one dedicated task queue (so chunk
i deterministically lands on worker i, preserving the "worker owns a
contiguous server range" assignment) and all workers share one result
queue; the coordinator reassembles results by job id, so arrival order
never matters.

Workers are stateless executors: a job carries the task *name* (resolved
against :mod:`repro.exec.tasks` inside the worker), the payload chunk,
and the ambient kernels flag captured at dispatch time. Workers force
the ``inline`` backend on startup so a task can itself call cluster
helpers without recursively forking pools.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
from typing import Any

from repro.exec import shm

__all__ = [
    "UnpicklablePayloadError",
    "WorkerError",
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
]

# Generous per-poll timeout: only used to interleave liveness checks
# with blocking result reads, never as a job deadline.
_POLL_SECONDS = 1.0


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(
    worker_index: int,
    task_queue: Any,
    result_queue: Any,
    transport: str,
) -> None:
    """Worker loop: decode job, run task, encode result, repeat."""
    # Imports happen here (not at module top) so a spawn-started child
    # pays them once, and so fork-started children re-resolve nothing.
    from repro.exec import config as exec_config
    from repro.exec import tasks as task_registry
    from repro.kernels.config import use_kernels

    # A task running inside a worker must never fork its own pool.
    exec_config.set_backend("inline")
    while True:
        blob = task_queue.get()
        if blob is None:
            break
        job_id, task_name, encoded, kernels_flag, rows_flag = pickle.loads(blob)
        started = time.perf_counter()
        try:
            (chunk, common), segment = shm.decode_for_read(encoded)
            try:
                fn = task_registry.resolve(task_name)
                with use_kernels(kernels_flag):
                    result = fn(chunk, common)
            finally:
                shm.finish_read(segment)
            payload = shm.encode_payload(result, transport, pack_rows=rows_flag)
            ok = True
        except BaseException:
            payload = f"worker {worker_index}: {traceback.format_exc()}"
            ok = False
        # The result rides the queue as an explicit pickle blob (instead
        # of letting the queue pickle the tuple internally) so the
        # coordinator can account the bytes that did NOT make it into
        # shared memory — the pickle_bytes_in half of the transport
        # story the benchmarks compare.
        result_queue.put(
            pickle.dumps(
                (job_id, ok, payload, time.perf_counter() - started),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )


class WorkerError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback text."""


class UnpicklablePayloadError(TypeError):
    """A job carried an object the queue cannot serialize.

    Raised *before* anything is enqueued (jobs are pre-pickled in the
    coordinator precisely so this surfaces synchronously instead of
    dying in the queue's feeder thread and hanging the collect loop);
    the backend falls back to inline execution for the whole map call.
    """


class WorkerPool:
    """A fixed-size pool of persistent task-executing processes."""

    def __init__(self, workers: int, transport: str) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.transport = transport
        context = multiprocessing.get_context(_start_method())
        self._task_queues = [context.Queue() for _ in range(workers)]
        self._result_queue = context.Queue()
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(index, self._task_queues[index], self._result_queue, transport),
                daemon=True,
                name=f"repro-exec-{index}",
            )
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._closed = False

    def run(
        self,
        task_name: str,
        chunks: list[tuple[int, list[Any]]],
        common: Any,
        kernels_flag: bool,
    ) -> tuple[list[list[Any]], int, int, int, int, float]:
        """Run one task over ``(worker_index, payload_chunk)`` pairs.

        Returns ``(results_in_chunk_order, shm_bytes_out, shm_bytes_in,
        pickle_bytes_out, pickle_bytes_in, worker_seconds)``. Chunk i's
        result sits at index i regardless of completion order, which is
        what makes the merge deterministic.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        from repro.exec.config import shm_rows_enabled

        rows_flag = shm_rows_enabled()
        # Encode and pre-pickle every job before enqueueing any of them:
        # a serialization failure (a closure key, an exotic item type)
        # must raise here, where the backend can fall back to inline —
        # a failure inside the queue's feeder thread would silently drop
        # the job and deadlock the collect loop below.
        shm_out = 0
        pickle_out = 0
        blobs: list[tuple[int, bytes]] = []
        encodeds: list[shm.ShmEncoded] = []
        try:
            for job_id, (worker_index, chunk) in enumerate(chunks):
                encoded = shm.encode_payload(
                    (chunk, common), self.transport, pack_rows=rows_flag
                )
                encodeds.append(encoded)
                shm_out += encoded.nbytes
                blob = pickle.dumps(
                    (job_id, task_name, encoded, kernels_flag, rows_flag),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                pickle_out += len(blob)
                blobs.append((worker_index % self.workers, blob))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            for encoded in encodeds:
                shm.release_payload(encoded)
            raise UnpicklablePayloadError(
                f"task {task_name!r} payload is not picklable: {error}"
            ) from error
        for worker_index, blob in blobs:
            self._task_queues[worker_index].put(blob)
        results: list[list[Any] | None] = [None] * len(chunks)
        pending = len(chunks)
        shm_in = 0
        pickle_in = 0
        worker_seconds = 0.0
        failure: str | None = None
        while pending:
            try:
                result_blob = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                dead = [p.name for p in self._processes if not p.is_alive()]
                if dead:
                    self._closed = True
                    raise WorkerError(
                        f"worker process(es) died while jobs were pending: {dead}"
                    )
                continue
            pending -= 1
            pickle_in += len(result_blob)
            job_id, ok, payload, elapsed = pickle.loads(result_blob)
            worker_seconds += elapsed
            if not ok:
                # Drain remaining jobs before raising so their shared
                # memory is released rather than leaked.
                if failure is None:
                    failure = payload
                continue
            if failure is not None:
                shm.release_payload(payload)
                continue
            shm_in += payload.nbytes
            results[job_id] = shm.decode_owned(payload)
        if failure is not None:
            raise WorkerError(failure)
        return (
            [result for result in results if result is not None],
            shm_out,
            shm_in,
            pickle_out,
            pickle_in,
            worker_seconds,
        )

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (ValueError, OSError):  # pragma: no cover - interp exit
                pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stuck task
                process.terminate()
                process.join(timeout=1.0)


_pools: dict[tuple[int, str], WorkerPool] = {}


def get_pool(workers: int, transport: str) -> WorkerPool:
    """The persistent pool for this (size, transport) pair, forking lazily."""
    key = (workers, transport)
    pool = _pools.get(key)
    if pool is None or pool._closed:
        pool = WorkerPool(workers, transport)
        _pools[key] = pool
    return pool


@atexit.register
def shutdown_pools() -> None:
    """Stop every live pool (registered atexit; callable from tests)."""
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()
