"""Persistent multiprocessing worker pool for the ``process`` backend.

One pool per (worker count, transport) pair lives for the rest of the
interpreter session — pools are expensive to start, and the whole point
of a *persistent* pool is that a run of b rounds pays the fork cost
once, not b times. Each worker owns one dedicated task queue (so chunk
i deterministically lands on worker i, preserving the "worker owns a
contiguous server range" assignment) and all workers share one result
queue; the coordinator reassembles results by job id, so arrival order
never matters.

Dispatch protocol
-----------------

A queue message is a *batch*: ``(job_id, epoch, [subjob, ...])`` where
each subjob is ``(task_name, encoded_payload, kernels_flag, rows_flag)``.
Independent task maps (:meth:`WorkerPool.run_batch`) collapse into one
round-trip per worker instead of one per map; a single map is just a
batch of one. ``epoch`` is the resident-state epoch: workers keep a
content-addressed :class:`~repro.exec.shm.BlockCache` of payload blocks
between dispatches, the coordinator mirrors it per worker
(:class:`~repro.exec.shm.MirrorCache`), and bumping the epoch tells the
worker to drop everything — the wholesale invalidation path that keeps
faults, recovery, and explicit resets byte-identical to a cold start.

Segment lifecycle
-----------------

The coordinator registers every outbound shared-memory segment under
its job id until the worker's reply proves the inputs were consumed
(workers unlink after reading), and registers inbound result segments
until they are decoded. A worker crash, an exception, or a
``KeyboardInterrupt`` mid-dispatch therefore has a complete name list
to unlink — no segment outlives the pool, whatever the exit path.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
from dataclasses import dataclass
from typing import Any

from repro.exec import shm

__all__ = [
    "DispatchStats",
    "UnpicklablePayloadError",
    "WorkerError",
    "WorkerPool",
    "get_pool",
    "invalidate_resident",
    "shutdown_pools",
]

# Generous per-poll timeout: only used to interleave liveness checks
# with blocking result reads, never as a job deadline.
_POLL_SECONDS = 1.0


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(
    worker_index: int,
    task_queue: Any,
    result_queue: Any,
    transport: str,
) -> None:
    """Worker loop: decode batch, run each task, encode results, reply."""
    # Imports happen here (not at module top) so a spawn-started child
    # pays them once, and so fork-started children re-resolve nothing.
    from repro.exec import config as exec_config
    from repro.exec import tasks as task_registry
    from repro.kernels.config import use_kernels

    # A task running inside a worker must never fork its own pool.
    exec_config.set_backend("inline")
    cache = shm.BlockCache()
    while True:
        blob = task_queue.get()
        if blob is None:
            break
        job_id, epoch, subjobs = pickle.loads(blob)
        cache.sync_epoch(epoch)
        started = time.perf_counter()
        results: list[shm.ShmEncoded] = []
        reply: Any
        ok = True
        index = 0
        try:
            for index, (task_name, encoded, kernels_flag, rows_flag) in enumerate(
                subjobs
            ):
                (chunk, common), segment = shm.decode_for_read(encoded, cache)
                try:
                    fn = task_registry.resolve(task_name)
                    with use_kernels(kernels_flag):
                        result = fn(chunk, common)
                finally:
                    shm.finish_read(segment)
                results.append(
                    shm.encode_payload(result, transport, pack_rows=rows_flag)
                )
            reply = results
        except BaseException:
            # Nothing of this batch may leak: release results already
            # encoded and the inputs of the failing + unprocessed
            # subjobs (already-unlinked segments are tolerated).
            for encoded_result in results:
                shm.release_payload(encoded_result)
            for _, encoded, _, _ in subjobs[index:]:
                shm.release_payload(encoded)
            reply = f"worker {worker_index}: {traceback.format_exc()}"
            ok = False
        # The result rides the queue as an explicit pickle blob (instead
        # of letting the queue pickle the tuple internally) so the
        # coordinator can account the bytes that did NOT make it into
        # shared memory — the pickle_bytes_in half of the transport
        # story the benchmarks compare.
        result_queue.put(
            pickle.dumps(
                (job_id, ok, reply, time.perf_counter() - started),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )


class WorkerError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback text."""


class UnpicklablePayloadError(TypeError):
    """A job carried an object the queue cannot serialize.

    Raised *before* anything is enqueued (jobs are pre-pickled in the
    coordinator precisely so this surfaces synchronously instead of
    dying in the queue's feeder thread and hanging the collect loop);
    the backend falls back to inline execution for the whole map call.
    """


@dataclass
class DispatchStats:
    """Transport accounting of one :meth:`WorkerPool.run_batch` call."""

    shm_bytes_out: int = 0
    shm_bytes_in: int = 0
    pickle_bytes_out: int = 0
    pickle_bytes_in: int = 0
    worker_seconds: float = 0.0
    queue_messages: int = 0  # messages enqueued (one per participating worker)
    snapshot_dispatches: int = 0  # messages that shipped a full snapshot
    resident_hits: int = 0  # blocks that traveled as tokens, not bytes
    resident_misses: int = 0  # cacheable blocks that had to ship
    resident_bytes_saved: int = 0  # bytes the hits did not re-ship
    fallback_rows: int = 0  # pack-eligible rows that rode the pickle stream
    fallback_encodes: int = 0  # payload encodes with at least one such list


class WorkerPool:
    """A fixed-size pool of persistent task-executing processes."""

    def __init__(self, workers: int, transport: str) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        from repro.exec.config import resident_cache_bytes

        self.workers = workers
        self.transport = transport
        context = multiprocessing.get_context(_start_method())
        self._task_queues = [context.Queue() for _ in range(workers)]
        self._result_queue = context.Queue()
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(index, self._task_queues[index], self._result_queue, transport),
                daemon=True,
                name=f"repro-exec-{index}",
            )
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._closed = False
        cap = resident_cache_bytes()
        self._mirrors = [shm.MirrorCache(cap) for _ in range(workers)]
        # Abnormal-shutdown ledger: outbound segment names by job id
        # (dropped when the worker's reply arrives — it unlinks inputs
        # after reading) and inbound result segment names not yet
        # decoded. Everything still listed at teardown is unlinked.
        self._inflight: dict[int, list[str]] = {}
        self._pending_results: set[str] = set()

    # ------------------------------------------------------------ dispatch

    def invalidate_resident(self) -> None:
        """Bump every worker's state epoch on its next dispatch.

        The explicit invalidation path: callers that mutated ambient
        state a cached block may alias (none do today — blocks are
        content-addressed copies) or that want a cold-start measurement
        (the x9 benchmark arms) get a guaranteed empty worker cache.
        """
        for mirror in self._mirrors:
            mirror.invalidate()

    def run(
        self,
        task_name: str,
        chunks: list[tuple[int, list[Any]]],
        common: Any,
        kernels_flag: bool,
    ) -> tuple[list[list[Any]], DispatchStats]:
        """Run one task over ``(worker_index, payload_chunk)`` pairs.

        A batch of one: results arrive in chunk order regardless of
        completion order, which is what makes the merge deterministic.
        """
        results, stats = self.run_batch([(task_name, chunks, common)], kernels_flag)
        return results[0], stats

    def run_batch(
        self,
        calls: list[tuple[str, list[tuple[int, list[Any]]], Any]],
        kernels_flag: bool,
    ) -> tuple[list[list[list[Any]]], DispatchStats]:
        """Run several independent task maps in one round-trip per worker.

        ``calls[k] = (task_name, chunks, common)`` with ``chunks`` a list
        of ``(worker_index, payload_chunk)`` pairs. Every worker that
        appears in any call receives exactly one queue message carrying
        all of its subjobs in call order, so k dependent-free maps cost
        one dispatch instead of k. Returns per-call, per-chunk results
        (``out[k][i]`` = call k's chunk i) plus the batch's
        :class:`DispatchStats`.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        from repro.exec.config import protocol_name, shm_rows_enabled

        rows_flag = shm_rows_enabled()
        resident = protocol_name() == "resident" and self.transport == "shm"
        stats = DispatchStats()

        # Group subjobs by target worker, preserving call order within
        # each worker (the worker executes them sequentially).
        by_worker: dict[int, list[tuple[int, int, str, list[Any], Any]]] = {}
        for call_index, (task_name, chunks, common) in enumerate(calls):
            for chunk_pos, (worker_index, chunk) in enumerate(chunks):
                by_worker.setdefault(worker_index % self.workers, []).append(
                    (call_index, chunk_pos, task_name, chunk, common)
                )

        # Encode and pre-pickle every message before enqueueing any of
        # them: a serialization failure (a closure key, an exotic item
        # type) must raise here, where the backend can fall back to
        # inline — a failure inside the queue's feeder thread would
        # silently drop the job and deadlock the collect loop below.
        # Mirror staging is committed only after every blob pickled, so
        # an abort leaves the mirrors exactly as before the call.
        blobs: list[tuple[int, int, bytes]] = []  # (worker, job_id, blob)
        job_meta: dict[int, list[tuple[int, int]]] = {}
        job_segments: dict[int, list[str]] = {}
        encodeds: list[shm.ShmEncoded] = []
        try:
            for job_id, (worker_index, subjobs) in enumerate(
                sorted(by_worker.items())
            ):
                mirror = self._mirrors[worker_index] if resident else None
                epoch = (
                    mirror.begin_message()
                    if mirror is not None
                    else self._mirrors[worker_index].epoch
                )
                wire_subjobs = []
                meta = []
                segments: list[str] = []
                message_hits = 0
                for call_index, chunk_pos, task_name, chunk, common in subjobs:
                    encoded = shm.encode_payload(
                        (chunk, common), self.transport,
                        pack_rows=rows_flag, mirror=mirror,
                    )
                    encodeds.append(encoded)
                    stats.shm_bytes_out += encoded.nbytes
                    message_hits += encoded.resident
                    stats.resident_bytes_saved += encoded.resident_bytes
                    stats.resident_misses += sum(
                        1 for token in encoded.tokens if token is not None
                    )
                    stats.fallback_rows += encoded.fallback_rows
                    if encoded.fallback_rows:
                        stats.fallback_encodes += 1
                    if encoded.segment_name is not None:
                        segments.append(encoded.segment_name)
                    wire_subjobs.append((task_name, encoded, kernels_flag, rows_flag))
                    meta.append((call_index, chunk_pos))
                blob = pickle.dumps(
                    (job_id, epoch, wire_subjobs),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                stats.pickle_bytes_out += len(blob)
                stats.resident_hits += message_hits
                if message_hits == 0:
                    # Nothing rode the resident cache: this message is a
                    # full payload snapshot — the PR 5 protocol's only
                    # kind of dispatch, and the quantity x9 shows
                    # dropping under the resident protocol.
                    stats.snapshot_dispatches += 1
                blobs.append((worker_index, job_id, blob))
                job_meta[job_id] = meta
                job_segments[job_id] = segments
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            for mirror in self._mirrors:
                mirror.abort()
            for encoded in encodeds:
                shm.release_payload(encoded)
            raise UnpicklablePayloadError(
                f"batch payload is not picklable: {error}"
            ) from error
        for mirror in self._mirrors:
            mirror.commit()
        stats.queue_messages = len(blobs)

        try:
            for worker_index, job_id, blob in blobs:
                self._inflight[job_id] = job_segments[job_id]
                self._task_queues[worker_index].put(blob)
            per_call: list[list[Any]] = [
                [None] * len(chunks) for _, chunks, _ in calls
            ]
            pending = len(blobs)
            failure: str | None = None
            while pending:
                try:
                    result_blob = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    dead = [p.name for p in self._processes if not p.is_alive()]
                    if dead:
                        # The pool is unusable: terminate survivors and
                        # unlink everything still registered before
                        # surfacing the crash.
                        self._emergency_teardown()
                        raise WorkerError(
                            f"worker process(es) died while jobs were "
                            f"pending: {dead}"
                        )
                    continue
                pending -= 1
                stats.pickle_bytes_in += len(result_blob)
                job_id, ok, reply, elapsed = pickle.loads(result_blob)
                stats.worker_seconds += elapsed
                # The worker consumed (and unlinked) this job's inputs.
                self._inflight.pop(job_id, None)
                if not ok:
                    # Drain remaining jobs before raising so their
                    # shared memory is released rather than leaked.
                    if failure is None:
                        failure = reply
                    continue
                for encoded_result in reply:
                    if encoded_result.segment_name is not None:
                        self._pending_results.add(encoded_result.segment_name)
                if failure is not None:
                    for encoded_result in reply:
                        shm.release_payload(encoded_result)
                        self._pending_results.discard(encoded_result.segment_name)
                    continue
                for (call_index, chunk_pos), encoded_result in zip(
                    job_meta[job_id], reply
                ):
                    stats.shm_bytes_in += encoded_result.nbytes
                    per_call[call_index][chunk_pos] = shm.decode_owned(
                        encoded_result
                    )
                    self._pending_results.discard(encoded_result.segment_name)
            if failure is not None:
                # A *task* failure is a clean protocol event: the pool
                # stays alive — every segment was drained above.
                raise WorkerError(failure)
        except WorkerError:
            raise
        except BaseException:
            # KeyboardInterrupt or any unexpected coordinator-side error
            # mid-collect: in-flight state is indeterminate, so tear the
            # pool down and unlink everything still registered.
            self._emergency_teardown()
            raise
        return per_call, stats

    # ------------------------------------------------------------ teardown

    def _release_registered_segments(self) -> None:
        """Unlink every segment still on the abnormal-shutdown ledger."""
        for segments in self._inflight.values():
            for name in segments:
                _unlink_segment(name)
        self._inflight.clear()
        for name in self._pending_results:
            _unlink_segment(name)
        self._pending_results.clear()

    def _drain_result_queue(self) -> None:
        """Best-effort release of result segments parked in the queue."""
        while True:
            try:
                result_blob = self._result_queue.get_nowait()
            except (queue_module.Empty, ValueError, OSError):
                return
            try:
                job_id, ok, reply, _elapsed = pickle.loads(result_blob)
            except Exception:  # pragma: no cover - truncated blob
                continue
            self._inflight.pop(job_id, None)
            if ok:
                for encoded_result in reply:
                    shm.release_payload(encoded_result)

    def _emergency_teardown(self) -> None:
        """Kill the pool and unlink every registered segment."""
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=1.0)
        self._drain_result_queue()
        self._release_registered_segments()

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (ValueError, OSError):  # pragma: no cover - interp exit
                pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stuck task
                process.terminate()
                process.join(timeout=1.0)
        self._drain_result_queue()
        self._release_registered_segments()


def _unlink_segment(name: str) -> None:
    """Unlink one segment by name, tolerating every already-gone state."""
    try:
        segment = shm.attach_segment(name)
    except (FileNotFoundError, OSError):
        return
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with the worker
        pass
    try:
        segment.close()
    except BufferError:  # pragma: no cover - defensive
        pass


_pools: dict[tuple[int, str], WorkerPool] = {}


def get_pool(workers: int, transport: str) -> WorkerPool:
    """The persistent pool for this (size, transport) pair, forking lazily."""
    key = (workers, transport)
    pool = _pools.get(key)
    if pool is None or pool._closed:
        pool = WorkerPool(workers, transport)
        _pools[key] = pool
    return pool


def invalidate_resident() -> None:
    """Epoch-bump every live pool's resident caches (see the pool method)."""
    for pool in _pools.values():
        if not pool._closed:
            pool.invalidate_resident()


@atexit.register
def shutdown_pools() -> None:
    """Stop every live pool (registered atexit; callable from tests)."""
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()
