"""Shared-memory columnar transport for the process backend.

A task payload is an arbitrary picklable structure (nested tuples,
lists, dicts) whose numpy-array leaves — the columnar-native data
layer's columns — would be expensive to push through a queue's pickle
stream. With the ``shm`` transport every array leaf of one message is
packed into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and
replaced by an index marker; the receiver re-attaches the segment and
rebuilds zero-copy views.

Row lists (lists of Python tuples) get the same treatment when they are
*uniform all-integer* blocks: a list of ≥ 32 same-arity int tuples
packs into one 2-D ``int64`` array riding the segment, marked by
:class:`_RowsRef` so the receiver rebuilds the exact tuple list. Mixed,
ragged, non-integer, or tiny lists keep travelling through the queue's
batched pickle — the fallback contract of the kernels, gated by
``REPRO_SHM_ROWS`` (:func:`repro.exec.config.shm_rows_enabled`).

Segment lifecycle: the *sender* creates the segment and disowns it from
its resource tracker (:func:`disown_segment`), because the duty to
unlink transfers to the peer; the *receiver* attaches without claiming
tracker ownership (:func:`attach_segment`), decodes, and either unlinks
after reading (worker side) or copies the arrays out and unlinks
immediately (coordinator side).

Resident protocol
-----------------

With the ``resident`` dispatch protocol (:func:`repro.exec.config
.protocol_name`) packed blocks are *content-addressed*: each block's
token is a 16-byte blake2b digest over its dtype, shape, and raw bytes.
The coordinator keeps a :class:`MirrorCache` per worker — a
deterministic mirror of what that worker's :class:`BlockCache` holds —
and a block whose token is mirrored is encoded as a
:class:`_CachedArrayRef`/:class:`_CachedRowsRef` marker carrying only
the token; the worker resolves it from its cache. Blocks shipped fresh
carry their token in :attr:`ShmEncoded.tokens` and are cached by the
worker on receipt, which is what keeps both sides in lockstep without
any extra round-trip. Invalidation is wholesale: the coordinator bumps
a *state epoch* (over-budget mirror, explicit
``invalidate_resident()``), ships it with the next dispatch, and the
worker drops its entire cache when the epoch changes.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

__all__ = [
    "BlockCache",
    "MirrorCache",
    "ShmEncoded",
    "attach_segment",
    "decode_for_read",
    "decode_owned",
    "disown_segment",
    "encode_payload",
    "finish_read",
    "release_payload",
]


@dataclass(frozen=True)
class _ArrayRef:
    """Marker standing in for the ``index``-th packed array of a message."""

    index: int


@dataclass(frozen=True)
class _RowsRef:
    """Marker for a tuple list packed as the ``index``-th (2-D) array."""

    index: int


@dataclass(frozen=True)
class _CachedArrayRef:
    """Marker for an array the receiving worker already holds resident."""

    token: bytes


@dataclass(frozen=True)
class _CachedRowsRef:
    """Marker for a resident tuple list (cached in rebuilt form)."""

    token: bytes


# Below this the fixed per-message segment cost outweighs the pickle
# saving; the threshold only trades speed, never correctness.
_MIN_ROW_BLOCK = 32

# Blocks smaller than this are never content-addressed: hashing and
# token bookkeeping would cost more than re-shipping them.
_MIN_RESIDENT_BYTES = 1024


def _block_token(block: np.ndarray) -> bytes:
    """16-byte content address of a contiguous block (dtype+shape+bytes)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(block.dtype.str.encode("ascii"))
    digest.update(repr(block.shape).encode("ascii"))
    try:
        digest.update(memoryview(block).cast("B"))
    except TypeError:  # pragma: no cover - non-contiguous defensive path
        digest.update(block.tobytes())
    return digest.digest()


class MirrorCache:
    """Coordinator-side mirror of one worker's resident :class:`BlockCache`.

    The mirror is authoritative: a block is encoded as a cached ref iff
    its token is mirrored, and every token the mirror holds was shipped
    to the worker with a cache instruction in a message the worker must
    fully process before any later one (per-worker FIFO queue). Staged
    entries cover the current message batch and are committed only once
    every blob of the batch was handed to the queue — an encode failure
    aborts them, so the mirror never claims blocks the worker never saw.
    """

    def __init__(self, cap_bytes: int) -> None:
        self.cap_bytes = cap_bytes
        self.epoch = 0
        self.bytes = 0
        self._resident: dict[tuple[str, bytes], int] = {}
        self._staged: dict[tuple[str, bytes], int] = {}
        self._invalidated = False

    def invalidate(self) -> None:
        """Force an epoch bump on the next dispatch (explicit reset path)."""
        self._invalidated = True

    def begin_message(self) -> int:
        """Epoch for the message about to be encoded; resets when due."""
        if self._invalidated or self.bytes > self.cap_bytes:
            self.epoch += 1
            self.bytes = 0
            self._resident.clear()
            self._staged.clear()
            self._invalidated = False
        return self.epoch

    def is_resident(self, kind: str, token: bytes) -> bool:
        key = (kind, token)
        return key in self._resident or key in self._staged

    def stage(self, kind: str, token: bytes, nbytes: int) -> None:
        key = (kind, token)
        if key not in self._resident and key not in self._staged:
            self._staged[key] = nbytes

    def commit(self) -> None:
        for key, nbytes in self._staged.items():
            if key not in self._resident:
                self._resident[key] = nbytes
                self.bytes += nbytes
        self._staged.clear()

    def abort(self) -> None:
        self._staged.clear()


class BlockCache:
    """Worker-side resident store of content-addressed payload blocks.

    Arrays are cached as private copies (segment views die with the
    message) and handed out as fresh copies on hit; rebuilt tuple lists
    are cached once and handed out as shallow copies (tuples are
    immutable, the list itself is the task's to mutate). Either way a
    hit observes exactly the value a fresh ship would have produced, so
    task behavior cannot depend on the protocol.
    """

    def __init__(self) -> None:
        self.epoch: int | None = None
        self._blocks: dict[tuple[str, bytes], Any] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def sync_epoch(self, epoch: int) -> None:
        """Drop everything when the coordinator declared a new epoch."""
        if epoch != self.epoch:
            self._blocks.clear()
            self.epoch = epoch

    def store(self, kind: str, token: bytes, value: Any) -> None:
        self._blocks[(kind, token)] = value

    def array(self, token: bytes) -> np.ndarray:
        cached = self._blocks.get(("a", token))
        if cached is None:
            raise KeyError(
                f"resident array {token.hex()} missing from worker cache"
            )
        return cached.copy()

    def rows(self, token: bytes) -> list[tuple]:
        cached = self._blocks.get(("r", token))
        if cached is None:
            raise KeyError(
                f"resident row block {token.hex()} missing from worker cache"
            )
        return list(cached)


def _pack_rows(obj: list[Any]) -> np.ndarray | None:
    """The 2-D ``int64`` block for a uniform all-int tuple list, or None.

    The first row acts as a cheap pre-filter (tuples of built-in ints
    only — ``bool`` is excluded because ``True`` must round-trip as
    ``True``, not ``1``); the array conversion then validates the rest:
    ragged lists raise, mixed or float or oversized values produce a
    non-``int`` dtype, and both cases fall back to pickle.
    """
    if len(obj) < _MIN_ROW_BLOCK or type(obj[0]) is not tuple:
        return None
    first = obj[0]
    if not first:
        return None
    for value in first:
        if type(value) is not int:
            return None
    try:
        block = np.asarray(obj)
    except (ValueError, TypeError, OverflowError):
        return None
    if block.ndim != 2 or block.shape[1] != len(first) or block.dtype.kind != "i":
        return None
    return block


@dataclass
class ShmEncoded:
    """One encoded message: the structure plus its array segment (if any)."""

    structure: Any
    segment_name: str | None
    # (dtype string, shape, byte offset) per packed array, index-aligned.
    arrays: list[tuple[str, tuple[int, ...], int]]
    nbytes: int  # total array bytes carried via shared memory
    # Resident-protocol side channel, index-aligned with ``arrays``:
    # ``(kind, token)`` instructs the receiver to cache that block under
    # the token ("a" = array, "r" = rebuilt tuple list); None = don't.
    tokens: list[tuple[str, bytes] | None] = field(default_factory=list)
    resident: int = 0  # blocks encoded as cached refs (bytes not shipped)
    resident_bytes: int = 0  # bytes those refs would have shipped
    fallback_rows: int = 0  # rows of pack-eligible lists that fell to pickle


# Python 3.13 made attach-side tracking explicit (track=); before that,
# only the *creator* registers with the resource tracker, so attachers
# must not unregister (the creator already disowned — a second
# unregister makes the tracker log KeyError tracebacks).
_ATTACH_TRACKS = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def disown_segment(segment: shared_memory.SharedMemory) -> None:
    """Drop a created segment from this process's resource tracker.

    Ownership (the duty to unlink) is being transferred to the peer;
    without this the tracker of the creating process would unlink the
    name again at exit and log a spurious leak warning.
    """
    try:  # pragma: no cover - tracker internals vary across 3.x
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming tracker ownership."""
    if _ATTACH_TRACKS:  # pragma: no cover - 3.13+
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


class _Encoder:
    """State of one message encode: packed blocks, tokens, counters."""

    def __init__(self, pack_rows: bool, mirror: MirrorCache | None) -> None:
        self.pack_rows = pack_rows
        self.mirror = mirror
        self.sink: list[np.ndarray] = []  # contiguous blocks to pack
        self.tokens: list[tuple[str, bytes] | None] = []
        self.resident = 0
        self.resident_bytes = 0
        self.fallback_rows = 0

    def _emit_block(self, kind: str, block: np.ndarray) -> Any:
        """Ship, cache-and-ship, or reference one contiguous block."""
        token: tuple[str, bytes] | None = None
        if self.mirror is not None and block.nbytes >= _MIN_RESIDENT_BYTES:
            digest = _block_token(block)
            if self.mirror.is_resident(kind, digest):
                self.resident += 1
                self.resident_bytes += block.nbytes
                return (
                    _CachedArrayRef(digest)
                    if kind == "a"
                    else _CachedRowsRef(digest)
                )
            self.mirror.stage(kind, digest, block.nbytes)
            token = (kind, digest)
        self.sink.append(block)
        self.tokens.append(token)
        index = len(self.sink) - 1
        return _ArrayRef(index) if kind == "a" else _RowsRef(index)

    def walk(self, obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            return self._emit_block("a", np.ascontiguousarray(obj))
        if isinstance(obj, tuple):
            return tuple(self.walk(item) for item in obj)
        if isinstance(obj, list):
            if self.pack_rows:
                block = _pack_rows(obj)
                if block is not None:
                    return self._emit_block("r", np.ascontiguousarray(block))
                if len(obj) >= _MIN_ROW_BLOCK and type(obj[0]) is tuple:
                    # Pack-eligible by size and shape but not uniform
                    # all-int: these rows ride the queue pickle — the
                    # counted fallback the backend warns about when hot.
                    self.fallback_rows += len(obj)
            return [self.walk(item) for item in obj]
        if isinstance(obj, dict):
            return {key: self.walk(value) for key, value in obj.items()}
        return obj


def _walk_decode(obj: Any, arrays: list[np.ndarray], cache: BlockCache | None) -> Any:
    if isinstance(obj, _ArrayRef):
        return arrays[obj.index]
    if isinstance(obj, _RowsRef):
        # .tolist() yields built-in ints, so the rebuilt tuples are
        # byte-identical to what the sender packed.
        return [tuple(row) for row in arrays[obj.index].tolist()]
    if isinstance(obj, _CachedArrayRef):
        if cache is None:
            raise KeyError("cached array ref decoded without a block cache")
        return cache.array(obj.token)
    if isinstance(obj, _CachedRowsRef):
        if cache is None:
            raise KeyError("cached rows ref decoded without a block cache")
        return cache.rows(obj.token)
    if isinstance(obj, tuple):
        return tuple(_walk_decode(item, arrays, cache) for item in obj)
    if isinstance(obj, list):
        return [_walk_decode(item, arrays, cache) for item in obj]
    if isinstance(obj, dict):
        return {
            key: _walk_decode(value, arrays, cache) for key, value in obj.items()
        }
    return obj


def _cache_shipped_blocks(
    encoded: ShmEncoded, arrays: list[np.ndarray], cache: BlockCache | None
) -> None:
    """Store freshly shipped tokenized blocks before resolving the walk.

    Runs first so refs within the same message (a block shipped at index
    i and referenced again later) resolve, and so the cached value is
    taken before the task had any chance to touch the handed-out views.
    """
    if cache is None or not encoded.tokens:
        return
    for token, array in zip(encoded.tokens, arrays):
        if token is None:
            continue
        kind, digest = token
        if kind == "a":
            cache.store(kind, digest, array.copy())
        else:
            cache.store(kind, digest, [tuple(row) for row in array.tolist()])


def encode_payload(
    payload: Any,
    transport: str,
    pack_rows: bool | None = None,
    mirror: MirrorCache | None = None,
) -> ShmEncoded:
    """Lift the array leaves of ``payload`` into one shared-memory segment.

    With ``transport="pickle"`` (or when there are no array bytes to
    move) the payload is passed through untouched and rides the queue's
    pickle stream whole. ``pack_rows`` controls the integer row-block
    packing; ``None`` resolves the ambient
    :func:`repro.exec.config.shm_rows_enabled` — workers receive the
    coordinator's resolved flag with the job instead, because a scoped
    ``use_shm_rows`` override never crosses the fork.

    ``mirror`` (coordinator only) enables the resident protocol for this
    message: blocks the target worker already caches become token refs,
    fresh cacheable blocks are staged on the mirror — the caller commits
    or aborts the staging depending on whether the message was actually
    handed to the worker's queue.
    """
    if transport != "shm":
        return ShmEncoded(payload, None, [], 0)
    if pack_rows is None:
        from repro.exec.config import shm_rows_enabled

        pack_rows = shm_rows_enabled()
    encoder = _Encoder(pack_rows, mirror)
    structure = encoder.walk(payload)
    arrays = encoder.sink
    total = sum(a.nbytes for a in arrays)
    if total == 0:
        # Zero-length segments are invalid; metadata-only messages (and
        # all-empty columns) go through pickle regardless of transport.
        # When resident refs replaced every block the walked structure
        # must be kept — only a truly markerless message passes the
        # original object through.
        structure = payload if encoder.resident == 0 else structure
        return ShmEncoded(
            structure, None, [], 0,
            resident=encoder.resident,
            resident_bytes=encoder.resident_bytes,
            fallback_rows=encoder.fallback_rows,
        )
    segment = shared_memory.SharedMemory(create=True, size=total)
    disown_segment(segment)  # receiver copies/unlinks; see module doc
    meta: list[tuple[str, tuple[int, ...], int]] = []
    offset = 0
    for contiguous in arrays:
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype,
            buffer=segment.buf, offset=offset,
        )
        view[...] = contiguous
        meta.append((contiguous.dtype.str, contiguous.shape, offset))
        offset += contiguous.nbytes
    name = segment.name
    segment.close()
    return ShmEncoded(
        structure, name, meta, total,
        tokens=encoder.tokens,
        resident=encoder.resident,
        resident_bytes=encoder.resident_bytes,
        fallback_rows=encoder.fallback_rows,
    )


def decode_for_read(
    encoded: ShmEncoded, cache: BlockCache | None = None
) -> tuple[Any, shared_memory.SharedMemory | None]:
    """Rebuild the payload with zero-copy views into the segment.

    The worker-side read path: the returned segment handle must stay
    alive while the views are in use and be passed to
    :func:`finish_read` afterwards (the worker is the message's final
    consumer, so it also unlinks). ``cache`` is the worker's resident
    block store: freshly shipped tokenized blocks are copied into it
    before the structure resolves, cached refs are served from it.
    """
    if encoded.segment_name is None:
        if encoded.resident:
            return _walk_decode(encoded.structure, [], cache), None
        return encoded.structure, None
    segment = attach_segment(encoded.segment_name)
    arrays = [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        for dtype, shape, offset in encoded.arrays
    ]
    _cache_shipped_blocks(encoded, arrays, cache)
    return _walk_decode(encoded.structure, arrays, cache), segment


def finish_read(segment: shared_memory.SharedMemory | None) -> None:
    """Release a segment consumed by :func:`decode_for_read`.

    Unlinks the name (the memory itself is freed once the last mapping
    drops). Closing can legitimately fail with :class:`BufferError`
    when a task kept a view into its input alive in its result; the
    mapping then dies with the worker instead — unlink already ran, so
    nothing leaks past the process.
    """
    if segment is None:
        return
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already released
        pass
    try:
        segment.close()
    except BufferError:  # pragma: no cover - result aliases the input
        pass


def decode_owned(encoded: ShmEncoded) -> Any:
    """Rebuild the payload as private copies and release the segment.

    The coordinator-side result path: copies the arrays out so the
    segment can be unlinked immediately regardless of how long the
    caller keeps the result.
    """
    if encoded.segment_name is None:
        return encoded.structure
    segment = attach_segment(encoded.segment_name)
    try:
        arrays = [
            np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            ).copy()
            for dtype, shape, offset in encoded.arrays
        ]
        return _walk_decode(encoded.structure, arrays, None)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already released
            pass


def release_payload(encoded: ShmEncoded) -> None:
    """Unlink a message's segment without decoding it (error paths)."""
    if encoded.segment_name is None:
        return
    try:
        segment = attach_segment(encoded.segment_name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()
