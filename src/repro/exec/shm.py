"""Shared-memory columnar transport for the process backend.

A task payload is an arbitrary picklable structure (nested tuples,
lists, dicts) whose numpy-array leaves — the columnar-native data
layer's columns — would be expensive to push through a queue's pickle
stream. With the ``shm`` transport every array leaf of one message is
packed into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and
replaced by an index marker; the receiver re-attaches the segment and
rebuilds zero-copy views.

Row lists (lists of Python tuples) get the same treatment when they are
*uniform all-integer* blocks: a list of ≥ 32 same-arity int tuples
packs into one 2-D ``int64`` array riding the segment, marked by
:class:`_RowsRef` so the receiver rebuilds the exact tuple list. Mixed,
ragged, non-integer, or tiny lists keep travelling through the queue's
batched pickle — the fallback contract of the kernels, gated by
``REPRO_SHM_ROWS`` (:func:`repro.exec.config.shm_rows_enabled`).

Segment lifecycle: the *sender* creates the segment and disowns it from
its resource tracker (:func:`disown_segment`), because the duty to
unlink transfers to the peer; the *receiver* attaches without claiming
tracker ownership (:func:`attach_segment`), decodes, and either unlinks
after reading (worker side) or copies the arrays out and unlinks
immediately (coordinator side).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

__all__ = [
    "ShmEncoded",
    "attach_segment",
    "decode_for_read",
    "decode_owned",
    "disown_segment",
    "encode_payload",
    "finish_read",
    "release_payload",
]


@dataclass(frozen=True)
class _ArrayRef:
    """Marker standing in for the ``index``-th packed array of a message."""

    index: int


@dataclass(frozen=True)
class _RowsRef:
    """Marker for a tuple list packed as the ``index``-th (2-D) array."""

    index: int


# Below this the fixed per-message segment cost outweighs the pickle
# saving; the threshold only trades speed, never correctness.
_MIN_ROW_BLOCK = 32


def _pack_rows(obj: list[Any]) -> np.ndarray | None:
    """The 2-D ``int64`` block for a uniform all-int tuple list, or None.

    The first row acts as a cheap pre-filter (tuples of built-in ints
    only — ``bool`` is excluded because ``True`` must round-trip as
    ``True``, not ``1``); the array conversion then validates the rest:
    ragged lists raise, mixed or float or oversized values produce a
    non-``int`` dtype, and both cases fall back to pickle.
    """
    if len(obj) < _MIN_ROW_BLOCK or type(obj[0]) is not tuple:
        return None
    first = obj[0]
    if not first:
        return None
    for value in first:
        if type(value) is not int:
            return None
    try:
        block = np.asarray(obj)
    except (ValueError, TypeError, OverflowError):
        return None
    if block.ndim != 2 or block.shape[1] != len(first) or block.dtype.kind != "i":
        return None
    return block


@dataclass
class ShmEncoded:
    """One encoded message: the structure plus its array segment (if any)."""

    structure: Any
    segment_name: str | None
    # (dtype string, shape, byte offset) per packed array, index-aligned.
    arrays: list[tuple[str, tuple[int, ...], int]]
    nbytes: int  # total array bytes carried via shared memory


# Python 3.13 made attach-side tracking explicit (track=); before that,
# only the *creator* registers with the resource tracker, so attachers
# must not unregister (the creator already disowned — a second
# unregister makes the tracker log KeyError tracebacks).
_ATTACH_TRACKS = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def disown_segment(segment: shared_memory.SharedMemory) -> None:
    """Drop a created segment from this process's resource tracker.

    Ownership (the duty to unlink) is being transferred to the peer;
    without this the tracker of the creating process would unlink the
    name again at exit and log a spurious leak warning.
    """
    try:  # pragma: no cover - tracker internals vary across 3.x
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming tracker ownership."""
    if _ATTACH_TRACKS:  # pragma: no cover - 3.13+
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def _walk_encode(obj: Any, sink: list[np.ndarray], pack_rows: bool) -> Any:
    if isinstance(obj, np.ndarray):
        sink.append(obj)
        return _ArrayRef(len(sink) - 1)
    if isinstance(obj, tuple):
        return tuple(_walk_encode(item, sink, pack_rows) for item in obj)
    if isinstance(obj, list):
        if pack_rows:
            block = _pack_rows(obj)
            if block is not None:
                sink.append(block)
                return _RowsRef(len(sink) - 1)
        return [_walk_encode(item, sink, pack_rows) for item in obj]
    if isinstance(obj, dict):
        return {
            key: _walk_encode(value, sink, pack_rows)
            for key, value in obj.items()
        }
    return obj


def _walk_decode(obj: Any, arrays: list[np.ndarray]) -> Any:
    if isinstance(obj, _ArrayRef):
        return arrays[obj.index]
    if isinstance(obj, _RowsRef):
        # .tolist() yields built-in ints, so the rebuilt tuples are
        # byte-identical to what the sender packed.
        return [tuple(row) for row in arrays[obj.index].tolist()]
    if isinstance(obj, tuple):
        return tuple(_walk_decode(item, arrays) for item in obj)
    if isinstance(obj, list):
        return [_walk_decode(item, arrays) for item in obj]
    if isinstance(obj, dict):
        return {key: _walk_decode(value, arrays) for key, value in obj.items()}
    return obj


def encode_payload(
    payload: Any, transport: str, pack_rows: bool | None = None
) -> ShmEncoded:
    """Lift the array leaves of ``payload`` into one shared-memory segment.

    With ``transport="pickle"`` (or when there are no array bytes to
    move) the payload is passed through untouched and rides the queue's
    pickle stream whole. ``pack_rows`` controls the integer row-block
    packing; ``None`` resolves the ambient
    :func:`repro.exec.config.shm_rows_enabled` — workers receive the
    coordinator's resolved flag with the job instead, because a scoped
    ``use_shm_rows`` override never crosses the fork.
    """
    if transport != "shm":
        return ShmEncoded(payload, None, [], 0)
    if pack_rows is None:
        from repro.exec.config import shm_rows_enabled

        pack_rows = shm_rows_enabled()
    arrays: list[np.ndarray] = []
    structure = _walk_encode(payload, arrays, pack_rows)
    total = sum(a.nbytes for a in arrays)
    if total == 0:
        # Zero-length segments are invalid; metadata-only messages (and
        # all-empty columns) go through pickle regardless of transport.
        return ShmEncoded(payload, None, [], 0)
    segment = shared_memory.SharedMemory(create=True, size=total)
    disown_segment(segment)  # receiver copies/unlinks; see module doc
    meta: list[tuple[str, tuple[int, ...], int]] = []
    offset = 0
    for array in arrays:
        contiguous = np.ascontiguousarray(array)
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype,
            buffer=segment.buf, offset=offset,
        )
        view[...] = contiguous
        meta.append((contiguous.dtype.str, contiguous.shape, offset))
        offset += contiguous.nbytes
    name = segment.name
    segment.close()
    return ShmEncoded(structure, name, meta, total)


def decode_for_read(
    encoded: ShmEncoded,
) -> tuple[Any, shared_memory.SharedMemory | None]:
    """Rebuild the payload with zero-copy views into the segment.

    The worker-side read path: the returned segment handle must stay
    alive while the views are in use and be passed to
    :func:`finish_read` afterwards (the worker is the message's final
    consumer, so it also unlinks).
    """
    if encoded.segment_name is None:
        return encoded.structure, None
    segment = attach_segment(encoded.segment_name)
    arrays = [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        for dtype, shape, offset in encoded.arrays
    ]
    return _walk_decode(encoded.structure, arrays), segment


def finish_read(segment: shared_memory.SharedMemory | None) -> None:
    """Release a segment consumed by :func:`decode_for_read`.

    Unlinks the name (the memory itself is freed once the last mapping
    drops). Closing can legitimately fail with :class:`BufferError`
    when a task kept a view into its input alive in its result; the
    mapping then dies with the worker instead — unlink already ran, so
    nothing leaks past the process.
    """
    if segment is None:
        return
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already released
        pass
    try:
        segment.close()
    except BufferError:  # pragma: no cover - result aliases the input
        pass


def decode_owned(encoded: ShmEncoded) -> Any:
    """Rebuild the payload as private copies and release the segment.

    The coordinator-side result path: copies the arrays out so the
    segment can be unlinked immediately regardless of how long the
    caller keeps the result.
    """
    if encoded.segment_name is None:
        return encoded.structure
    segment = attach_segment(encoded.segment_name)
    try:
        arrays = [
            np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            ).copy()
            for dtype, shape, offset in encoded.arrays
        ]
        return _walk_decode(encoded.structure, arrays)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already released
            pass


def release_payload(encoded: ShmEncoded) -> None:
    """Unlink a message's segment without decoding it (error paths)."""
    if encoded.segment_name is None:
        return
    try:
        segment = attach_segment(encoded.segment_name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()
