"""Execution-backend selection (the ``repro.exec`` on/off gate).

Mirrors :mod:`repro.kernels.config`: the same three-layer priority
decides which backend runs the per-server local computation of a round.

1. :func:`use_backend` / :func:`set_backend` — an explicit in-process
   override (``Engine(backend=...)``, the selftest's ``--backend both``
   sweep, and the bench x4 harness use it);
2. the environment — ``REPRO_BACKEND`` names the backend (``inline`` or
   ``process``), ``REPRO_WORKERS`` the process-pool size and
   ``REPRO_TRANSPORT`` the cross-process buffer transport (``shm`` for
   :mod:`multiprocessing.shared_memory` columnar buffers, ``pickle``
   for plain queue pickling);
3. the defaults: ``inline`` (the historical single-process simulator,
   and what the test tier runs under), ``min(4, cpu_count)`` workers,
   ``shm`` transport.

This module is import-light on purpose (stdlib only): resolving a
*name* must not fork a worker pool — pools are created lazily by
:func:`repro.exec.base.get_backend` the first time a ``process`` cluster
actually maps work.

Like :mod:`repro.kernels.config`, the overrides live in
:class:`contextvars.ContextVar` slots so concurrent threads (the
:mod:`repro.service` workers) each see their own forcing; a thread that
never forces anything falls through to the environment defaults.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

BACKENDS = ("inline", "process")
TRANSPORTS = ("shm", "pickle")
PROTOCOLS = ("resident", "snapshot")

# Default budget for per-worker resident block caches (coordinator
# mirror + worker copy). Crossing it bumps the state epoch: the next
# dispatch tells the worker to drop everything and the coordinator
# re-ships blocks as they recur.
_DEFAULT_RESIDENT_MB = 128

_forced_backend: ContextVar[str | None] = ContextVar(
    "repro_backend_forced", default=None
)
_forced_workers: ContextVar[int | None] = ContextVar(
    "repro_workers_forced", default=None
)
_forced_transport: ContextVar[str | None] = ContextVar(
    "repro_transport_forced", default=None
)


def _validated_backend(name: str) -> str:
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; have {BACKENDS}")
    return name


def _validated_transport(name: str) -> str:
    name = name.strip().lower()
    if name not in TRANSPORTS:
        raise ValueError(f"unknown transport {name!r}; have {TRANSPORTS}")
    return name


def backend_name() -> str:
    """The backend clusters created right now inherit."""
    forced = _forced_backend.get()
    if forced is not None:
        return forced
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return _validated_backend(raw) if raw else "inline"


def worker_count() -> int:
    """Process-pool size for the ``process`` backend (≥ 1)."""
    forced = _forced_workers.get()
    if forced is not None:
        return forced
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        workers = int(raw)
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be at least 1, got {workers}")
        return workers
    return min(4, max(1, os.cpu_count() or 1))


def transport_name() -> str:
    """Cross-process buffer transport: ``shm`` or ``pickle``."""
    forced = _forced_transport.get()
    if forced is not None:
        return forced
    raw = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
    return _validated_transport(raw) if raw else "shm"


def shm_rows_enabled() -> bool:
    """Whether the shm transport also packs integer *row lists*.

    With the columnar-native data layer, uniform all-integer tuple lists
    are encodable as one 2-D ``int64`` block per list, so they ride the
    shared-memory segment instead of the queue's per-tuple pickle
    stream. ``REPRO_SHM_ROWS=off`` restores the pickle path (the A/B
    knob the transport-bytes benchmark measures against); the in-process
    override from :func:`use_shm_rows` wins over the environment.
    """
    forced = _forced_shm_rows.get()
    if forced is not None:
        return forced
    raw = os.environ.get("REPRO_SHM_ROWS", "").strip().lower()
    if raw in ("off", "0", "false", "no"):
        return False
    return True


_forced_shm_rows: ContextVar[bool | None] = ContextVar(
    "repro_shm_rows_forced", default=None
)

_forced_protocol: ContextVar[str | None] = ContextVar(
    "repro_protocol_forced", default=None
)


def _validated_protocol(name: str) -> str:
    name = name.strip().lower()
    if name not in PROTOCOLS:
        raise ValueError(f"unknown protocol {name!r}; have {PROTOCOLS}")
    return name


def protocol_name() -> str:
    """Dispatch protocol of the process backend: ``resident`` or ``snapshot``.

    ``resident`` (the default) keeps content-addressed payload blocks
    cached inside each worker between dispatches: a block whose bytes the
    worker already holds travels as a 16-byte token instead of being
    re-shipped, and the coordinator mirrors what each worker caches so
    the decision is made without any extra round-trip. ``snapshot``
    restores the PR 5 behavior — every dispatch re-ships the full
    payload — and is what the x9 benchmark measures against. Overridable
    per-scope via :func:`use_protocol`, ambiently via ``REPRO_PROTOCOL``.
    """
    forced = _forced_protocol.get()
    if forced is not None:
        return forced
    raw = os.environ.get("REPRO_PROTOCOL", "").strip().lower()
    return _validated_protocol(raw) if raw else "resident"


@contextmanager
def use_protocol(name: str | None) -> Iterator[None]:
    """Scoped override of :func:`protocol_name` (``None`` = no-op)."""
    if name is None:
        yield
        return
    token = _forced_protocol.set(_validated_protocol(name))
    try:
        yield
    finally:
        _forced_protocol.reset(token)


def resident_cache_bytes() -> int:
    """Per-worker resident-cache budget in bytes (``REPRO_RESIDENT_MB``).

    When the coordinator's mirror of a worker's cache would exceed this
    budget, the coordinator bumps the state epoch instead of evicting
    piecemeal: the worker drops its whole cache on the next dispatch and
    blocks are re-shipped as they recur. Coarse, but it keeps both sides
    trivially in agreement — there is no distributed LRU to drift.
    """
    raw = os.environ.get("REPRO_RESIDENT_MB", "").strip()
    if raw:
        megabytes = int(raw)
        if megabytes < 1:
            raise ValueError(f"REPRO_RESIDENT_MB must be at least 1, got {megabytes}")
        return megabytes * 1024 * 1024
    return _DEFAULT_RESIDENT_MB * 1024 * 1024


@contextmanager
def use_shm_rows(flag: bool | None) -> Iterator[None]:
    """Scoped override of :func:`shm_rows_enabled` (``None`` = no-op)."""
    if flag is None:
        yield
        return
    token = _forced_shm_rows.set(flag)
    try:
        yield
    finally:
        _forced_shm_rows.reset(token)


def set_backend(
    name: str | None,
    workers: int | None = None,
    transport: str | None = None,
) -> None:
    """Force the backend for this context (``None`` restores the env default).

    Like :func:`repro.kernels.config.set_kernels`, the forcing is scoped
    to the current :mod:`contextvars` context — process-wide for plain
    single-threaded programs, per-thread once threads are involved.
    """
    _forced_backend.set(_validated_backend(name) if name is not None else None)
    _forced_workers.set(workers)
    _forced_transport.set(
        _validated_transport(transport) if transport is not None else None
    )


@contextmanager
def use_backend(
    name: str | None,
    workers: int | None = None,
    transport: str | None = None,
) -> Iterator[None]:
    """Scoped override: run the block under the named backend.

    ``name=None`` is a no-op (keep the ambient setting) so callers can
    thread an optional flag straight through, mirroring
    :func:`repro.kernels.config.use_kernels`. ``workers``/``transport``
    only take effect together with an explicit ``name``.
    """
    if name is None:
        yield
        return
    backend_token = _forced_backend.set(_validated_backend(name))
    worker_token = _forced_workers.set(workers) if workers is not None else None
    transport_token = (
        _forced_transport.set(_validated_transport(transport))
        if transport is not None
        else None
    )
    try:
        yield
    finally:
        if transport_token is not None:
            _forced_transport.reset(transport_token)
        if worker_token is not None:
            _forced_workers.reset(worker_token)
        _forced_backend.reset(backend_token)
