"""Execution-backend selection (the ``repro.exec`` on/off gate).

Mirrors :mod:`repro.kernels.config`: the same three-layer priority
decides which backend runs the per-server local computation of a round.

1. :func:`use_backend` / :func:`set_backend` — an explicit in-process
   override (``Engine(backend=...)``, the selftest's ``--backend both``
   sweep, and the bench x4 harness use it);
2. the environment — ``REPRO_BACKEND`` names the backend (``inline`` or
   ``process``), ``REPRO_WORKERS`` the process-pool size and
   ``REPRO_TRANSPORT`` the cross-process buffer transport (``shm`` for
   :mod:`multiprocessing.shared_memory` columnar buffers, ``pickle``
   for plain queue pickling);
3. the defaults: ``inline`` (the historical single-process simulator,
   and what the test tier runs under), ``min(4, cpu_count)`` workers,
   ``shm`` transport.

This module is import-light on purpose (stdlib only): resolving a
*name* must not fork a worker pool — pools are created lazily by
:func:`repro.exec.base.get_backend` the first time a ``process`` cluster
actually maps work.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

BACKENDS = ("inline", "process")
TRANSPORTS = ("shm", "pickle")

_forced_backend: str | None = None
_forced_workers: int | None = None
_forced_transport: str | None = None


def _validated_backend(name: str) -> str:
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; have {BACKENDS}")
    return name


def _validated_transport(name: str) -> str:
    name = name.strip().lower()
    if name not in TRANSPORTS:
        raise ValueError(f"unknown transport {name!r}; have {TRANSPORTS}")
    return name


def backend_name() -> str:
    """The backend clusters created right now inherit."""
    if _forced_backend is not None:
        return _forced_backend
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return _validated_backend(raw) if raw else "inline"


def worker_count() -> int:
    """Process-pool size for the ``process`` backend (≥ 1)."""
    if _forced_workers is not None:
        return _forced_workers
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        workers = int(raw)
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be at least 1, got {workers}")
        return workers
    return min(4, max(1, os.cpu_count() or 1))


def transport_name() -> str:
    """Cross-process buffer transport: ``shm`` or ``pickle``."""
    if _forced_transport is not None:
        return _forced_transport
    raw = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
    return _validated_transport(raw) if raw else "shm"


def shm_rows_enabled() -> bool:
    """Whether the shm transport also packs integer *row lists*.

    With the columnar-native data layer, uniform all-integer tuple lists
    are encodable as one 2-D ``int64`` block per list, so they ride the
    shared-memory segment instead of the queue's per-tuple pickle
    stream. ``REPRO_SHM_ROWS=off`` restores the pickle path (the A/B
    knob the transport-bytes benchmark measures against); the in-process
    override from :func:`use_shm_rows` wins over the environment.
    """
    if _forced_shm_rows is not None:
        return _forced_shm_rows
    raw = os.environ.get("REPRO_SHM_ROWS", "").strip().lower()
    if raw in ("off", "0", "false", "no"):
        return False
    return True


_forced_shm_rows: bool | None = None


@contextmanager
def use_shm_rows(flag: bool | None) -> Iterator[None]:
    """Scoped override of :func:`shm_rows_enabled` (``None`` = no-op)."""
    global _forced_shm_rows
    previous = _forced_shm_rows
    if flag is not None:
        _forced_shm_rows = flag
    try:
        yield
    finally:
        _forced_shm_rows = previous


def set_backend(
    name: str | None,
    workers: int | None = None,
    transport: str | None = None,
) -> None:
    """Force the backend in-process (``None`` restores the env default)."""
    global _forced_backend, _forced_workers, _forced_transport
    _forced_backend = _validated_backend(name) if name is not None else None
    _forced_workers = workers
    _forced_transport = (
        _validated_transport(transport) if transport is not None else None
    )


@contextmanager
def use_backend(
    name: str | None,
    workers: int | None = None,
    transport: str | None = None,
) -> Iterator[None]:
    """Scoped override: run the block under the named backend.

    ``name=None`` is a no-op (keep the ambient setting) so callers can
    thread an optional flag straight through, mirroring
    :func:`repro.kernels.config.use_kernels`. ``workers``/``transport``
    only take effect together with an explicit ``name``.
    """
    global _forced_backend, _forced_workers, _forced_transport
    previous = (_forced_backend, _forced_workers, _forced_transport)
    if name is not None:
        _forced_backend = _validated_backend(name)
        if workers is not None:
            _forced_workers = workers
        if transport is not None:
            _forced_transport = _validated_transport(transport)
    try:
        yield
    finally:
        _forced_backend, _forced_workers, _forced_transport = previous
