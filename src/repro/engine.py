"""A small end-to-end facade: register relations, run queries.

Bundles the parser, the statistics/planner, and the algorithm menu into
the object a downstream user actually wants::

    from repro import Engine
    from repro.data import uniform_relation

    engine = Engine(p=16)
    engine.register(uniform_relation("R", ["x", "y"], 1000, 200, seed=1))
    engine.register(uniform_relation("S", ["y", "z"], 1000, 200, seed=2))
    result = engine.query("R(x, y), S(y, z)")
    print(result.output, result.plan, result.stats.summary())

The engine plans every query with :mod:`repro.planner` (two-way joins
get the broadcast/hash/skew/Cartesian decision; multiway queries get
GYM / HyperCube / SkewHC) and returns the output with the run's cost
statistics. Pass ``verify=True`` to cross-check the distributed result
against the single-node oracle (:mod:`repro.testing.oracle`); a
disagreement raises :class:`repro.errors.OracleMismatchError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.errors import OracleMismatchError, QueryError
from repro.exec.config import use_backend
from repro.kernels.config import use_kernels
from repro.mpc.stats import RunStats
from repro.planner.multiway import MultiwayPlan, execute_multiway_join
from repro.planner.optimizer import (
    STRATEGIES,
    ExplainResult,
    execute_strategy,
    plan_query,
)
from repro.planner.statistics import JoinStatistics, join_statistics
from repro.planner.two_way import TwoWayPlan, execute_two_way_join
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.testing.oracle import multiset_diff, oracle_join


@dataclass
class QueryResult:
    """Output, chosen plan, and cost of one engine query.

    ``align_cache_hits`` counts how many of this query's input-alignment
    lookups were served from the engine's memoized cache (see
    :meth:`Engine._align`) instead of re-deriving the projection.
    """

    output: Relation
    plan: TwoWayPlan | MultiwayPlan
    stats: RunStats
    align_cache_hits: int = 0
    # The optimizer's full decision record (strategy="classic" leaves it
    # None — the legacy per-family planners don't produce one).
    explain: ExplainResult | None = None

    @property
    def load(self) -> int:
        return self.stats.max_load

    @property
    def rounds(self) -> int:
        return self.stats.num_rounds


class Engine:
    """A registry of relations plus a planner-driven query runner."""

    # Alignment memo capacity; queries touch at most a handful of atoms,
    # so this bounds memory without ever evicting a live workload.
    _ALIGN_CACHE_SIZE = 128

    def __init__(
        self,
        p: int,
        seed: int = 0,
        kernels: bool | None = None,
        backend: str | None = None,
        align_with: "Engine | None" = None,
    ) -> None:
        if p <= 0:
            raise QueryError("the engine needs at least one server")
        self.p = p
        self.seed = seed
        # None: follow the ambient REPRO_KERNELS setting; True/False: force
        # the columnar kernels on/off for this engine's query executions.
        self.kernels = kernels
        # None: follow the ambient REPRO_BACKEND setting; "inline" or
        # "process": force the execution backend for this engine's queries.
        self.backend = backend
        self._relations: dict[str, Relation] = {}
        # ``align_with`` shares another engine's alignment memo instead of
        # creating a private one. The service's split path spins up one
        # throwaway engine per branch; without sharing, every branch
        # re-derives and separately stores a detached copy of each
        # *unsplit* input's alignment (k overlapping copies per split=k
        # query) and the hits land in counters nobody reads. Shared keys
        # stay safe because they carry relation identity + mutation token.
        self._align_owner: Engine = (
            align_with._align_owner if align_with is not None else self
        )
        if self._align_owner is self:
            # (atom variables, relation name, relation identity, schema
            # attributes, mutation token) -> aligned relation; LRU,
            # invalidated on the owner's register().
            self._align_cache: dict[tuple, Relation] = {}
            self._align_hits = 0
            # Guards _align_cache and _align_hits: concurrent queries (the
            # repro.service worker threads) share one engine, and an
            # unsynchronized LRU races on the pop/re-insert recency bump
            # (two threads can both observe a hit and the second pop raises
            # KeyError) and on the eviction scan. The lock covers only the
            # dict bookkeeping, never the projection work.
            self._align_lock = threading.Lock()

    # --------------------------------------------------------------- catalog

    def register(self, relation: Relation, name: str | None = None) -> None:
        """Add (or replace) a relation under ``name`` (default: its own)."""
        self._relations[name or relation.name] = relation
        # Cached alignments may reference the replaced relation's data.
        # Only the owning engine clears: a borrower (a service branch
        # engine registering its fragment bindings) must not wipe the
        # shared memo — identity+token keys already make stale hits
        # impossible, the clear is purely the owner's memory hygiene.
        if self._align_owner is self:
            with self._align_lock:
                self._align_cache.clear()

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(
                f"no relation {name!r} registered (have {sorted(self._relations)})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._relations)

    # --------------------------------------------------------------- queries

    def query(self, text_or_query: str | ConjunctiveQuery,
              out_estimate: int | None = None, verify: bool = False,
              strategy: str = "auto") -> QueryResult:
        """Plan and execute a conjunctive query over registered relations.

        ``strategy`` selects the planning path:

        - ``"auto"`` (the default): the cost-based optimizer
          (:mod:`repro.planner.optimizer`) prices every applicable
          strategy and runs the cheapest; the decision record is
          attached as :attr:`QueryResult.explain`;
        - an explicit strategy name (``"hash"``, ``"hypercube"``,
          ``"gym"``, ...): force that strategy through the same dispatch
          the optimizer uses — output is byte-identical to an ``"auto"``
          run that chose it;
        - ``"classic"``: the legacy per-family planners
          (:mod:`repro.planner.two_way` / :mod:`repro.planner.multiway`).

        With ``verify=True`` the distributed output is compared — as a
        multiset — against the trusted single-node oracle; a mismatch
        raises :class:`~repro.errors.OracleMismatchError` carrying the
        inspectable bag difference.
        """
        result = self._query(text_or_query, out_estimate, strategy)
        if verify:
            if isinstance(text_or_query, str):
                cq = parse_query(text_or_query)
            else:
                cq = text_or_query
            expected = self.oracle(cq)
            diff = multiset_diff(
                expected.rows_readonly(), result.output.rows_readonly()
            )
            if diff:
                raise OracleMismatchError(f"engine query {cq}", diff)
        return result

    def oracle(self, text_or_query: str | ConjunctiveQuery) -> Relation:
        """The trusted single-node answer (rows in query-variable order)."""
        if isinstance(text_or_query, str):
            cq = parse_query(text_or_query)
        else:
            cq = text_or_query
        bindings = {a.name: self.relation(a.name) for a in cq.atoms}
        return oracle_join(cq, bindings)

    def _query(self, text_or_query: str | ConjunctiveQuery,
               out_estimate: int | None = None,
               strategy: str = "auto") -> QueryResult:
        if isinstance(text_or_query, str):
            cq = parse_query(text_or_query)
        else:
            cq = text_or_query
        bindings = {a.name: self.relation(a.name) for a in cq.atoms}

        if strategy == "classic":
            return self._query_classic(cq, bindings, out_estimate)
        if strategy != "auto" and strategy not in STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r} (choose 'auto', 'classic', "
                f"or one of {', '.join(STRATEGIES)})"
            )

        owner = self._align_owner
        hits_before = owner._align_hits
        with use_kernels(self.kernels), use_backend(self.backend):
            aligned = {
                atom.name: self._align(cq, index, bindings[atom.name])
                for index, atom in enumerate(cq.atoms)
            }
            explain = plan_query(
                cq, aligned, self.p, out_estimate=out_estimate, seed=self.seed
            )
            executed = explain.chosen if strategy == "auto" else strategy
            output, stats = execute_strategy(
                cq, aligned, self.p, executed, seed=self.seed
            )
            plan = self._wrap_plan(cq, aligned, explain, executed)
            return QueryResult(
                output, plan, stats, owner._align_hits - hits_before, explain
            )

    def _wrap_plan(self, cq: ConjunctiveQuery, aligned: dict[str, Relation],
                   explain: ExplainResult, executed: str) -> TwoWayPlan | MultiwayPlan:
        """The legacy plan object for the strategy that actually ran."""
        candidate = explain.candidate(executed)
        predicted = candidate.predicted_load or 0.0
        if executed == "scan":
            rel = aligned[cq.atoms[0].name]
            return TwoWayPlan(
                "scan", predicted,
                JoinStatistics(len(rel), 0, (), len(rel), 0, 0),
            )
        if executed in ("broadcast", "hash", "skew", "cartesian"):
            left, right = (aligned[a.name] for a in cq.atoms)
            return TwoWayPlan(executed, predicted, join_statistics(left, right))
        return MultiwayPlan(
            executed,
            explain.acyclic,
            explain.tau_star,
            explain.statistics.skewed,
            explain.statistics.in_size,
            explain.statistics.out_estimate,
            predicted,
        )

    def _query_classic(self, cq: ConjunctiveQuery,
                       bindings: dict[str, Relation],
                       out_estimate: int | None = None) -> QueryResult:
        """The pre-optimizer planning path (two_way/multiway heuristics)."""
        owner = self._align_owner
        hits_before = owner._align_hits
        with use_kernels(self.kernels), use_backend(self.backend):
            if len(cq.atoms) == 2:
                left, right = (bindings[a.name] for a in cq.atoms)
                left, right = self._align(cq, 0, left), self._align(cq, 1, right)
                plan, run = execute_two_way_join(left, right, self.p, seed=self.seed)
                output = run.output.project(list(cq.variables), name="OUT")
                return QueryResult(
                    output, plan, run.stats, owner._align_hits - hits_before
                )

            if len(cq.atoms) == 1:
                atom = cq.atoms[0]
                rel = self._align(cq, 0, bindings[atom.name])
                plan = TwoWayPlan(
                    "scan",
                    0.0,
                    JoinStatistics(len(rel), 0, (), len(rel), 0, 0),
                )
                return QueryResult(
                    rel.project(list(cq.variables), name="OUT"),
                    plan,
                    RunStats(self.p),
                    owner._align_hits - hits_before,
                )

            plan, run = execute_multiway_join(
                cq, bindings, self.p, seed=self.seed, out_estimate=out_estimate
            )
            return QueryResult(run.output, plan, run.stats)

    def _align(self, cq: ConjunctiveQuery, index: int, rel: Relation) -> Relation:
        """The relation re-projected to its atom's variable order.

        Memoized per (atom variables, relation name/identity, schema
        fingerprint, **mutation token**): re-running the same query text
        over an unchanged catalog skips the projection entirely, while
        mutating a registered relation with ``add``/``extend`` between
        queries bumps its token and can never be served a stale
        alignment. Relations whose row list is aliased outside
        (:attr:`Relation.is_borrowed`) are not cached at all — in-place
        edits of such a list are invisible to the token. The cache is
        bounded LRU (:attr:`_ALIGN_CACHE_SIZE`), cleared by
        :meth:`register`, and thread-safe: lookups, the recency bump,
        insertion, and eviction all happen under :attr:`_align_lock`
        (single-threaded behaviour is unchanged — the lock is uncontended
        there), so concurrent queries through one engine can never
        double-pop a hit or race the eviction scan.
        """
        atom = cq.atoms[index]
        if set(rel.schema.attributes) != set(atom.variables):
            raise QueryError(
                f"relation {rel.name} attributes {rel.schema.attributes} do not "
                f"match atom {atom}"
            )
        key = (
            atom.variables,
            rel.name,
            id(rel),
            tuple(rel.schema.attributes),
            rel.mutation_token(),
        )
        owner = self._align_owner
        with owner._align_lock:
            cached = owner._align_cache.get(key)
            if cached is not None:
                owner._align_hits += 1
                # Refresh LRU recency.
                owner._align_cache.pop(key)
                owner._align_cache[key] = cached
                return cached
        cacheable = not rel.is_borrowed
        if rel.schema.attributes != atom.variables:
            rel = rel.project(list(atom.variables))
        if not cacheable:
            return rel
        with owner._align_lock:
            if len(owner._align_cache) >= self._ALIGN_CACHE_SIZE:
                owner._align_cache.pop(next(iter(owner._align_cache)))
            owner._align_cache[key] = rel
        return rel
