"""Vectorized splitter search for range partitioning (PSRS).

``bucket_of`` is ``bisect_left``: the bucket of a key is the number of
splitters strictly below it. For integer keys that is one
``np.searchsorted``; for the (key, tie-break) integer pairs the sort
algorithms use, a short loop over the ``p - 1`` splitters evaluates the
lexicographic comparison vectorized over all n items — O(n·p) numpy ops,
which beats n Python-level bisects for the p ≪ n regime PSRS targets.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.kernels.columnar import column_array, comparable_int64


def _as_int64_column(values: Sequence[Any]) -> np.ndarray | None:
    column = column_array(list(values))
    return None if column is None else comparable_int64(column)


def searchsorted_buckets(
    keys: Sequence[Any], splitters: Sequence[Any]
) -> np.ndarray | None:
    """``bisect_left(splitters, k)`` for scalar integer keys, vectorized."""
    key_col = _as_int64_column(keys)
    splitter_col = _as_int64_column(splitters)
    if key_col is None or splitter_col is None:
        return None
    return np.searchsorted(splitter_col, key_col, side="left")


def lexicographic_buckets(
    key_columns: Sequence[np.ndarray], splitters: Sequence[tuple]
) -> np.ndarray:
    """``bisect_left`` over tuple keys given as parallel ``int64`` columns.

    ``bucket[i] = |{s in splitters : s < key_i lexicographically}|``.
    """
    n = len(key_columns[0])
    buckets = np.zeros(n, dtype=np.int64)
    for splitter in splitters:
        below = np.zeros(n, dtype=bool)
        prefix_equal = np.ones(n, dtype=bool)
        for column, splitter_value in zip(key_columns, splitter):
            value = np.int64(splitter_value)
            below |= prefix_equal & (value < column)
            prefix_equal &= column == value
        buckets += below
    return buckets


def tuple_buckets(
    keys: Sequence[tuple], splitters: Sequence[tuple]
) -> np.ndarray | None:
    """``bisect_left(splitters, k)`` for integer-tuple keys, vectorized.

    ``None`` when keys/splitters are not uniform integer tuples (mixed
    arity or non-integer elements force the scalar bisect fallback).
    """
    if not keys:
        return np.empty(0, dtype=np.int64)
    arity = len(keys[0]) if isinstance(keys[0], tuple) else 0
    if arity == 0:
        return None
    if any(not isinstance(s, tuple) or len(s) != arity for s in splitters):
        return None
    columns = []
    for c in range(arity):
        column = _as_int64_column([k[c] for k in keys])
        if column is None:
            return None
        columns.append(column)
    for splitter in splitters:
        if any(isinstance(v, bool) or not isinstance(v, int) for v in splitter):
            return None
    return lexicographic_buckets(columns, splitters)
