"""The kernel on/off gate.

The vectorized columnar kernels are enabled by default and produce
byte-identical results to the pure-Python tuple paths, so the switch
exists for benchmarking the fallback and for differential testing, not
for correctness escape hatches. Three layers, highest priority first:

1. :func:`use_kernels` / :func:`set_kernels` — an explicit in-process
   override (the ``Engine(kernels=...)`` flag and the selftest use it);
2. the ``REPRO_KERNELS`` environment variable — ``off``/``0``/``false``/
   ``no`` disables the fast paths everywhere;
3. the default: enabled.

This module is import-light on purpose (stdlib only): the data layer
consults :func:`kernels_enabled` without pulling in numpy.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

_DISABLING = ("off", "0", "false", "no")

_forced: bool | None = None


def kernels_enabled() -> bool:
    """Whether the vectorized fast paths should be used right now."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_KERNELS", "").strip().lower() not in _DISABLING


def set_kernels(enabled: bool | None) -> None:
    """Force kernels on/off in-process (``None`` restores the env default)."""
    global _forced
    _forced = enabled


@contextmanager
def use_kernels(enabled: bool | None) -> Iterator[None]:
    """Scoped override: force kernels on/off inside the ``with`` block.

    ``None`` is a no-op (keep the ambient setting) so callers can thread
    an optional tri-state flag straight through.
    """
    global _forced
    previous = _forced
    if enabled is not None:
        _forced = enabled
    try:
        yield
    finally:
        _forced = previous
