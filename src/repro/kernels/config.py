"""The kernel on/off gate.

The vectorized columnar kernels are enabled by default and produce
byte-identical results to the pure-Python tuple paths, so the switch
exists for benchmarking the fallback and for differential testing, not
for correctness escape hatches. Three layers, highest priority first:

1. :func:`use_kernels` / :func:`set_kernels` — an explicit in-process
   override (the ``Engine(kernels=...)`` flag and the selftest use it);
2. the ``REPRO_KERNELS`` environment variable — ``off``/``0``/``false``/
   ``no`` disables the fast paths everywhere;
3. the default: enabled.

This module is import-light on purpose (stdlib only): the data layer
consults :func:`kernels_enabled` without pulling in numpy.

The override lives in a :class:`contextvars.ContextVar`, not a module
global: concurrent threads (the :mod:`repro.service` workers) each see
their own forcing, so one engine running ``kernels=False`` can never
flip the fast paths out from under a neighbour mid-query. A thread that
never forces anything falls through to the environment default, and
:mod:`repro.service` propagates the submitter's context into its worker
threads, so ambient forcing still crosses the queue boundary.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

_DISABLING = ("off", "0", "false", "no")

_forced: ContextVar[bool | None] = ContextVar("repro_kernels_forced", default=None)


def kernels_enabled() -> bool:
    """Whether the vectorized fast paths should be used right now."""
    forced = _forced.get()
    if forced is not None:
        return forced
    return os.environ.get("REPRO_KERNELS", "").strip().lower() not in _DISABLING


def set_kernels(enabled: bool | None) -> None:
    """Force kernels on/off for this context (``None`` restores the env default).

    The forcing is scoped to the current :mod:`contextvars` context —
    process-wide for plain single-threaded programs, per-thread once
    threads are involved.
    """
    _forced.set(enabled)


@contextmanager
def use_kernels(enabled: bool | None) -> Iterator[None]:
    """Scoped override: force kernels on/off inside the ``with`` block.

    ``None`` is a no-op (keep the ambient setting) so callers can thread
    an optional tri-state flag straight through.
    """
    if enabled is None:
        yield
        return
    token = _forced.set(enabled)
    try:
        yield
    finally:
        _forced.reset(token)
