"""Vectorized columnar kernels for the simulator's hot paths.

Numpy-backed twins of the pure-Python tuple code: splitmix64 hashing
over integer columns, one-pass radix/hash partitioning, columnar local
join/semijoin, and vectorized splitter search for PSRS. Every kernel is
*exactly* equivalent to the tuple path it replaces — same rows, same
order, same measured loads — and every dispatch site falls back to the
tuple code when a column is not integer-typed or when kernels are
disabled (``REPRO_KERNELS=off`` or :func:`set_kernels`).

Submodules import lazily (PEP 562) so ``repro.data.relation`` can depend
on :mod:`repro.kernels.config` without a cycle through ``repro.mpc``.
"""

from __future__ import annotations

from repro.kernels.config import kernels_enabled, set_kernels, use_kernels

__all__ = [
    "bucket_tuple_columns",
    "bucket_value_column",
    "column_array",
    "hash_destinations",
    "hash_tuple_columns",
    "hash_value_column",
    "join_indices",
    "join_rows_columnar",
    "kernels_enabled",
    "key_columns",
    "lexicographic_buckets",
    "partition_indices",
    "searchsorted_buckets",
    "semijoin_mask",
    "set_kernels",
    "splitmix64_array",
    "take_rows",
    "try_route",
    "try_route_grid",
    "tuple_buckets",
    "use_kernels",
]

_LAZY = {
    "bucket_tuple_columns": "repro.kernels.hashing",
    "bucket_value_column": "repro.kernels.hashing",
    "column_array": "repro.kernels.columnar",
    "hash_destinations": "repro.kernels.partition",
    "hash_tuple_columns": "repro.kernels.hashing",
    "hash_value_column": "repro.kernels.hashing",
    "join_indices": "repro.kernels.join",
    "join_rows_columnar": "repro.kernels.join",
    "key_columns": "repro.kernels.columnar",
    "lexicographic_buckets": "repro.kernels.splitters",
    "partition_indices": "repro.kernels.partition",
    "searchsorted_buckets": "repro.kernels.splitters",
    "semijoin_mask": "repro.kernels.join",
    "splitmix64_array": "repro.kernels.hashing",
    "take_rows": "repro.kernels.columnar",
    "try_route": "repro.kernels.partition",
    "try_route_grid": "repro.kernels.partition",
    "tuple_buckets": "repro.kernels.splitters",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
