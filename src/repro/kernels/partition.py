"""Radix/hash partitioning: per-destination row-index arrays in one pass.

The shuffle rounds of every algorithm reduce to the same shape — compute
a destination for each row, then move rows to per-destination buffers.
These kernels compute all destinations vectorized and hand each
destination one *batched* ``send_rows`` instead of a Python-level
``send`` per tuple. Per-destination row order matches the tuple path
exactly (stable partitioning of rows iterated in order), so fragments,
loads, and downstream outputs are byte-identical with kernels on or off.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from itertools import product
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.kernels.columnar import key_columns
from repro.kernels.config import kernels_enabled
from repro.kernels.hashing import bucket_tuple_columns, bucket_value_column
from repro.kernels.memo import count_hash_ops

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mpc.cluster import RoundContext
    from repro.mpc.hashing import HashFunction

Row = tuple[Any, ...]


def _shrink(destinations: np.ndarray, upper: int) -> np.ndarray:
    """Narrow a small-valued index array so the stable (radix) argsort
    scans 2 or 4 bytes per element instead of 8."""
    if upper <= 1 << 16:
        return destinations.astype(np.uint16)
    if upper <= 1 << 32:
        return destinations.astype(np.uint32)
    return destinations


def partition_indices(destinations: np.ndarray, buckets: int) -> list[np.ndarray]:
    """Row indices grouped by destination, preserving row order per group.

    One stable argsort + split; ``result[d]`` lists the positions of the
    rows bound for bucket ``d`` in their original order.
    """
    order = np.argsort(destinations, kind="stable")
    counts = np.bincount(destinations, minlength=buckets)
    return np.split(order, np.cumsum(counts[:-1]))


def hash_destinations(
    rows: Sequence[Row], key_idx: Sequence[int], h: "HashFunction"
) -> np.ndarray | None:
    """Vectorized ``[h(tuple(row[i] for i in key_idx)) for row in rows]``.

    ``None`` when any key column is not integer-typed (the caller then
    hashes tuple-at-a-time through the identical scalar spec).
    """
    columns = key_columns(rows, key_idx)
    if columns is None:
        return None
    return bucket_tuple_columns(columns, h.salt, h.buckets)


def try_route(
    rnd: "RoundContext",
    rows: Sequence[Row],
    key_idx: Sequence[int],
    h: "HashFunction",
    fragment: str,
    columns: Sequence[np.ndarray] | None = None,
) -> bool:
    """Route every row to ``h(key)`` in batched sends; ``False`` = fall back.

    Equivalent to ``rnd.send(h(tuple(row[i] for i in key_idx)), fragment,
    row)`` per row — same destinations, same per-destination order, same
    charged units. ``columns`` optionally supplies the precomputed key
    columns (e.g. a scatter side-car); the partitioned key columns are
    forwarded with each batch so receivers inherit the side-car.
    """
    if not kernels_enabled() or not rows:
        return not rows
    key_idx = tuple(key_idx)
    if columns is not None and all(len(c) == len(rows) for c in columns):
        cols = list(columns)
    else:
        cols = key_columns(rows, key_idx)
    if cols is None:
        return False
    count_hash_ops(rnd, len(rows))
    destinations = _shrink(bucket_tuple_columns(cols, h.salt, h.buckets), h.buckets)
    order = np.argsort(destinations, kind="stable")
    counts = np.bincount(destinations, minlength=h.buckets)
    order_list = order.tolist()
    reordered = [rows[i] for i in order_list]
    sorted_cols = [c[order] for c in cols]
    start = 0
    for dest, count in enumerate(counts.tolist()):
        if count:
            end = start + count
            rnd.send_rows(
                dest,
                fragment,
                reordered[start:end],
                key_idx,
                [c[start:end] for c in sorted_cols],
            )
            start = end
    return True


def try_route_grid(
    rnd: "RoundContext",
    rows: Sequence[Row],
    column_dims: Sequence[int],
    salts: Sequence[int],
    extents: Sequence[int],
    strides: Sequence[int],
    fragment: str,
    columns: Sequence[np.ndarray] | None = None,
) -> bool:
    """HyperCube replication: route rows to every grid cell they match.

    ``column_dims[c]`` is the grid dimension bound by row column ``c``
    (columns are hashed left to right, later columns overwriting earlier
    ones on a repeated dimension, as the scalar loop does); dimensions
    bound by no column are wildcards and enumerate their full extent.
    Equivalent to the per-row ``grid.matching(partial)`` loop.
    """
    if not kernels_enabled() or not rows:
        return not rows
    arity = len(column_dims)
    if columns is not None and all(len(c) == len(rows) for c in columns):
        cols = list(columns)
    else:
        cols = key_columns(rows, range(arity))
    if cols is None:
        return False

    dim_buckets: dict[int, np.ndarray] = {}
    for column, dim in zip(cols, column_dims):
        dim_buckets[dim] = bucket_value_column(column, salts[dim], extents[dim])
    count_hash_ops(rnd, len(rows) * len(dim_buckets))

    base = np.zeros(len(rows), dtype=np.int64)
    for dim, buckets in dim_buckets.items():
        base += buckets * strides[dim]

    free_dims = [d for d in range(len(extents)) if d not in dim_buckets]
    offsets = [
        sum(c * strides[d] for c, d in zip(combo, free_dims))
        for combo in product(*(range(extents[d]) for d in free_dims))
    ]
    grid_size = math.prod(int(e) for e in extents)
    base = _shrink(base, grid_size)
    order = np.argsort(base, kind="stable")
    counts = np.bincount(base, minlength=grid_size)
    reordered = [rows[i] for i in order.tolist()]
    sorted_cols = [c[order] for c in cols]
    key_idx = tuple(range(arity))
    start = 0
    for dest_base, count in enumerate(counts.tolist()):
        if count:
            end = start + count
            group = reordered[start:end]
            group_cols = [c[start:end] for c in sorted_cols]
            start = end
            for offset in offsets:
                rnd.send_rows(dest_base + offset, fragment, group, key_idx, group_cols)
    return True
