"""Columnar local hash join and semijoin.

Both kernels factorize key tuples into integer codes — exact equality,
no hash collisions: single-column keys use their values directly;
multi-column keys get per-column dense codes (one 1-d ``np.unique``
each) combined by mixed radix, re-densified if the radix product would
overflow. The codes feed fully vectorized match-index computation (join)
or membership masks (semijoin). Output rows reuse the original Python
tuples, so results are byte-identical to the dict/set based tuple code,
including row order: left rows in input order, matches per left row in
the right side's insertion order.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.kernels.columnar import comparable_int64, key_columns

Row = tuple[Any, ...]


def _code_columns(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    left_idx: Sequence[int],
    right_idx: Sequence[int],
    left_cols: Sequence[np.ndarray] | None = None,
    right_cols: Sequence[np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Joint key codes ``(left_codes, right_codes)``, or ``None``.

    Codes are injective over key tuples (equal code ⇔ equal key) but not
    necessarily dense — :func:`join_indices` only needs them sortable.

    ``left_cols``/``right_cols`` optionally supply the key columns
    (e.g. a shuffle's column side-car) so they need not be re-extracted.
    """
    if left_cols is None or any(len(c) != len(left_rows) for c in left_cols):
        left_cols = key_columns(left_rows, left_idx)
    if right_cols is None or any(len(c) != len(right_rows) for c in right_cols):
        right_cols = key_columns(right_rows, right_idx)
    if left_cols is None or right_cols is None:
        return None
    return code_key_columns(left_cols, right_cols)


def code_key_columns(
    left_cols: Sequence[np.ndarray],
    right_cols: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Joint key codes directly from already-extracted key columns.

    The pure core of :func:`_code_columns`, usable column-natively (no
    row lists involved). ``None`` when a ``uint64`` column exceeds the
    signed 64-bit range (value comparisons would collide).
    """
    n_left = len(left_cols[0]) if left_cols else 0
    stacked_cols = []
    for lcol, rcol in zip(left_cols, right_cols):
        lcol64 = comparable_int64(lcol)
        rcol64 = comparable_int64(rcol)
        if lcol64 is None or rcol64 is None:
            return None
        stacked_cols.append(np.concatenate([lcol64, rcol64]))
    if len(stacked_cols) == 1:
        codes = stacked_cols[0]  # values are their own (sparse) codes
    else:
        codes = None
        limit = 1
        for col in stacked_cols:
            _, inv = np.unique(col, return_inverse=True)
            inv = inv.reshape(-1).astype(np.int64, copy=False)
            k = int(inv[inv.argmax()]) + 1 if inv.size else 1
            if codes is None:
                codes, limit = inv, k
                continue
            if limit > (1 << 62) // k:  # re-densify before radix overflow
                _, codes = np.unique(codes, return_inverse=True)
                codes = codes.reshape(-1).astype(np.int64, copy=False)
                limit = int(codes[codes.argmax()]) + 1 if codes.size else 1
            codes = codes * k + inv
            limit *= k
    return codes[:n_left], codes[n_left:]


def join_indices(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Match pairs ``(left_pos, right_pos)`` in nested-loop output order.

    For each left row (in order), the positions of all right rows with
    an equal key, in right-row order — exactly the emission order of the
    dict-index tuple join.
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_pos = np.repeat(np.arange(len(left_codes)), counts)
    # Within each left row's block, walk the matching right run start..end.
    block_starts = np.repeat(starts, counts)
    block_offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_pos = order[block_starts + block_offsets]
    return left_pos, right_pos


def join_rows_columnar(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    left_idx: Sequence[int],
    right_idx: Sequence[int],
    right_payload: Sequence[int],
    left_cols: Sequence[np.ndarray] | None = None,
    right_cols: Sequence[np.ndarray] | None = None,
) -> list[Row] | None:
    """Columnar hash join; ``None`` when the key columns are not integer.

    Output rows are ``left_row + tuple(right_row[i] for i in
    right_payload)`` in the same order as the tuple-path join.
    """
    if not left_rows or not right_rows:
        return []
    coded = _code_columns(
        left_rows, right_rows, left_idx, right_idx, left_cols, right_cols
    )
    if coded is None:
        return None
    left_pos, right_pos = join_indices(*coded)
    if not len(left_pos):
        return []
    # Build payload tuples only for matched right rows (matches can be a
    # small fraction of the fragment when the join is selective).
    right_payload = list(right_payload)
    if len(right_payload) == 1:
        j = right_payload[0]
        payloads = [(right_rows[i][j],) for i in right_pos.tolist()]
    else:
        payloads = [
            tuple(right_rows[i][j] for j in right_payload)
            for i in right_pos.tolist()
        ]
    return [
        left_rows[i] + payload
        for i, payload in zip(left_pos.tolist(), payloads)
    ]


def semijoin_mask(
    rows: Sequence[Row],
    key_idx: Sequence[int],
    member_keys: Sequence[Row],
) -> np.ndarray | None:
    """Boolean mask of rows whose key tuple appears in ``member_keys``.

    ``member_keys`` are full key tuples (arity ``len(key_idx)``);
    ``None`` when either side resists integer columns.
    """
    if not rows:
        return np.empty(0, dtype=bool)
    if not member_keys:
        return np.zeros(len(rows), dtype=bool)
    coded = _code_columns(rows, member_keys, key_idx, range(len(key_idx)))
    if coded is None:
        return None
    row_codes, member_codes = coded
    return np.isin(row_codes, member_codes)
