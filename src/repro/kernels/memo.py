"""Mutation-token-keyed memoization across rounds of one query.

Multi-round algorithms (GYM's semijoin waves, the heavy/light reducer
protocol, SkewHC's residual stages, every branch of the service
splitter) re-hash and re-partition the *same unchanged relation* on
every round.  The MPC cost model charges nothing for that local work,
but the simulator pays it in wall time.  This module removes the
redundancy without changing a single observable byte:

- a **partition cache** maps ``(relation identity, mutation token, key
  columns, hash function, p)`` to the fully computed routing plan — the
  per-server, per-destination row groups and key-column chunks that
  :func:`repro.kernels.partition.try_route` would recompute — so a
  repeated scatter+route of an unchanged relation replays batched sends
  straight from the cache (:func:`route_scattered`, and
  :func:`route_scattered_grid` for HyperCube's replicated grid routes);
- a **view cache** (:func:`cached_view` and the :func:`project_view` /
  :func:`distinct_project` / :func:`key_degrees` / :func:`value_degrees`
  wrappers) memoizes derived read-only views — aligned projections,
  distinct key sets, degree counters — keyed the same way.

Invalidation mirrors PR 6's coherency contract exactly: every cache key
embeds the relation's monotonic mutation token, entries pin the relation
object (so ``id()`` cannot be recycled while an entry lives), and
*borrowed* relations — ones that handed out a mutable ``rows()`` list —
are never cached and never served.

Everything is gated on ``REPRO_MEMO`` (``off``/``0``/``false``/``no``
disables) with :func:`use_memo` / :func:`set_memo` scoped forcing, the
same three-layer design as :mod:`repro.kernels.config`.  With the memo
layer off every caller falls back to the original per-server loops;
`selftest` sweeps the kernels x backend x memo grid to prove the two
paths byte-identical.
"""

from __future__ import annotations

import math
import os
import threading
from collections import Counter, OrderedDict
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.kernels.config import kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.data.relation import Relation
    from repro.mpc.cluster import Cluster, RoundContext
    from repro.mpc.hashing import HashFunction

_DISABLING = ("off", "0", "false", "no")

_forced: ContextVar[bool | None] = ContextVar("repro_memo_forced", default=None)


def memo_enabled() -> bool:
    """Whether the memoization layer should be used right now."""
    forced = _forced.get()
    if forced is not None:
        return forced
    return os.environ.get("REPRO_MEMO", "").strip().lower() not in _DISABLING


def set_memo(enabled: bool | None) -> None:
    """Force the memo layer on/off for this context (``None`` = env default)."""
    _forced.set(enabled)


@contextmanager
def use_memo(enabled: bool | None) -> Iterator[None]:
    """Scoped override: force the memo layer on/off inside the block.

    ``None`` is a no-op (keep the ambient setting) so callers can thread
    an optional tri-state flag straight through.
    """
    if enabled is None:
        yield
        return
    token = _forced.set(enabled)
    try:
        yield
    finally:
        _forced.reset(token)


@dataclass
class MemoStats:
    """Memoization accounting, mergeable across runs.

    ``hash_ops`` counts rows x hashed-dimensions actually pushed through
    the bucket kernels (both with memo on and off, so on/off arms are
    directly comparable); ``hash_ops_saved`` counts the ops a partition
    cache hit skipped; ``bytes_saved`` the key-column chunk bytes a hit
    did not recompute.  ``fused_payloads`` counts HyperCube local
    evaluations fed column blocks directly instead of re-deriving them
    from tuples.
    """

    partition_hits: int = 0
    partition_misses: int = 0
    view_hits: int = 0
    view_misses: int = 0
    fused_payloads: int = 0
    hash_ops: int = 0
    hash_ops_saved: int = 0
    bytes_saved: int = 0

    # merged()/snapshot()/delta() walk this list, so a new counter cannot
    # be silently dropped from any of them.
    _COUNTERS = (
        "partition_hits", "partition_misses",
        "view_hits", "view_misses",
        "fused_payloads",
        "hash_ops", "hash_ops_saved", "bytes_saved",
    )

    @property
    def any_activity(self) -> bool:
        return any(getattr(self, name) for name in self._COUNTERS)

    @classmethod
    def merged(cls, parts: "list[MemoStats | None]") -> "MemoStats":
        total = cls()
        for part in parts:
            if part is None:
                continue
            for name in cls._COUNTERS:
                setattr(total, name, getattr(total, name) + getattr(part, name))
        return total

    def snapshot(self) -> "MemoStats":
        copied = MemoStats()
        for name in self._COUNTERS:
            setattr(copied, name, getattr(self, name))
        return copied

    def delta(self, since: "MemoStats") -> "MemoStats":
        diff = MemoStats()
        for name in self._COUNTERS:
            setattr(diff, name, getattr(self, name) - getattr(since, name))
        return diff

    def summary(self) -> str:
        """One-line counter summary (appended to trace()/summary())."""
        return (
            f"memo: partition {self.partition_hits}h/{self.partition_misses}m"
            f" views {self.view_hits}h/{self.view_misses}m"
            f" fused={self.fused_payloads}"
            f" hash_ops={self.hash_ops} saved={self.hash_ops_saved}"
            f" bytes_saved={self.bytes_saved}"
        )


#: Process-wide mirror of every per-run counter bump.  The bench harness
#: and the CI memo-engagement assertion snapshot/delta this to measure
#: activity across whole arms (including service runs whose per-cluster
#: stats are buried inside short-lived engines).
GLOBAL = MemoStats()


def _bump(stats: "MemoStats | None", name: str, amount: int = 1) -> None:
    if stats is not None:
        setattr(stats, name, getattr(stats, name) + amount)
    setattr(GLOBAL, name, getattr(GLOBAL, name) + amount)


def count_hash_ops(rnd: "RoundContext", ops: int) -> None:
    """Record bucket-kernel work done by try_route/try_route_grid.

    Charged identically with memo on or off so the bench's on/off
    hash-ops ratio compares like with like.
    """
    cluster = getattr(rnd, "_cluster", None)
    memo = getattr(getattr(cluster, "stats", None), "memo", None)
    _bump(memo, "hash_ops", ops)


# --------------------------------------------------------------------------
# Partition plan cache
# --------------------------------------------------------------------------


class _PlanEntry:
    """A cached whole-relation routing plan.

    ``plans[s]`` lists ``(dest, rows_group, key_chunks)`` for server
    ``s``'s fragment in destination order; replaying them in server
    order reproduces the per-server try_route sends byte for byte.
    ``rel`` is a strong reference: while the entry lives, ``id(rel)``
    cannot be recycled, so key collisions are impossible.
    """

    __slots__ = ("rel", "token", "plans", "offsets", "nbytes", "n", "hash_ops")

    def __init__(self, rel, token, plans, offsets, nbytes, n, hash_ops):
        self.rel = rel
        self.token = token
        self.plans = plans
        self.offsets = offsets
        self.nbytes = nbytes
        self.n = n
        self.hash_ops = hash_ops


_PLAN_CACHE_SIZE = 64
_plan_cache: "OrderedDict[tuple, _PlanEntry]" = OrderedDict()
_plan_lock = threading.Lock()

_VIEW_CACHE_SIZE = 256
_view_cache: "OrderedDict[tuple, Any]" = OrderedDict()
_view_lock = threading.Lock()


def clear_memo() -> None:
    """Drop every cached plan and view (tests and bench arm isolation)."""
    with _plan_lock:
        _plan_cache.clear()
    with _view_lock:
        _view_cache.clear()


def memo_cache_sizes() -> tuple[int, int]:
    """(partition entries, view entries) currently cached."""
    with _plan_lock:
        plans = len(_plan_cache)
    with _view_lock:
        views = len(_view_cache)
    return plans, views


def _plan_get(key: tuple, rel: "Relation", token: int) -> "_PlanEntry | None":
    with _plan_lock:
        entry = _plan_cache.get(key)
        if entry is None:
            return None
        if entry.rel is not rel or entry.token != token:
            del _plan_cache[key]
            return None
        _plan_cache.move_to_end(key)
        return entry


def _plan_put(key: tuple, entry: "_PlanEntry") -> None:
    with _plan_lock:
        _plan_cache[key] = entry
        _plan_cache.move_to_end(key)
        while len(_plan_cache) > _PLAN_CACHE_SIZE:
            _plan_cache.popitem(last=False)


def _freeze(chunk: np.ndarray) -> np.ndarray:
    # Cached chunks are delivered (possibly repeatedly) as the column
    # side-car; freezing them keeps a receiver from mutating the cache.
    chunk.flags.writeable = False
    return chunk


def _build_scatter_plans(
    rel: "Relation", key_idx: tuple[int, ...], h: "HashFunction", p: int
):
    """The whole-relation twin of per-server try_route.

    For fragment ``rows[s::p]`` every elementwise hash commutes with the
    slice, so hashing the full columns once and replaying per-server
    index arithmetic reproduces each server's destinations, stable
    order, and key-column chunks exactly.
    """
    from repro.kernels.hashing import bucket_tuple_columns
    from repro.kernels.partition import _shrink

    cols_all = rel.columns()
    if cols_all is None:
        return None
    rows_all = rel.rows_readonly()
    n = len(rows_all)
    key_cols = [cols_all[i] for i in key_idx]
    codes = _shrink(bucket_tuple_columns(key_cols, h.salt, h.buckets), h.buckets)
    plans = []
    nbytes = 0
    for s in range(p):
        idx = np.arange(s, n, p)
        sub = codes[idx]
        order = np.argsort(sub, kind="stable")
        counts = np.bincount(sub, minlength=h.buckets)
        positions = idx[order].tolist()
        sorted_cols = [_freeze(c[idx][order]) for c in key_cols]
        nbytes += sum(int(c.nbytes) for c in sorted_cols)
        groups = []
        start = 0
        for dest, count in enumerate(counts.tolist()):
            if count:
                end = start + count
                groups.append((
                    dest,
                    [rows_all[i] for i in positions[start:end]],
                    [c[start:end] for c in sorted_cols],
                ))
                start = end
        plans.append(groups)
    return plans, nbytes, n


def _build_grid_plans(
    rel: "Relation",
    column_dims: tuple[int, ...],
    salts: tuple[int, ...],
    extents: tuple[int, ...],
    strides: tuple[int, ...],
    p: int,
):
    """Whole-relation twin of per-server try_route_grid."""
    from repro.kernels.hashing import bucket_value_column
    from repro.kernels.partition import _shrink

    cols_all = rel.columns()
    if cols_all is None:
        return None
    rows_all = rel.rows_readonly()
    n = len(rows_all)

    dim_buckets: dict[int, np.ndarray] = {}
    for column, dim in zip(cols_all, column_dims):
        dim_buckets[dim] = bucket_value_column(column, salts[dim], extents[dim])
    base = np.zeros(n, dtype=np.int64)
    for dim, buckets in dim_buckets.items():
        base += buckets * strides[dim]
    from itertools import product

    free_dims = [d for d in range(len(extents)) if d not in dim_buckets]
    offsets = [
        sum(c * strides[d] for c, d in zip(combo, free_dims))
        for combo in product(*(range(extents[d]) for d in free_dims))
    ]
    grid_size = math.prod(int(e) for e in extents)
    base = _shrink(base, grid_size)

    plans = []
    nbytes = 0
    for s in range(p):
        idx = np.arange(s, n, p)
        sub = base[idx]
        order = np.argsort(sub, kind="stable")
        counts = np.bincount(sub, minlength=grid_size)
        positions = idx[order].tolist()
        sorted_cols = [_freeze(c[idx][order]) for c in cols_all]
        nbytes += sum(int(c.nbytes) for c in sorted_cols)
        groups = []
        start = 0
        for dest_base, count in enumerate(counts.tolist()):
            if count:
                end = start + count
                groups.append((
                    dest_base,
                    [rows_all[i] for i in positions[start:end]],
                    [c[start:end] for c in sorted_cols],
                ))
                start = end
        plans.append(groups)
    hash_ops = n * len(dim_buckets)
    return plans, offsets, nbytes, n, hash_ops


def _replay_eligible(
    cluster: "Cluster", rel: "Relation", fragment: str
) -> bool:
    """Whether a cached plan may stand in for the per-server route.

    The scatter-provenance map proves the fragment currently holds
    exactly ``rel[s::p]`` at the relation's current token; fault mode is
    excluded because the fault controller hooks individual scatter/send
    chunks that a replay would batch differently.
    """
    if not (memo_enabled() and kernels_enabled()):
        return False
    if getattr(cluster, "fault_controller", None) is not None:
        return False
    if rel.is_borrowed:
        return False
    origin = cluster._scatter_origin.get(fragment)
    if origin is None:
        return False
    origin_rel, origin_token = origin
    if origin_rel is not rel or origin_token != rel.mutation_token():
        return False
    n = len(rel)
    p = cluster.p
    for s, server in enumerate(cluster.servers):
        if len(server.get(fragment)) != len(range(s, n, p)):
            return False
    return True


def _consume_fragment(cluster: "Cluster", fragment: str) -> None:
    # Matches the take_with_columns the per-server loop would have done
    # (take also drops any column side-car).
    for server in cluster.servers:
        server.take(fragment)


def count_fused(stats: "MemoStats | None", amount: int = 1) -> None:
    """Record fused scatter→join payloads (columns fed straight to eval)."""
    _bump(stats, "fused_payloads", amount)


def route_scattered(
    cluster: "Cluster",
    rnd: "RoundContext",
    rel: "Relation",
    fragment: str,
    key_idx: Sequence[int],
    h: "HashFunction",
    out_fragment: str,
) -> bool:
    """Route a scattered, unchanged relation from the partition cache.

    Replays (or computes once and caches) the batched sends the
    per-server ``take_with_columns`` + ``try_route`` loop would issue for
    ``fragment`` — byte-identical destinations, order, charged units,
    and key-column side-cars.  Returns ``False`` when ineligible (memo
    off, faults active, relation mutated/borrowed, fragment tampered
    with, or non-integer key columns); the caller then falls back to the
    ordinary loop.
    """
    if not _replay_eligible(cluster, rel, fragment):
        return False
    key_idx = tuple(key_idx)
    token = rel.mutation_token()
    key = (id(rel), token, "scatter", key_idx, h.salt, h.buckets, cluster.p)
    stats = cluster.stats.memo
    entry = _plan_get(key, rel, token)
    if entry is None:
        built = _build_scatter_plans(rel, key_idx, h, cluster.p)
        if built is None:
            return False
        plans, nbytes, n = built
        entry = _PlanEntry(rel, token, plans, None, nbytes, n, n)
        _plan_put(key, entry)
        _bump(stats, "partition_misses")
        _bump(stats, "hash_ops", entry.hash_ops)
    else:
        _bump(stats, "partition_hits")
        _bump(stats, "hash_ops_saved", entry.hash_ops)
        _bump(stats, "bytes_saved", entry.nbytes)
    _consume_fragment(cluster, fragment)
    for groups in entry.plans:
        for dest, rows_group, chunks in groups:
            rnd.send_rows(dest, out_fragment, rows_group, key_idx, chunks)
    return True


def route_scattered_grid(
    cluster: "Cluster",
    rnd: "RoundContext",
    rel: "Relation",
    fragment: str,
    column_dims: Sequence[int],
    salts: Sequence[int],
    extents: Sequence[int],
    strides: Sequence[int],
    out_fragment: str,
) -> bool:
    """Grid (HyperCube) twin of :func:`route_scattered`."""
    if not _replay_eligible(cluster, rel, fragment):
        return False
    column_dims = tuple(column_dims)
    salts = tuple(salts)
    extents = tuple(extents)
    strides = tuple(strides)
    token = rel.mutation_token()
    key = (id(rel), token, "grid", column_dims, salts, extents, strides, cluster.p)
    stats = cluster.stats.memo
    entry = _plan_get(key, rel, token)
    if entry is None:
        built = _build_grid_plans(rel, column_dims, salts, extents, strides, cluster.p)
        if built is None:
            return False
        plans, offsets, nbytes, n, hash_ops = built
        entry = _PlanEntry(rel, token, plans, offsets, nbytes, n, hash_ops)
        _plan_put(key, entry)
        _bump(stats, "partition_misses")
        _bump(stats, "hash_ops", entry.hash_ops)
    else:
        _bump(stats, "partition_hits")
        _bump(stats, "hash_ops_saved", entry.hash_ops)
        _bump(stats, "bytes_saved", entry.nbytes)
    _consume_fragment(cluster, fragment)
    key_idx = tuple(range(len(column_dims)))
    for groups in entry.plans:
        for dest_base, rows_group, chunks in groups:
            for offset in entry.offsets:
                rnd.send_rows(
                    dest_base + offset, out_fragment, rows_group, key_idx, chunks
                )
    return True


# --------------------------------------------------------------------------
# Derived-view cache
# --------------------------------------------------------------------------


def cached_view(
    rel: "Relation",
    key_extra: tuple,
    build: Callable[[], Any],
    stats: "MemoStats | None" = None,
) -> Any:
    """Memoize a derived read-only view of an unchanged relation.

    The cached value is shared between callers — it must never be
    mutated (every wrapper below returns either an immutable Counter
    snapshot consumer or a Relation used read-only).  Borrowed relations
    and disabled memo fall straight through to ``build()``.
    """
    if not memo_enabled() or rel.is_borrowed:
        return build()
    token = rel.mutation_token()
    key = (id(rel), token, *key_extra)
    with _view_lock:
        if key in _view_cache:
            _view_cache.move_to_end(key)
            value, pinned = _view_cache[key]
            if pinned is rel:
                _bump(stats, "view_hits")
                return value
            del _view_cache[key]
    value = build()
    _bump(stats, "view_misses")
    with _view_lock:
        _view_cache[key] = (value, rel)
        _view_cache.move_to_end(key)
        while len(_view_cache) > _VIEW_CACHE_SIZE:
            _view_cache.popitem(last=False)
    return value


def project_view(
    rel: "Relation",
    attributes: Sequence[str],
    name: str | None = None,
    stats: "MemoStats | None" = None,
) -> "Relation":
    """Memoized ``rel.project(list(attributes), name=name)``."""
    attributes = tuple(attributes)
    return cached_view(
        rel,
        ("project", attributes, name),
        lambda: rel.project(list(attributes), name=name) if name is not None
        else rel.project(list(attributes)),
        stats,
    )


def distinct_project(
    rel: "Relation",
    attributes: Sequence[str],
    stats: "MemoStats | None" = None,
) -> "Relation":
    """Memoized ``rel.project(list(attributes)).distinct()``."""
    attributes = tuple(attributes)
    return cached_view(
        rel,
        ("distinct", attributes),
        lambda: rel.project(list(attributes)).distinct(),
        stats,
    )


def key_degrees(
    rel: "Relation",
    key_idx: Sequence[int],
    stats: "MemoStats | None" = None,
) -> Counter:
    """Memoized ``Counter(tuple(row[i] for i in key_idx) for row in rel)``.

    Columnar fast path when the key columns are integer-typed; falls
    back to the tuple loop otherwise.  The Counter is shared — read only.
    """
    key_idx = tuple(key_idx)

    def build() -> Counter:
        cols = rel.columns()
        if cols is not None:
            return Counter(zip(*[cols[i].tolist() for i in key_idx]))
        return Counter(tuple(row[i] for i in key_idx) for row in rel.rows_readonly())

    return cached_view(rel, ("degrees", key_idx), build, stats)


def value_degrees(
    rel: "Relation",
    attribute: str,
    stats: "MemoStats | None" = None,
) -> Counter:
    """Memoized ``rel.degrees(attribute)`` (shared Counter — read only)."""
    return cached_view(rel, ("value_degrees", attribute), lambda: rel.degrees(attribute), stats)
