"""Row-list ⇄ column-array conversion with strict type gating.

The columnar fast paths only apply when a column is *losslessly*
representable as a 64-bit integer array. Anything else — floats (numpy
would silently truncate), strings, ``None``, nested tuples, ints outside
64-bit range — returns ``None`` so the caller falls back to the exact
tuple code. Booleans are accepted and widened, mirroring the scalar hash
spec's ``bool -> int`` normalization (and Python's ``True == 1`` key
semantics in dict-based joins).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

Row = tuple[Any, ...]

_INT64_MAX = np.iinfo(np.int64).max


def column_array(values: Sequence[Any]) -> np.ndarray | None:
    """The values as a 1-D integer array, or ``None`` if types forbid it.

    ``np.asarray`` does the C-speed type sniffing: a list with any
    non-integer member comes back with a non-integer dtype (or raises on
    ragged input) and is rejected.
    """
    if not isinstance(values, list):
        values = list(values)
    if not values:
        return np.empty(0, dtype=np.int64)
    try:
        arr = np.asarray(values)
    except (ValueError, OverflowError):
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "biu":
        return None
    return arr


def key_columns(rows: Sequence[Row], key_idx: Sequence[int]) -> list[np.ndarray] | None:
    """One integer array per key position, or ``None`` when any fails."""
    columns = []
    for i in key_idx:
        column = column_array([row[i] for row in rows])
        if column is None:
            return None
        columns.append(column)
    return columns


def comparable_int64(column: np.ndarray) -> np.ndarray | None:
    """The column as ``int64`` preserving value-comparison semantics.

    Used by the join/semijoin/splitter kernels, which compare key values
    rather than hash them: ``uint64`` values above ``int64`` range cannot
    be represented and force the fallback (reinterpreting them would
    collide with negative keys).
    """
    if column.dtype.kind == "u":
        if len(column) and int(column.max()) > _INT64_MAX:
            return None
        return column.astype(np.int64)
    return column.astype(np.int64, copy=False)


def take_rows(rows: Sequence[Row], indices: np.ndarray) -> list[Row]:
    """The subset of rows at ``indices``, in index order."""
    return [rows[i] for i in indices.tolist()]
