"""Vectorized splitmix64 hashing over integer columns.

Bit-for-bit twins of the scalar spec in :mod:`repro.mpc.hashing`:

- :func:`splitmix64_array` ≡ ``splitmix64`` applied elementwise;
- :func:`hash_value_column` ≡ the scalar-integer path of ``_hash_value``;
- :func:`hash_tuple_columns` ≡ :func:`repro.mpc.hashing.hash_int_tuple`
  applied to every row of a set of key columns.

All arithmetic runs on ``uint64`` with wraparound, matching the
``& _MASK64`` masking of the Python reference — the golden tests in
``tests/kernels/test_hash_golden.py`` pin this equivalence on a fixed
probe set so a numpy overflow-semantics change cannot slip through.
Non-integer values have no vectorized path (the blake2b fallback stays
scalar); callers detect that via :mod:`repro.kernels.columnar` and fall
back to the tuple code.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.mpc.hashing import _MASK64, _TUPLE_TAG, splitmix64

_ADD = np.uint64(0x9E3779B97F4A7C15)
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)


def as_uint64(column: np.ndarray) -> np.ndarray:
    """An integer column reinterpreted as ``v & _MASK64`` (two's complement)."""
    if column.dtype == np.uint64:
        return column
    if column.dtype.kind == "i":
        return column.astype(np.int64, copy=False).view(np.uint64)
    # bool / smaller unsigned types widen without reinterpretation.
    return column.astype(np.uint64)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Elementwise splitmix64 of a ``uint64`` array (wraparound semantics)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += _ADD
        x ^= x >> _SHIFT30
        x *= _MUL1
        x ^= x >> _SHIFT27
        x *= _MUL2
        x ^= x >> _SHIFT31
    return x


def hash_value_column(column: np.ndarray, salt: int) -> np.ndarray:
    """Vectorized scalar-integer hash: ``splitmix64((v & M) ^ splitmix64(salt))``."""
    salted = np.uint64(splitmix64(salt))
    return splitmix64_array(as_uint64(column) ^ salted)


def hash_tuple_columns(columns: Sequence[np.ndarray], salt: int) -> np.ndarray:
    """Vectorized tuple chain over parallel key columns.

    ``columns[c][i]`` is element ``c`` of row ``i``'s key tuple; the
    result row-hashes match ``hash_int_tuple(tuple(row), salt)``.
    """
    if not columns:
        raise ValueError("hash_tuple_columns needs at least one column")
    n = len(columns[0])
    seed = splitmix64((salt ^ _TUPLE_TAG ^ len(columns)) & _MASK64)
    acc = np.full(n, seed, dtype=np.uint64)
    for column in columns:
        acc = splitmix64_array(as_uint64(column) ^ acc)
    return acc


def bucket_tuple_columns(
    columns: Sequence[np.ndarray], salt: int, buckets: int
) -> np.ndarray:
    """Per-row destination buckets of hashed key tuples (``int64``)."""
    return (hash_tuple_columns(columns, salt) % np.uint64(buckets)).astype(np.int64)


def bucket_value_column(column: np.ndarray, salt: int, buckets: int) -> np.ndarray:
    """Per-row destination buckets of hashed scalar values (``int64``)."""
    return (hash_value_column(column, salt) % np.uint64(buckets)).astype(np.int64)
