"""In-memory relations: a named schema plus a tuple store.

The MPC model of the tutorial counts communication in *tuples*, so the
canonical representation here is a list of plain Python tuples. The class
offers the small relational-algebra surface the parallel algorithms need:
projection, selection, renaming, key extraction, degree (frequency)
statistics, and exact local joins for verifying distributed results.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.data.schema import Schema
from repro.errors import SchemaError
from repro.kernels.columnar import key_columns
from repro.kernels.config import kernels_enabled
from repro.kernels.join import join_rows_columnar, semijoin_mask

Row = tuple[Any, ...]


class Relation:
    """A named relation: schema + bag of tuples (duplicates allowed).

    >>> r = Relation("R", ["x", "y"], [(1, 2), (1, 3)])
    >>> len(r)
    2
    >>> r.project(["x"]).rows()
    [(1,), (1,)]
    """

    __slots__ = ("name", "schema", "_rows", "_columns")

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[str],
        rows: Iterable[Row] = (),
    ) -> None:
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._columns: tuple[int, list | None] | None = None
        self._rows: list[Row] = []
        arity = self.schema.arity
        for row in rows:
            t = tuple(row)
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, schema {self.name} expects {arity}"
                )
            self._rows.append(t)

    # ------------------------------------------------------------------ basic

    def rows(self) -> list[Row]:
        """The tuple store (the live list; callers must not mutate it)."""
        return self._rows

    @classmethod
    def wrap(
        cls, name: str, schema: Schema | Sequence[str], rows: list[Row]
    ) -> "Relation":
        """Adopt ``rows`` as the tuple store without copying.

        The caller hands over ownership of the list (and guarantees the
        rows are tuples of the right arity) — the fast-path constructor
        for internal code assembling row lists itself.
        """
        out = cls(name, schema)
        out._rows = rows
        return out

    def columns(self) -> list | None:
        """Cached columnar view: one ``int64``/``uint64`` array per attribute.

        ``None`` when any column holds non-integer values (the kernels
        then have no fast path for this relation). The view is cached and
        invalidated by :meth:`add`/:meth:`extend`; it is a *snapshot* —
        mutating the relation after taking it does not grow the arrays.
        """
        cached = self._columns
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        cols = key_columns(self._rows, range(self.schema.arity))
        self._columns = (len(self._rows), cols)
        return cols

    def prime_columns(self, cols: list | None) -> None:
        """Install a precomputed columnar view (e.g. a delivered side-car).

        ``cols`` must be one array per attribute, each as long as the
        relation; anything else is ignored rather than trusted.
        """
        if cols is not None and (
            len(cols) == self.schema.arity
            and all(len(c) == len(self._rows) for c in cols)
        ):
            self._columns = (len(self._rows), list(cols))

    def _cached_key_columns(self, idx: Sequence[int]) -> list | None:
        """The cached columns at ``idx``, or ``None`` when the cache is cold.

        Never forces an extraction — callers that merely *prefer* columnar
        input use this so cache misses cost nothing.
        """
        cached = self._columns
        if cached is None or cached[0] != len(self._rows) or cached[1] is None:
            return None
        return [cached[1][i] for i in idx]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in set(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema attributes and same multiset of tuples."""
        if isinstance(other, Relation):
            return (
                self.schema == other.schema
                and Counter(self._rows) == Counter(other._rows)
            )
        return NotImplemented

    def __hash__(self) -> int:  # relations are mutable bags; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {list(self.schema.attributes)!r}, {len(self)} rows)"

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.schema.attributes

    def add(self, row: Row) -> None:
        """Append one tuple (arity-checked)."""
        t = tuple(row)
        if len(t) != self.schema.arity:
            raise SchemaError(
                f"tuple {t!r} has arity {len(t)}, schema {self.name} expects "
                f"{self.schema.arity}"
            )
        self._columns = None
        self._rows.append(t)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many tuples (arity-checked)."""
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------- operations

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection (bag semantics: duplicates are kept)."""
        idx = self.schema.indices(attributes)
        out = Relation(name or self.name, self.schema.project(attributes))
        out._rows = [tuple(row[i] for i in idx) for row in self._rows]
        return out

    def distinct(self, name: str | None = None) -> "Relation":
        """Set-semantics copy with duplicates removed (first occurrence kept)."""
        out = Relation(name or self.name, self.schema)
        out._rows = list(dict.fromkeys(self._rows))
        return out

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Selection by an arbitrary predicate on the raw tuple."""
        out = Relation(name or self.name, self.schema)
        out._rows = [row for row in self._rows if predicate(row)]
        return out

    def select_eq(self, attribute: str, value: Any, name: str | None = None) -> "Relation":
        """Selection ``attribute == value``."""
        i = self.schema.index(attribute)
        out = Relation(name or self.name, self.schema)
        out._rows = [row for row in self._rows if row[i] == value]
        return out

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename attributes (the row list is copied, tuples shared)."""
        out = Relation(name or self.name, self.schema.rename(mapping))
        out._rows = list(self._rows)
        return out

    def key(self, attributes: Sequence[str]) -> list[Row]:
        """The key-tuple (projection) of every row, in row order."""
        idx = self.schema.indices(attributes)
        return [tuple(row[i] for i in idx) for row in self._rows]

    def column(self, attribute: str) -> list[Any]:
        """All values of one attribute, in row order."""
        i = self.schema.index(attribute)
        return [row[i] for row in self._rows]

    def degrees(self, attribute: str) -> Counter:
        """Frequency of each value of ``attribute`` (the tutorial's *degree*)."""
        return Counter(self.column(attribute))

    def heavy_hitters(self, attribute: str, threshold: float) -> set[Any]:
        """Values of ``attribute`` occurring at least ``threshold`` times.

        The tutorial calls a join value *heavy* when its degree is at least
        ``IN / p``; the caller supplies that threshold.
        """
        return {v for v, c in self.degrees(attribute).items() if c >= threshold}

    # ------------------------------------------------------ reference queries

    def join(self, other: "Relation", name: str = "J") -> "Relation":
        """Exact local natural join, used as ground truth in tests.

        The output schema is this schema followed by ``other``'s attributes
        that are not shared.
        """
        shared = self.schema.common(other.schema)
        left_idx = self.schema.indices(shared)
        right_idx = other.schema.indices(shared)
        extra = [a for a in other.schema.attributes if a not in self.schema]
        extra_idx = other.schema.indices(extra)

        out = Relation(name, Schema(list(self.schema.attributes) + extra))
        if not shared:
            out._rows = [l + r for l in self._rows for r in other._rows]
            return out

        if kernels_enabled():
            joined = join_rows_columnar(
                self._rows,
                other._rows,
                left_idx,
                right_idx,
                extra_idx,
                left_cols=self._cached_key_columns(left_idx),
                right_cols=other._cached_key_columns(right_idx),
            )
            if joined is not None:
                out._rows = joined
                return out

        index: dict[Row, list[Row]] = {}
        for row in other._rows:
            index.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        for row in self._rows:
            k = tuple(row[i] for i in left_idx)
            for match in index.get(k, ()):
                out._rows.append(row + tuple(match[i] for i in extra_idx))
        return out

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Exact local semijoin ``self ⋉ other`` on the shared attributes."""
        shared = self.schema.common(other.schema)
        if not shared:
            out = Relation(name or self.name, self.schema)
            out._rows = list(self._rows) if len(other) else []
            return out
        left_idx = self.schema.indices(shared)
        right_idx = other.schema.indices(shared)
        out = Relation(name or self.name, self.schema)
        if kernels_enabled():
            mask = semijoin_mask(
                self._rows, left_idx, [tuple(r[i] for i in right_idx) for r in other]
            )
            if mask is not None:
                out._rows = [row for row, keep in zip(self._rows, mask) if keep]
                return out
        right_keys = {tuple(row[i] for i in right_idx) for row in other}
        out._rows = [
            row for row in self._rows if tuple(row[i] for i in left_idx) in right_keys
        ]
        return out

    def sorted_by(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Copy sorted lexicographically by the given attributes."""
        idx = self.schema.indices(attributes)
        out = Relation(name or self.name, self.schema)
        out._rows = sorted(self._rows, key=lambda row: tuple(row[i] for i in idx))
        return out


def union_all(name: str, relations: Sequence[Relation]) -> Relation:
    """Bag union of relations sharing one schema."""
    if not relations:
        raise SchemaError("union_all needs at least one relation")
    schema = relations[0].schema
    for r in relations[1:]:
        if r.schema != schema:
            raise SchemaError(
                f"union_all schemas differ: {schema} vs {r.schema} ({r.name})"
            )
    out = Relation(name, schema)
    for r in relations:
        out._rows.extend(r.rows())
    return out
