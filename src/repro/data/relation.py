"""In-memory relations: columnar-native storage with a derived tuple view.

The MPC model of the tutorial counts communication in *tuples*, and the
differential oracles compare results as multisets of tuples — but the
hot paths (routing, delivery, local joins, splitter search) are all
vectorized over numpy integer columns. A :class:`Relation` therefore
holds **either** representation as ground truth:

- *column-primary* (built by :meth:`Relation.from_columns`, and by the
  columnar operator fast paths): one ``int64``/``uint64`` array per
  attribute; the tuple view is materialized lazily and cached.
- *row-primary* (built by the tuple constructor, :meth:`Relation.wrap`,
  or any mutation): a list of plain Python tuples; the columnar view is
  extracted lazily and cached.

Coherency between the two views is governed by a **monotonic mutation
token** (:meth:`Relation.mutation_token`): every mutation —
:meth:`add`/:meth:`extend`, and the first hand-out of the live row list
by :meth:`rows` — bumps the token, and every derived cache records the
token it was built at. A relation whose row list has been exposed (or
adopted from a caller via :meth:`wrap`) is *borrowed*: in-place edits of
that list are invisible to any token, so borrowed relations never trust
an automatically extracted column cache — :meth:`prime_columns` is the
explicit override for internal code that owns the list.

The class offers the small relational-algebra surface the parallel
algorithms need: projection, selection, renaming, key extraction, degree
(frequency) statistics, and exact local joins for verifying distributed
results.

**Concurrency contract.** A relation may be read from many threads at
once — :meth:`rows_readonly`, :meth:`columns`, and the pure operators
(project/select/join/...) are safe under concurrent readers, including
when the lazy row/column derivations race: every cache fill, the
:meth:`rows` borrow/demote transition, and the mutation bookkeeping of
:meth:`add`/:meth:`extend` happen under a per-relation lock, so no
reader can ever observe a half-built view or a cleared-but-unreplaced
representation. *Mutations are not serialized against readers*: callers
that interleave :meth:`add`/:meth:`extend`/:meth:`rows` with concurrent
reads must provide external synchronization (the
:class:`repro.data.warehouse.RelationWarehouse` writer lock is the
service layer's way of doing exactly that) — the lock here guarantees
the relation's *internal* coherency, not snapshot isolation.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.data.schema import Schema
from repro.errors import SchemaError
from repro.kernels.columnar import key_columns
from repro.kernels.config import kernels_enabled
from repro.kernels.memo import memo_enabled
from repro.kernels.join import (
    code_key_columns,
    join_indices,
    join_rows_columnar,
    semijoin_mask,
)

Row = tuple[Any, ...]


def _as_column(values: Any) -> np.ndarray:
    """Normalize one column to a 1-D ``int64``/``uint64`` array."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(f"a column must be 1-D, got shape {array.shape}")
    kind = array.dtype.kind
    if kind not in "biu":
        raise SchemaError(
            f"columns must hold integers, got dtype {array.dtype} "
            "(use the tuple constructor for non-integer data)"
        )
    if array.dtype == np.uint64:
        return array
    if array.dtype != np.int64:
        return array.astype(np.int64)
    return array


class Relation:
    """A named relation: schema + bag of tuples (duplicates allowed).

    >>> r = Relation("R", ["x", "y"], [(1, 2), (1, 3)])
    >>> len(r)
    2
    >>> r.project(["x"]).rows()
    [(1,), (1,)]
    """

    __slots__ = ("name", "schema", "_rows", "_cols", "_chunks", "_colcache",
                 "_version", "_borrowed", "_lock")

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[str],
        rows: Iterable[Row] = (),
    ) -> None:
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        # Ground truth: _cols when not None (column-primary), else _chunks
        # (chunk-backed column-primary: per-column lists of blocks,
        # concatenated lazily on first whole-column access), else _rows.
        self._cols: list[np.ndarray] | None = None
        self._chunks: list[list[np.ndarray]] | None = None
        self._rows: list[Row] | None = []
        # (mutation token, extracted columns or None) — row-primary cache.
        self._colcache: tuple[int, list | None] | None = None
        self._version = 0
        self._borrowed = False
        # Guards the lazy derivations (row materialization, column
        # extraction), the borrow/demote transition of rows(), and the
        # mutation bookkeeping — see the module-level concurrency
        # contract. Never held while user code runs.
        self._lock = threading.Lock()
        arity = self.schema.arity
        for row in rows:
            t = tuple(row)
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, schema {self.name} expects {arity}"
                )
            self._rows.append(t)

    # ------------------------------------------------------------------ basic

    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Schema | Sequence[str],
        columns: Sequence[Any],
    ) -> "Relation":
        """Build a column-primary relation from one array per attribute.

        Columns must be 1-D integer arrays (anything ``np.asarray`` turns
        into an integer dtype) of equal length; they are normalized to
        ``int64`` (``uint64`` is kept for values above the signed range).
        The tuple view is derived lazily — ``rows()[k][i]`` is exactly
        ``int(columns[i][k])``, so columnar construction is
        byte-identical to building the same tuples by hand.
        """
        out = cls(name, schema)
        if out.schema.arity == 0:
            raise SchemaError("from_columns needs at least one attribute")
        cols = [_as_column(c) for c in columns]
        if len(cols) != out.schema.arity:
            raise SchemaError(
                f"{len(cols)} columns for schema {name} of arity {out.schema.arity}"
            )
        length = len(cols[0])
        if any(len(c) != length for c in cols):
            raise SchemaError(
                f"column lengths differ: {[len(c) for c in cols]}"
            )
        out._cols = cols
        out._rows = None
        return out

    @classmethod
    def from_chunks(
        cls,
        name: str,
        schema: Schema | Sequence[str],
        chunk_lists: Sequence[Sequence[Any]],
    ) -> "Relation":
        """Build a *chunk-backed* column-primary relation in O(#blocks).

        ``chunk_lists[i]`` is the ordered list of 1-D integer blocks that
        make up column ``i``.  Nothing is concatenated here — a delivery
        can append blocks in O(1) — and :meth:`__len__` answers from the
        block lengths without copying; the first whole-column access
        (:meth:`columns`, any operator) solidifies the chunks into
        ordinary backing arrays.  Blocks of one column must share a
        dtype so the deferred concatenation is value-exact.
        """
        out = cls(name, schema)
        arity = out.schema.arity
        if arity == 0:
            raise SchemaError("from_chunks needs at least one attribute")
        if len(chunk_lists) != arity:
            raise SchemaError(
                f"{len(chunk_lists)} chunk lists for schema {name} of arity {arity}"
            )
        chunks = [[_as_column(b) for b in blocks] for blocks in chunk_lists]
        lengths = [sum(len(b) for b in blocks) for blocks in chunks]
        if len(set(lengths)) > 1:
            raise SchemaError(f"column lengths differ: {lengths}")
        for blocks in chunks:
            if len({b.dtype for b in blocks}) > 1:
                raise SchemaError(
                    "blocks of one column must share a dtype "
                    f"({[str(b.dtype) for b in blocks]})"
                )
        out._chunks = chunks
        out._rows = None
        return out

    @classmethod
    def wrap(
        cls, name: str, schema: Schema | Sequence[str], rows: list[Row]
    ) -> "Relation":
        """Adopt ``rows`` as the tuple store without copying.

        The caller hands over the list but may still hold a reference, so
        the relation is *borrowed* from birth: automatically extracted
        column caches are never trusted (see :meth:`columns`);
        :meth:`prime_columns` installs a trusted view explicitly. The
        first row's arity is always checked so malformed input fails here
        with :class:`SchemaError` instead of deep inside a kernel; the
        full scan runs under ``__debug__``.
        """
        out = cls(name, schema)
        arity = out.schema.arity
        if rows and len(rows[0]) != arity:
            raise SchemaError(
                f"tuple {rows[0]!r} has arity {len(rows[0])}, schema {name} "
                f"expects {arity}"
            )
        if __debug__ and rows:
            for t in rows:
                if len(t) != arity:
                    raise SchemaError(
                        f"tuple {t!r} has arity {len(t)}, schema {name} "
                        f"expects {arity}"
                    )
        out._rows = rows
        out._borrowed = True
        return out

    def __getstate__(self) -> dict:
        # The per-relation lock is not picklable (and must not be
        # shared across processes anyway); a fresh one is created on
        # unpickle. Everything else round-trips verbatim.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_lock"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.Lock()

    def _solidify_locked(self) -> None:
        """Concatenate a chunk-backed view into ordinary backing arrays.

        Caller must hold :attr:`_lock` (or own the relation).  ``_cols``
        is installed *before* ``_chunks`` is dropped so an unlocked
        reader that saw ``_chunks is None`` always finds ``_cols`` set.
        """
        chunks = self._chunks
        if chunks is None:
            return
        self._cols = [
            np.empty(0, dtype=np.int64) if not blocks
            else blocks[0] if len(blocks) == 1
            else np.concatenate(blocks)
            for blocks in chunks
        ]
        self._chunks = None

    def _solidify(self) -> None:
        if self._chunks is None:
            return
        with self._lock:
            self._solidify_locked()

    def _derive_rows(self) -> list[Row]:
        """The tuple store (caller must hold :attr:`_lock` or own the relation)."""
        rows = self._rows
        if rows is None:
            self._solidify_locked()
            assert self._cols is not None
            rows = list(zip(*(c.tolist() for c in self._cols)))
            self._rows = rows
        return rows

    def _materialize(self) -> list[Row]:
        """The tuple store, deriving (and caching) it from the columns."""
        rows = self._rows
        if rows is None:
            # Lazy derivation races with other readers: take the lock,
            # re-check, and let exactly one thread build the view.
            with self._lock:
                rows = self._derive_rows()
        return rows

    def rows(self) -> list[Row]:
        """The tuple store as the *live* list.

        Handing out the live list means the caller could mutate it in
        place, invisibly to any token — so this conservatively bumps the
        mutation token once, demotes a column-primary relation to rows,
        and marks the relation *borrowed* (cached column extraction is
        never trusted again; see :meth:`columns`). Internal read-only
        code paths use :meth:`rows_readonly` to avoid the demotion.

        The borrow/demote transition happens atomically under the
        relation lock, so a concurrent :meth:`columns` reader sees
        either the pre-demotion columnar view or the post-demotion row
        view — never a state with both representations cleared.
        """
        with self._lock:
            rows = self._derive_rows()
            if not self._borrowed:
                self._version += 1
                self._borrowed = True
            elif self._cols is not None:
                self._version += 1
            self._cols = None
            self._colcache = None
            return rows

    def rows_readonly(self) -> list[Row]:
        """The tuple view for callers that promise not to mutate it.

        Unlike :meth:`rows` this leaves the representation, the mutation
        token, and the caches untouched — the accessor for internal hot
        paths (scatter, CSV writing, unions, oracles).
        """
        return self._materialize()

    def mutation_token(self) -> int:
        """Monotonic token bumped by every mutation (and live-list hand-out).

        Cache layers key derived state on ``(id(relation), token)``; a
        stale entry can then never be served after ``add``/``extend`` —
        see :meth:`repro.engine.Engine._align`.
        """
        return self._version

    @property
    def is_borrowed(self) -> bool:
        """Whether the row list is (or may be) aliased outside the relation.

        Borrowed relations re-extract columns on every :meth:`columns`
        call and should not have derived state cached against their
        token, because in-place list edits do not bump it.
        """
        return self._borrowed

    @property
    def is_columnar(self) -> bool:
        """Whether numpy columns are currently the primary representation.

        True for both solid (``_cols``) and chunk-backed (``_chunks``)
        column-primary relations.
        """
        return self._cols is not None or self._chunks is not None

    def columns(self) -> list | None:
        """The columnar view: one ``int64``/``uint64`` array per attribute.

        Column-primary relations return their backing arrays (zero cost,
        always coherent). Row-primary relations extract and cache the
        arrays keyed on the mutation token — never by length, so a
        same-length in-place rewrite after :meth:`rows` can no longer
        serve a stale view — and *borrowed* relations skip the cache
        entirely. ``None`` when any column holds non-integer values (the
        kernels then have no fast path for this relation).

        Safe under concurrent readers: the extraction (and its cache
        fill) runs under the relation lock, so a racing :meth:`rows`
        demotion or a second extractor can never interleave with it.
        """
        cols = self._cols
        if cols is not None:
            return cols
        with self._lock:
            self._solidify_locked()
            if self._cols is not None:
                return self._cols
            cached = self._colcache
            if cached is not None and cached[0] == self._version:
                return cached[1]
            cols = key_columns(self._rows, range(self.schema.arity))
            if not self._borrowed:
                self._colcache = (self._version, cols)
            return cols

    def prime_columns(self, cols: list | None) -> None:
        """Install a precomputed columnar view (e.g. a delivered side-car).

        ``cols`` must be one array per attribute, each as long as the
        relation; anything else is ignored rather than trusted. This is
        the explicit override for borrowed relations whose adopting code
        *knows* the arrays match the rows (a shuffle's side-car); the
        installed view is still dropped on the next token bump.
        """
        with self._lock:
            if self._cols is not None or self._chunks is not None:
                return
            if cols is not None and (
                len(cols) == self.schema.arity
                and all(len(c) == len(self._derive_rows()) for c in cols)
            ):
                self._colcache = (self._version, list(cols))

    def _cached_key_columns(self, idx: Sequence[int]) -> list | None:
        """The coherent columns at ``idx``, or ``None`` when they would cost.

        Never forces an extraction — callers that merely *prefer*
        columnar input use this so cache misses cost nothing.
        """
        if self._cols is not None:
            return [self._cols[i] for i in idx]
        cached = self._colcache
        if cached is None or cached[0] != self._version or cached[1] is None:
            return None
        return [cached[1][i] for i in idx]

    def __len__(self) -> int:
        # A chunk-backed relation answers from block lengths, no concat.
        chunks = self._chunks
        if chunks is not None:
            return sum(len(block) for block in chunks[0])
        if self._rows is not None:
            return len(self._rows)
        cols = self._cols
        assert cols is not None
        return len(cols[0])

    def __iter__(self) -> Iterator[Row]:
        return iter(self._materialize())

    def __contains__(self, row: object) -> bool:
        return row in set(self._materialize())

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema attributes and same multiset of tuples."""
        if isinstance(other, Relation):
            return (
                self.schema == other.schema
                and Counter(self._materialize()) == Counter(other._materialize())
            )
        return NotImplemented

    def __hash__(self) -> int:  # relations are mutable bags; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {list(self.schema.attributes)!r}, {len(self)} rows)"

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.schema.attributes

    def add(self, row: Row) -> None:
        """Append one tuple (arity-checked); bumps the mutation token."""
        t = tuple(row)
        if len(t) != self.schema.arity:
            raise SchemaError(
                f"tuple {t!r} has arity {len(t)}, schema {self.name} expects "
                f"{self.schema.arity}"
            )
        with self._lock:
            rows = self._derive_rows()
            self._cols = None
            self._colcache = None
            self._version += 1
            rows.append(t)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many tuples (arity-checked); bumps the mutation token."""
        for row in rows:
            self.add(row)

    # ---------------------------------------------------- columnar plumbing

    def _adopt_columns(self, cols: list[np.ndarray]) -> "Relation":
        """Install already-normalized arrays as the primary representation."""
        self._cols = cols
        self._rows = None
        return self

    # ------------------------------------------------------------- operations

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection (bag semantics: duplicates are kept)."""
        self._solidify()
        idx = self.schema.indices(attributes)
        out = Relation(name or self.name, self.schema.project(attributes))
        if self._cols is not None:
            return out._adopt_columns([self._cols[i] for i in idx])
        out._rows = [tuple(row[i] for i in idx) for row in self._rows]
        return out

    def distinct(self, name: str | None = None) -> "Relation":
        """Set-semantics copy with duplicates removed (first occurrence kept)."""
        out = Relation(name or self.name, self.schema)
        out._rows = list(dict.fromkeys(self._materialize()))
        return out

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Selection by an arbitrary predicate on the raw tuple."""
        out = Relation(name or self.name, self.schema)
        out._rows = [row for row in self._materialize() if predicate(row)]
        return out

    def select_eq(self, attribute: str, value: Any, name: str | None = None) -> "Relation":
        """Selection ``attribute == value``."""
        self._solidify()
        i = self.schema.index(attribute)
        out = Relation(name or self.name, self.schema)
        if self._cols is not None and isinstance(value, (int, np.integer)) \
                and not isinstance(value, bool):
            try:
                mask = self._cols[i] == value
            except (OverflowError, TypeError):
                mask = None
            if mask is not None:
                return out._adopt_columns([c[mask] for c in self._cols])
        out._rows = [row for row in self._materialize() if row[i] == value]
        return out

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename attributes (the store is copied, tuples/arrays shared)."""
        self._solidify()
        out = Relation(name or self.name, self.schema.rename(mapping))
        if self._cols is not None:
            return out._adopt_columns(list(self._cols))
        out._rows = list(self._rows)
        return out

    def key(self, attributes: Sequence[str]) -> list[Row]:
        """The key-tuple (projection) of every row, in row order."""
        self._solidify()
        idx = self.schema.indices(attributes)
        if self._cols is not None:
            return list(zip(*(self._cols[i].tolist() for i in idx)))
        return [tuple(row[i] for i in idx) for row in self._rows]

    def column(self, attribute: str) -> list[Any]:
        """All values of one attribute, in row order."""
        self._solidify()
        i = self.schema.index(attribute)
        if self._cols is not None:
            return self._cols[i].tolist()
        return [row[i] for row in self._rows]

    def degrees(self, attribute: str) -> Counter:
        """Frequency of each value of ``attribute`` (the tutorial's *degree*)."""
        return Counter(self.column(attribute))

    def heavy_hitters(self, attribute: str, threshold: float) -> set[Any]:
        """Values of ``attribute`` occurring at least ``threshold`` times.

        The tutorial calls a join value *heavy* when its degree is at least
        ``IN / p``; the caller supplies that threshold.
        """
        return {v for v, c in self.degrees(attribute).items() if c >= threshold}

    # ------------------------------------------------------ reference queries

    def join(self, other: "Relation", name: str = "J") -> "Relation":
        """Exact local natural join, used as ground truth in tests.

        The output schema is this schema followed by ``other``'s attributes
        that are not shared. When both sides are column-primary the join
        runs column-native end to end: key codes, match indices, and the
        output's columns are all array operations, and no tuple is ever
        materialized.
        """
        self._solidify()
        other._solidify()
        shared = self.schema.common(other.schema)
        left_idx = self.schema.indices(shared)
        right_idx = other.schema.indices(shared)
        extra = [a for a in other.schema.attributes if a not in self.schema]
        extra_idx = other.schema.indices(extra)

        out = Relation(name, Schema(list(self.schema.attributes) + extra))
        if not shared:
            out._rows = [
                l + r
                for l in self._materialize()
                for r in other._materialize()
            ]
            return out

        if kernels_enabled():
            if self._cols is not None and other._cols is not None:
                coded = code_key_columns(
                    [self._cols[i] for i in left_idx],
                    [other._cols[i] for i in right_idx],
                )
                if coded is not None:
                    left_pos, right_pos = join_indices(*coded)
                    return out._adopt_columns(
                        [c[left_pos] for c in self._cols]
                        + [other._cols[i][right_pos] for i in extra_idx]
                    )
            left_rows = self._materialize()
            right_rows = other._materialize()
            joined = join_rows_columnar(
                left_rows,
                right_rows,
                left_idx,
                right_idx,
                extra_idx,
                left_cols=self._cached_key_columns(left_idx),
                right_cols=other._cached_key_columns(right_idx),
            )
            if joined is not None:
                out._rows = joined
                return out

        index: dict[Row, list[Row]] = {}
        for row in other._materialize():
            index.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        for row in self._materialize():
            k = tuple(row[i] for i in left_idx)
            for match in index.get(k, ()):
                out._rows.append(row + tuple(match[i] for i in extra_idx))
        return out

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Exact local semijoin ``self ⋉ other`` on the shared attributes."""
        self._solidify()
        other._solidify()
        shared = self.schema.common(other.schema)
        if not shared:
            out = Relation(name or self.name, self.schema)
            out._rows = list(self._materialize()) if len(other) else []
            return out
        left_idx = self.schema.indices(shared)
        right_idx = other.schema.indices(shared)
        out = Relation(name or self.name, self.schema)
        if kernels_enabled():
            if self._cols is not None and other._cols is not None:
                coded = code_key_columns(
                    [self._cols[i] for i in left_idx],
                    [other._cols[i] for i in right_idx],
                )
                if coded is not None:
                    row_codes, member_codes = coded
                    mask = np.isin(row_codes, member_codes)
                    return out._adopt_columns([c[mask] for c in self._cols])
            rows = self._materialize()
            mask = semijoin_mask(
                rows, left_idx,
                [tuple(r[i] for i in right_idx) for r in other],
            )
            if mask is not None:
                out._rows = [row for row, keep in zip(rows, mask) if keep]
                return out
        right_keys = {
            tuple(row[i] for i in right_idx) for row in other._materialize()
        }
        out._rows = [
            row
            for row in self._materialize()
            if tuple(row[i] for i in left_idx) in right_keys
        ]
        return out

    def sorted_by(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Copy sorted lexicographically by the given attributes."""
        self._solidify()
        idx = self.schema.indices(attributes)
        out = Relation(name or self.name, self.schema)
        if self._cols is not None:
            # lexsort's last key is primary; reversing matches the tuple
            # key order, and its stability matches sorted()'s.
            order = np.lexsort([self._cols[i] for i in reversed(idx)])
            return out._adopt_columns([c[order] for c in self._cols])
        out._rows = sorted(
            self._rows, key=lambda row: tuple(row[i] for i in idx)
        )
        return out


def union_all(name: str, relations: Sequence[Relation]) -> Relation:
    """Bag union of relations sharing one schema."""
    if not relations:
        raise SchemaError("union_all needs at least one relation")
    schema = relations[0].schema
    for r in relations[1:]:
        if r.schema != schema:
            raise SchemaError(
                f"union_all schemas differ: {schema} vs {r.schema} ({r.name})"
            )
    out = Relation(name, schema)
    if schema.arity and all(r.is_columnar for r in relations):
        per_position: list[list[np.ndarray]] | None = []
        for i in range(schema.arity):
            blocks: list[np.ndarray] = []
            for r in relations:
                chunks = r._chunks
                if chunks is not None:
                    blocks.extend(chunks[i])
                    continue
                cols = r._cols
                if cols is None:  # raced with a rows() demotion
                    per_position = None
                    break
                blocks.append(cols[i])
            if per_position is None:
                break
            per_position.append(blocks)
        if per_position is not None and all(
            len({b.dtype for b in blocks}) <= 1 for blocks in per_position
        ):
            if memo_enabled():
                # Zero-copy: adopt the blocks as a chunk-backed view;
                # the concatenation happens only if a consumer asks for
                # whole columns.
                out._chunks = per_position
                out._rows = None
                return out
            return out._adopt_columns(
                [
                    np.empty(0, dtype=np.int64) if not blocks
                    else np.concatenate(blocks)
                    for blocks in per_position
                ]
            )
    for r in relations:
        out._rows.extend(r.rows_readonly())
    return out
