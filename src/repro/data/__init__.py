"""Data substrate: schemas, relations, and synthetic workload generators."""

from repro.data.generators import (
    matching_relation,
    regular_degree_relation,
    relation_with_planted_output,
    single_value_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.io import read_csv, write_csv
from repro.data.graphs import (
    count_triangles,
    planted_triangles,
    power_law_edges,
    random_edges,
    triangle_relations,
)
from repro.data.relation import Relation, union_all
from repro.data.warehouse import Warehouse, make_warehouse
from repro.data.schema import Schema
from repro.data.zipf import ZipfSampler, degree_sequence, zipf_values

__all__ = [
    "Relation",
    "Schema",
    "Warehouse",
    "ZipfSampler",
    "count_triangles",
    "degree_sequence",
    "make_warehouse",
    "matching_relation",
    "planted_triangles",
    "power_law_edges",
    "random_edges",
    "read_csv",
    "regular_degree_relation",
    "relation_with_planted_output",
    "single_value_relation",
    "skewed_relation",
    "triangle_relations",
    "uniform_relation",
    "write_csv",
    "union_all",
    "zipf_values",
]
