"""Loading and saving relations as CSV.

Minimal I/O so downstream users can point the algorithms at their own
data. Values are parsed as ints when possible, then floats, else kept
as strings — good enough for the key/payload tuples the algorithms move.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.data.relation import Relation
from repro.errors import SchemaError


def _parse(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def read_csv(path: str | Path, name: str | None = None,
             header: bool = True) -> Relation:
    """Load a relation from a CSV file.

    With ``header=True`` the first row names the attributes; otherwise
    columns are named ``c0, c1, …``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise SchemaError(f"{path} is empty; a relation needs a schema")
    if header:
        attributes = rows[0]
        data = rows[1:]
    else:
        attributes = [f"c{i}" for i in range(len(rows[0]))]
        data = rows
    relation = Relation(name or path.stem, attributes)
    for row in data:
        relation.add(tuple(_parse(token) for token in row))
    return relation


def write_csv(relation: Relation, path: str | Path, header: bool = True) -> None:
    """Write a relation to CSV (attributes as the header row)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(relation.schema.attributes)
        writer.writerows(relation.rows_readonly())
