"""Relation schemas: ordered, named attributes.

A :class:`Schema` is an immutable ordered collection of attribute names.
Tuples of a relation are plain Python tuples positionally aligned with the
schema. The schema provides the name->position mapping used everywhere a
join key or projection list is given by attribute name.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class Schema:
    """An immutable ordered list of distinct attribute names.

    >>> s = Schema(["x", "y"])
    >>> s.index("y")
    1
    >>> s.project(["y"]).attributes
    ('y',)
    """

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Iterable[str]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        positions: dict[str, int] = {}
        for i, name in enumerate(attrs):
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
            if name in positions:
                raise SchemaError(f"duplicate attribute {name!r} in schema")
            positions[name] = i
        self._attributes = attrs
        self._positions = positions

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names, in order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def index(self, attribute: str) -> int:
        """Position of ``attribute``; raises :class:`SchemaError` if absent."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self._attributes}"
            ) from None

    def indices(self, attributes: Sequence[str]) -> tuple[int, ...]:
        """Positions of several attributes, in the order given."""
        return tuple(self.index(a) for a in attributes)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)!r})"

    def project(self, attributes: Sequence[str]) -> "Schema":
        """A new schema containing only ``attributes`` (validated), in the given order."""
        for a in attributes:
            self.index(a)
        return Schema(attributes)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with attributes renamed through ``mapping``.

        Attributes absent from ``mapping`` keep their name.
        """
        return Schema(mapping.get(a, a) for a in self._attributes)

    def common(self, other: "Schema") -> tuple[str, ...]:
        """Attributes shared with ``other``, in this schema's order."""
        return tuple(a for a in self._attributes if a in other)
