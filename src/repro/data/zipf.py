"""Skewed value distributions.

The tutorial's skew discussion is entirely about the *degree* of join
values (how often a value repeats). This module provides:

- :func:`zipf_values` — draw values from a (truncated) Zipf distribution,
  producing realistic heavy-hitter frequency profiles;
- :func:`degree_sequence` — the exact expected frequency of each rank;
- :class:`ZipfSampler` — a reusable, seeded sampler.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draw values in ``[0, universe)`` with P(rank k) ∝ 1 / (k+1)**s.

    ``s = 0`` is uniform; larger ``s`` concentrates mass on low ranks,
    producing heavy hitters. Values are the ranks themselves so the
    heaviest value is ``0``, the next-heaviest ``1``, and so on — handy
    for assertions in tests.
    """

    def __init__(self, universe: int, s: float, seed: int = 0) -> None:
        if universe <= 0:
            raise ValueError("universe must be positive")
        if s < 0:
            raise ValueError("skew parameter s must be non-negative")
        self.universe = universe
        self.s = s
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-s)
        self._probabilities = weights / weights.sum()

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` values as an int64 array."""
        return self._rng.choice(self.universe, size=n, p=self._probabilities)


def zipf_values(n: int, universe: int, s: float, seed: int = 0) -> list[int]:
    """Draw ``n`` Zipf(s) values over ``[0, universe)`` as a Python list."""
    return ZipfSampler(universe, s, seed).sample(n).tolist()


def degree_sequence(n: int, universe: int, s: float) -> list[float]:
    """Expected frequency of each rank when drawing ``n`` Zipf(s) values."""
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return (n * weights / weights.sum()).tolist()
