"""A small star-schema workload generator (warehouse-style).

The tutorial motivates its algorithms with cluster analytics (slide 2)
and the orders/customers aggregate of slide 52. This module generates a
coherent miniature warehouse so examples and benchmarks can run
"realistic" multi-relation queries:

- ``customers(cust, region, segment)`` — dimension, uniform;
- ``orders(order, cust, month)`` — fact, Zipf-skewed customer keys
  (whale customers);
- ``lineitems(order, part, qty)`` — fact, fan-out per order;
- ``parts(part, brand)`` — dimension.

All foreign keys are guaranteed to resolve, so joins never silently
drop tuples, and every relation is deterministic given the seed.

The module also hosts :class:`RelationWarehouse`, the *shared* catalog
the concurrent query service (:mod:`repro.service`) reads through: a
name → :class:`~repro.data.relation.Relation` map behind a
reader-writer lock. Queries hold the read side (many at once), catalog
changes and in-place mutations hold the write side (exclusive), and
every write notifies registered invalidation listeners — that is the
hook the service's result cache uses to drop entries for a relation the
moment it changes, rather than waiting for a token mismatch to miss.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation, Row
from repro.data.zipf import ZipfSampler
from repro.errors import QueryError


@dataclass
class Warehouse:
    """The four generated relations plus the generation parameters."""

    customers: Relation
    orders: Relation
    lineitems: Relation
    parts: Relation
    seed: int

    def relations(self) -> dict[str, Relation]:
        return {
            "Customers": self.customers,
            "Orders": self.orders,
            "Lineitems": self.lineitems,
            "Parts": self.parts,
        }

    @property
    def total_tuples(self) -> int:
        return sum(len(r) for r in self.relations().values())


def make_warehouse(
    n_customers: int = 500,
    n_orders: int = 5000,
    n_parts: int = 200,
    lineitems_per_order: int = 3,
    customer_skew: float = 1.2,
    n_regions: int = 8,
    seed: int = 0,
) -> Warehouse:
    """Generate a consistent star schema with skewed order ownership."""
    if min(n_customers, n_orders, n_parts, lineitems_per_order, n_regions) <= 0:
        raise ValueError("all warehouse dimensions must be positive")
    rng = np.random.default_rng(seed)

    customers = Relation(
        "Customers",
        ["cust", "region", "segment"],
        [
            (c, int(rng.integers(0, n_regions)), c % 5)
            for c in range(n_customers)
        ],
    )

    owner = ZipfSampler(n_customers, customer_skew, seed=seed + 1).sample(n_orders)
    months = rng.integers(1, 13, size=n_orders)
    orders = Relation.from_columns(
        "Orders",
        ["order", "cust", "month"],
        [np.arange(n_orders, dtype=np.int64), np.asarray(owner), months],
    )

    part_choice = rng.integers(0, n_parts, size=n_orders * lineitems_per_order)
    qty = rng.integers(1, 10, size=n_orders * lineitems_per_order)
    lineitems = Relation.from_columns(
        "Lineitems",
        ["order", "part", "qty"],
        [
            np.repeat(np.arange(n_orders, dtype=np.int64), lineitems_per_order),
            part_choice,
            qty,
        ],
    )

    part_ids = np.arange(n_parts, dtype=np.int64)
    parts = Relation.from_columns("Parts", ["part", "brand"], [part_ids, part_ids % 20])
    return Warehouse(customers, orders, lineitems, parts, seed)


# --------------------------------------------------------------- shared catalog


class ReadWriteLock:
    """A writer-preferring reader-writer lock (stdlib primitives only).

    Any number of readers may hold the lock at once; a writer holds it
    exclusively. A waiting writer blocks *new* readers (writer
    preference), so a steady query stream cannot starve mutations. Not
    reentrant on either side — a thread holding the read lock must not
    ask for the write lock (that deadlocks, as in any non-upgradable RW
    lock).
    """

    def __init__(self) -> None:
        self._state = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._state:
            while self._writer or self._writers_waiting:
                self._state.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._state:
                self._readers -= 1
                if self._readers == 0:
                    self._state.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._state:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._state.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._state:
                self._writer = False
                self._state.notify_all()


class RelationWarehouse:
    """A thread-shared relation catalog behind a reader-writer lock.

    The concurrent query service executes every query under
    :meth:`read_view` and funnels every catalog change through
    :meth:`register` / :meth:`extend` / :meth:`replace`, which take the
    write side — so queries see a frozen catalog for their whole
    execution, and mutations never interleave with a running query.

    *Invalidation protocol*: every write calls each listener registered
    via :meth:`add_invalidation_listener` with the affected relation
    name **while still holding the write lock**. A result cache that
    drops its entries in the listener is therefore coherent by
    construction: no query can be concurrently filling the cache with
    the stale relation (fills need the read lock), and any query
    admitted after the write sees both the new relation state and the
    already-invalidated cache.
    """

    def __init__(self, relations: Mapping[str, Relation] | None = None) -> None:
        self._lock = ReadWriteLock()
        self._relations: dict[str, Relation] = {}
        self._listeners: list[Callable[[str], None]] = []
        self._mutations = 0
        if relations:
            for name, relation in relations.items():
                self._relations[name] = relation

    @classmethod
    def from_warehouse(cls, warehouse: Warehouse) -> "RelationWarehouse":
        """Wrap the star-schema generator's output as a shared catalog."""
        return cls(warehouse.relations())

    # -- read side ---------------------------------------------------------

    @contextmanager
    def read_view(self) -> Iterator[dict[str, Relation]]:
        """Hold the read lock and expose the catalog as a plain dict.

        The dict is a shallow snapshot: mutating it does not touch the
        warehouse, and the relations inside must be treated as
        read-only (their mutation tokens are what cache keys hang on).
        """
        with self._lock.read():
            yield dict(self._relations)

    def relation(self, name: str) -> Relation:
        with self._lock.read():
            try:
                return self._relations[name]
            except KeyError:
                raise QueryError(
                    f"no relation {name!r} in the warehouse "
                    f"(have {sorted(self._relations)})"
                ) from None

    def names(self) -> list[str]:
        with self._lock.read():
            return sorted(self._relations)

    def tokens(self, names: Iterable[str]) -> tuple[tuple[str, int, int], ...]:
        """(name, identity, mutation token) for each relation, under one read."""
        with self._lock.read():
            out = []
            for name in names:
                rel = self._relations.get(name)
                if rel is None:
                    raise QueryError(
                        f"no relation {name!r} in the warehouse "
                        f"(have {sorted(self._relations)})"
                    )
                out.append((name, id(rel), rel.mutation_token()))
            return tuple(out)

    @property
    def mutation_count(self) -> int:
        """How many write-side operations the warehouse has performed."""
        return self._mutations

    # -- write side --------------------------------------------------------

    def add_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(relation_name)`` inside every future write."""
        self._listeners.append(listener)

    def _notify(self, name: str) -> None:
        self._mutations += 1
        for listener in self._listeners:
            listener(name)

    def register(self, relation: Relation, name: str | None = None) -> None:
        """Add (or replace) a relation under ``name`` (default: its own)."""
        key = name or relation.name
        with self._lock.write():
            self._relations[key] = relation
            self._notify(key)

    def replace(self, name: str, relation: Relation) -> None:
        """Replace an existing relation (raises if ``name`` is unknown)."""
        with self._lock.write():
            if name not in self._relations:
                raise QueryError(
                    f"no relation {name!r} in the warehouse "
                    f"(have {sorted(self._relations)})"
                )
            self._relations[name] = relation
            self._notify(name)

    def extend(self, name: str, rows: Iterable[Row]) -> None:
        """Append rows to a relation in place (bumps its mutation token).

        The append happens under the write lock, so no query can be
        half-way through the relation while it grows, and the
        invalidation listeners fire before any new query is admitted.
        """
        with self._lock.write():
            rel = self._relations.get(name)
            if rel is None:
                raise QueryError(
                    f"no relation {name!r} in the warehouse "
                    f"(have {sorted(self._relations)})"
                )
            rel.extend(rows)
            self._notify(name)
