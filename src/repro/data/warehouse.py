"""A small star-schema workload generator (warehouse-style).

The tutorial motivates its algorithms with cluster analytics (slide 2)
and the orders/customers aggregate of slide 52. This module generates a
coherent miniature warehouse so examples and benchmarks can run
"realistic" multi-relation queries:

- ``customers(cust, region, segment)`` — dimension, uniform;
- ``orders(order, cust, month)`` — fact, Zipf-skewed customer keys
  (whale customers);
- ``lineitems(order, part, qty)`` — fact, fan-out per order;
- ``parts(part, brand)`` — dimension.

All foreign keys are guaranteed to resolve, so joins never silently
drop tuples, and every relation is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.data.zipf import ZipfSampler


@dataclass
class Warehouse:
    """The four generated relations plus the generation parameters."""

    customers: Relation
    orders: Relation
    lineitems: Relation
    parts: Relation
    seed: int

    def relations(self) -> dict[str, Relation]:
        return {
            "Customers": self.customers,
            "Orders": self.orders,
            "Lineitems": self.lineitems,
            "Parts": self.parts,
        }

    @property
    def total_tuples(self) -> int:
        return sum(len(r) for r in self.relations().values())


def make_warehouse(
    n_customers: int = 500,
    n_orders: int = 5000,
    n_parts: int = 200,
    lineitems_per_order: int = 3,
    customer_skew: float = 1.2,
    n_regions: int = 8,
    seed: int = 0,
) -> Warehouse:
    """Generate a consistent star schema with skewed order ownership."""
    if min(n_customers, n_orders, n_parts, lineitems_per_order, n_regions) <= 0:
        raise ValueError("all warehouse dimensions must be positive")
    rng = np.random.default_rng(seed)

    customers = Relation(
        "Customers",
        ["cust", "region", "segment"],
        [
            (c, int(rng.integers(0, n_regions)), c % 5)
            for c in range(n_customers)
        ],
    )

    owner = ZipfSampler(n_customers, customer_skew, seed=seed + 1).sample(n_orders)
    months = rng.integers(1, 13, size=n_orders)
    orders = Relation.from_columns(
        "Orders",
        ["order", "cust", "month"],
        [np.arange(n_orders, dtype=np.int64), np.asarray(owner), months],
    )

    part_choice = rng.integers(0, n_parts, size=n_orders * lineitems_per_order)
    qty = rng.integers(1, 10, size=n_orders * lineitems_per_order)
    lineitems = Relation.from_columns(
        "Lineitems",
        ["order", "part", "qty"],
        [
            np.repeat(np.arange(n_orders, dtype=np.int64), lineitems_per_order),
            part_choice,
            qty,
        ],
    )

    part_ids = np.arange(n_parts, dtype=np.int64)
    parts = Relation.from_columns("Parts", ["part", "brand"], [part_ids, part_ids % 20])
    return Warehouse(customers, orders, lineitems, parts, seed)
