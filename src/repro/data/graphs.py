"""Graph-shaped workloads for subgraph (triangle, path, star) queries.

The tutorial's central multiway example is the triangle query
``Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x)`` over three copies of an edge
relation. These generators produce edge relations with controllable
structure:

- :func:`random_edges` — Erdős–Rényi-style random edge sets;
- :func:`power_law_edges` — Zipf-degree (skewed) edge sets;
- :func:`planted_triangles` — edges guaranteed to close a known number
  of triangles (ground truth for tests);
- :func:`triangle_relations` — rename one edge set into the R/S/T atoms
  of the triangle query.
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.data.zipf import ZipfSampler


def random_edges(
    n_edges: int,
    n_vertices: int,
    seed: int = 0,
    name: str = "E",
    attributes: tuple[str, str] = ("u", "v"),
) -> Relation:
    """``n_edges`` distinct directed edges over ``n_vertices`` vertices."""
    max_edges = n_vertices * n_vertices
    if n_edges > max_edges:
        raise ValueError(f"cannot draw {n_edges} distinct edges over {n_vertices} vertices")
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, int]] = set()
    # Draw in batches until enough distinct edges are collected.
    while len(seen) < n_edges:
        batch = rng.integers(0, n_vertices, size=(2 * (n_edges - len(seen)) + 8, 2))
        for u, v in batch.tolist():
            seen.add((u, v))
            if len(seen) == n_edges:
                break
    return Relation(name, list(attributes), sorted(seen))


def power_law_edges(
    n_edges: int,
    n_vertices: int,
    s: float,
    seed: int = 0,
    name: str = "E",
    attributes: tuple[str, str] = ("u", "v"),
) -> Relation:
    """Edges whose endpoints follow a Zipf(s) distribution (duplicates removed).

    Low-numbered vertices become hubs — the heavy hitters the skew-aware
    algorithms must handle. The result may have slightly fewer than
    ``n_edges`` edges after deduplication.
    """
    sampler_u = ZipfSampler(n_vertices, s, seed)
    sampler_v = ZipfSampler(n_vertices, s, seed + 1)
    us = sampler_u.sample(2 * n_edges)
    vs = sampler_v.sample(2 * n_edges)
    seen: set[tuple[int, int]] = set()
    for u, v in zip(us.tolist(), vs.tolist()):
        seen.add((u, v))
        if len(seen) == n_edges:
            break
    return Relation(name, list(attributes), sorted(seen))


def planted_triangles(
    n_triangles: int,
    n_noise_edges: int,
    n_vertices: int,
    seed: int = 0,
) -> tuple[Relation, int]:
    """An edge relation closing exactly ``n_triangles`` known directed triangles.

    Triangles use a reserved vertex range so that noise edges cannot
    accidentally close additional ones. Returns ``(edges, closed_triples)``
    where ``closed_triples = 3 * n_triangles`` is the size of the triangle
    query's output (each 3-cycle appears once per rotation — see
    :func:`count_triangles`).
    """
    if 3 * n_triangles > n_vertices:
        raise ValueError("need at least 3 vertices per planted triangle")
    edges: set[tuple[int, int]] = set()
    for i in range(n_triangles):
        a, b, c = 3 * i, 3 * i + 1, 3 * i + 2
        edges.update([(a, b), (b, c), (c, a)])
    rng = np.random.default_rng(seed)
    base = 3 * n_triangles
    span = max(n_vertices - base, 2)
    while len(edges) < 3 * n_triangles + n_noise_edges:
        u = base + int(rng.integers(0, span))
        v = base + int(rng.integers(0, span))
        if u != v:
            # Noise edges only go "upward", so they can never close a cycle.
            edges.add((min(u, v), max(u, v)))
    return Relation("E", ["u", "v"], sorted(edges)), 3 * n_triangles


def triangle_relations(edges: Relation) -> tuple[Relation, Relation, Relation]:
    """R(x,y), S(y,z), T(z,x) — three renamings of one edge relation."""
    u, v = edges.schema.attributes
    r = edges.rename({u: "x", v: "y"}, name="R")
    s = edges.rename({u: "y", v: "z"}, name="S")
    t = edges.rename({u: "z", v: "x"}, name="T")
    return r, s, t


def count_triangles(edges: Relation) -> int:
    """Number of *closed ordered triples* (x, y, z) with (x,y),(y,z),(z,x) ∈ E.

    This equals exactly ``|R(x,y) ⋈ S(y,z) ⋈ T(z,x)|`` when R, S, T are the
    renamings of ``edges`` — the ground truth the distributed triangle
    algorithms are checked against. A 3-cycle on distinct vertices
    contributes 3 triples (one per rotation).
    """
    u, v = edges.schema.attributes
    out_neighbors: dict[int, set[int]] = {}
    for a, b in edges:
        out_neighbors.setdefault(a, set()).add(b)
    count = 0
    for a, succs in out_neighbors.items():
        for b in succs:
            for c in out_neighbors.get(b, ()):
                if c in out_neighbors and a in out_neighbors[c]:
                    count += 1
    return count
