"""Synthetic relation generators for the tutorial's workloads.

Every generator is seeded and deterministic. The tutorial's analyses are
parameterized by the *degree* of join values (frequency of each value),
so the generators give precise control over degrees:

- :func:`uniform_relation` — attributes drawn uniformly from a universe;
- :func:`matching_relation` — every join value occurs *exactly once*
  (the "no skew" case of slide 24);
- :func:`regular_degree_relation` — every join value occurs exactly ``d``
  times (slide 25's analysis);
- :func:`skewed_relation` — Zipf-distributed join values;
- :func:`single_value_relation` — the extreme-skew case of slide 27 where
  the join degenerates to a Cartesian product.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.relation import Relation
from repro.data.zipf import ZipfSampler


def uniform_relation(
    name: str,
    attributes: Sequence[str],
    n: int,
    universe: int,
    seed: int = 0,
) -> Relation:
    """``n`` tuples with each attribute i.i.d. uniform over ``[0, universe)``."""
    rng = np.random.default_rng(seed)
    if not attributes:
        return Relation(name, attributes, [])
    columns = [rng.integers(0, universe, size=n) for _ in attributes]
    return Relation.from_columns(name, attributes, columns)


def matching_relation(name: str, attributes: Sequence[str], n: int) -> Relation:
    """``n`` tuples ``(i, i, ..., i)`` — every value occurs exactly once.

    This is the tutorial's skew-free extreme: iterative binary joins never
    grow intermediate results on such data (slide 57).
    """
    if not attributes:
        return Relation(name, attributes, [])
    serial = np.arange(n, dtype=np.int64)
    return Relation.from_columns(name, attributes, [serial] * len(attributes))


def regular_degree_relation(
    name: str,
    attributes: Sequence[str],
    n: int,
    key_attribute: str,
    degree: int,
    seed: int = 0,
) -> Relation:
    """``n`` tuples where every value of ``key_attribute`` occurs exactly ``degree`` times.

    Other attributes carry distinct serial values so tuples are unique.
    ``n`` must be divisible by ``degree``.
    """
    if degree <= 0:
        raise ValueError("degree must be positive")
    if n % degree:
        raise ValueError(f"n={n} must be a multiple of degree={degree}")
    rng = np.random.default_rng(seed)
    n_keys = n // degree
    keys = rng.permutation(n_keys)
    key_pos = list(attributes).index(key_attribute)
    rows = []
    serial = 0
    for key in keys.tolist():
        for _ in range(degree):
            row = []
            for pos, _attr in enumerate(attributes):
                if pos == key_pos:
                    row.append(key)
                else:
                    row.append(serial)
                    serial += 1
            rows.append(tuple(row))
    return Relation(name, attributes, rows)


def skewed_relation(
    name: str,
    attributes: Sequence[str],
    n: int,
    key_attribute: str,
    universe: int,
    s: float,
    seed: int = 0,
) -> Relation:
    """``n`` tuples with Zipf(s) values on ``key_attribute``; others uniform."""
    rng = np.random.default_rng(seed + 1)
    key_pos = list(attributes).index(key_attribute)
    keys = ZipfSampler(universe, s, seed).sample(n)
    columns = []
    for pos, _attr in enumerate(attributes):
        if pos == key_pos:
            columns.append(np.asarray(keys))
        else:
            columns.append(rng.integers(0, universe, size=n))
    return Relation.from_columns(name, attributes, columns)


def single_value_relation(
    name: str,
    attributes: Sequence[str],
    n: int,
    key_attribute: str,
    value: int = 0,
) -> Relation:
    """All ``n`` tuples share one value on ``key_attribute`` (slide 27's extreme)."""
    key_pos = list(attributes).index(key_attribute)
    arity = len(attributes)
    serial = np.arange(n, dtype=np.int64) * arity
    columns = [
        np.full(n, value, dtype=np.int64) if pos == key_pos else serial + pos
        for pos in range(arity)
    ]
    return Relation.from_columns(name, attributes, columns)


def relation_with_planted_output(
    r_name: str,
    s_name: str,
    join_attribute: str,
    n: int,
    out_pairs: int,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Two binary relations R(x, y), S(y, z) with a controlled join size.

    Both relations have ``n`` tuples. A single *heavy* value on ``y`` gets
    ``isqrt(out_pairs)`` tuples on each side, producing roughly
    ``out_pairs`` output tuples, while all remaining tuples use fresh,
    non-joining values. Useful for sweeping OUT independently of IN
    (the GYM-vs-HyperCube crossover of slide 78).
    """
    import math

    d = math.isqrt(out_pairs)
    if d > n:
        raise ValueError(f"cannot plant {out_pairs} outputs in relations of size {n}")
    heavy = -1  # a value no generator below produces
    r_rows = [(i, heavy) for i in range(d)]
    s_rows = [(heavy, i) for i in range(d)]
    # Non-joining filler: R uses y in [0, n), S uses y in [n, 2n).
    r_rows += [(d + i, i) for i in range(n - d)]
    s_rows += [(n + i, d + i) for i in range(n - d)]
    r = Relation(r_name, ["x", join_attribute], r_rows)
    s = Relation(s_name, [join_attribute, "z"], s_rows)
    return r, s
