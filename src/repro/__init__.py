"""repro — a reproduction of "Algorithmic Aspects of Parallel Query Processing".

The library simulates the Massively Parallel Communication (MPC) model and
implements the tutorial's algorithms on top of it:

- ``repro.data`` — relations and synthetic workload generators;
- ``repro.mpc`` — the cluster simulator (servers, rounds, load accounting);
- ``repro.query`` — conjunctive queries, hypergraph LPs (τ*, ρ*), AGM
  bound, shares optimization, hypertree decompositions;
- ``repro.joins`` — two-way joins (hash, broadcast, Cartesian grid,
  skew-aware, sort-based);
- ``repro.multiway`` — HyperCube/Shares, SkewHC, binary plans, semijoins,
  Yannakakis and GYM;
- ``repro.sorting`` — PSRS, sample sort, multi-round sort;
- ``repro.matmul`` — MPC matrix multiplication;
- ``repro.theory`` — the analytic formulas behind the tutorial's figures.
"""

from repro.data import Relation, Schema
from repro.engine import Engine, QueryResult
from repro.mpc import Cluster, RunStats
from repro.query.parser import parse_query

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Engine",
    "QueryResult",
    "Relation",
    "RunStats",
    "Schema",
    "__version__",
    "parse_query",
]
