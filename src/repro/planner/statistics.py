"""Cardinality and skew statistics feeding the plan chooser.

The tutorial's algorithms all branch on a handful of data statistics:
relation sizes, the degree profile of the join keys (heavy hitters), and
the expected output size. A real engine maintains these as sketches;
the simulator computes them exactly by default — the *decisions* they
drive are what the planner reproduces. For the optimizer
(:mod:`repro.planner.optimizer`) this module also provides per-relation
and per-query statistics with the paper's heavy-hitter rule ("Skew in
Parallel Query Processing", arXiv:1401.1872): a value is a heavy hitter
in relation R iff its frequency *exceeds* m/p, with m = |R| — the
threshold is relative to the relation it appears in, not to the combined
input. :func:`relation_statistics` optionally estimates the degree
profile from a uniform row sample, modelling the sketch a real engine
would maintain.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.data.relation import Relation


@dataclass(frozen=True)
class JoinStatistics:
    """Statistics of one binary natural join R ⋈ S."""

    r_size: int
    s_size: int
    shared: tuple[str, ...]
    out_size: int
    max_degree_r: int
    max_degree_s: int

    @property
    def in_size(self) -> int:
        return self.r_size + self.s_size

    def has_heavy_hitter(self, p: int) -> bool:
        """Whether some join value is heavy at the paper's m/p threshold.

        arXiv:1401.1872's rule is per relation: a value is heavy in R iff
        its frequency strictly exceeds |R|/p (and likewise for S). The
        threshold is *not* IN/p — a value occurring |R|/p times already
        overloads its hash server relative to R's fair share even when
        the other relation is much larger.
        """
        return (
            self.max_degree_r > self.r_size / p
            or self.max_degree_s > self.s_size / p
        )


def join_statistics(r: Relation, s: Relation) -> JoinStatistics:
    """Exact statistics of R ⋈ S (a real system would estimate these)."""
    shared = r.schema.common(s.schema)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    r_degrees = Counter(tuple(row[i] for i in r_idx) for row in r)
    s_degrees = Counter(tuple(row[i] for i in s_idx) for row in s)
    if shared:
        out = sum(c * s_degrees.get(k, 0) for k, c in r_degrees.items())
    else:
        out = len(r) * len(s)
    return JoinStatistics(
        r_size=len(r),
        s_size=len(s),
        shared=shared,
        out_size=out,
        max_degree_r=max(r_degrees.values(), default=0),
        max_degree_s=max(s_degrees.values(), default=0),
    )


def output_size(relations: dict[str, Relation], query) -> int:
    """Exact output cardinality of a full CQ (ground truth for planning tests)."""
    return len(query.evaluate(relations))


# ------------------------------------------------------- optimizer statistics


@dataclass(frozen=True)
class RelationStats:
    """One relation's cardinality and per-attribute degree profile.

    ``heavy`` maps each profiled attribute to its heavy-hitter values —
    the values whose (possibly sample-estimated) frequency strictly
    exceeds |R|/p. ``max_degree`` maps each attribute to the largest
    single-value frequency. When built from a sample both are estimates
    scaled back to the full cardinality.
    """

    name: str
    size: int
    heavy: Mapping[str, tuple] = field(default_factory=dict)
    max_degree: Mapping[str, int] = field(default_factory=dict)
    sampled: bool = False

    def heavy_values(self, attribute: str) -> tuple:
        return self.heavy.get(attribute, ())

    def max_degree_of(self, attribute: str) -> int:
        return self.max_degree.get(attribute, 0)

    @property
    def has_heavy(self) -> bool:
        return any(self.heavy.values())


def relation_statistics(
    rel: Relation,
    p: int,
    attributes: tuple[str, ...] | None = None,
    sample: int | None = None,
    seed: int = 0,
) -> RelationStats:
    """Degree statistics of ``rel`` at the paper's m/p heavy threshold.

    Exact by default; with ``sample`` set, degrees are counted on a
    uniform ``sample``-row subset and scaled by m/sample — the sketch a
    real engine would maintain (arXiv:1401.1872 detects heavy hitters
    from exactly such a sample, with the usual Chernoff confidence).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    attrs = tuple(attributes) if attributes is not None else tuple(rel.schema.attributes)
    m = len(rel)
    threshold = m / p
    heavy: dict[str, tuple] = {}
    max_degree: dict[str, int] = {}
    rows = rel.rows_readonly()
    sampled = sample is not None and 0 < sample < m
    if sampled:
        assert sample is not None
        rows = random.Random(seed).sample(list(rows), sample)
        scale = m / sample
    else:
        scale = 1.0
    for attr in attrs:
        index = rel.schema.indices((attr,))[0]
        degrees = Counter(row[index] for row in rows)
        estimates = {value: count * scale for value, count in degrees.items()}
        heavy[attr] = tuple(
            sorted(v for v, est in estimates.items() if est > threshold)
        )
        max_degree[attr] = int(round(max(estimates.values(), default=0)))
    return RelationStats(rel.name, m, heavy, max_degree, sampled=sampled)


@dataclass(frozen=True)
class QueryStatistics:
    """Everything the cost model reads about one query's input profile.

    ``heavy_join_values`` maps each *join* variable (shared by ≥ 2
    atoms) to the union of the heavy values found for it in any atom's
    relation — each tested against its own relation's m/p threshold.
    ``max_joint_degree`` is the largest total frequency (summed across
    the atoms sharing the variable) of any single value on any join
    variable: a hard floor on hash-partitioned load, because every tuple
    carrying that value meets on one server. ``heavy_joint_degrees``
    keeps, per join variable, each heavy value's joint degree — what the
    skew-handling strategies need to price their per-value grid
    products.
    """

    p: int
    in_size: int
    out_estimate: int
    sizes: Mapping[str, int]
    heavy_join_values: Mapping[str, tuple]
    max_joint_degree: int
    per_relation: tuple[RelationStats, ...]
    sampled: bool = False
    heavy_joint_degrees: Mapping[str, tuple] = field(default_factory=dict)

    @property
    def skewed(self) -> bool:
        return any(self.heavy_join_values.values())

    @property
    def heavy_count(self) -> int:
        return sum(len(v) for v in self.heavy_join_values.values())


def collect_query_statistics(
    query,
    relations: Mapping[str, Relation],
    p: int,
    out_estimate: int | None = None,
    sample: int | None = None,
    seed: int = 0,
) -> QueryStatistics:
    """Gather :class:`QueryStatistics` for ``query`` over ``relations``.

    ``out_estimate`` defaults to the exact output size (the simulator can
    afford it); pass an estimate to model a sketch-based engine.
    ``sample`` is forwarded to :func:`relation_statistics`.
    """
    join_vars = tuple(
        v for v in query.variables if len(query.atoms_with(v)) >= 2
    )
    per_relation = []
    heavy_join: dict[str, set] = {v: set() for v in join_vars}
    joint_degree: dict[tuple, int] = {}
    for atom in query.atoms:
        rel = relations[atom.name]
        profiled = tuple(v for v in atom.variables if v in join_vars)
        stats = relation_statistics(
            rel, p, attributes=profiled, sample=sample, seed=seed
        )
        per_relation.append(stats)
        for variable in profiled:
            heavy_join[variable].update(stats.heavy_values(variable))
            index = rel.schema.indices((variable,))[0]
            for value, count in Counter(
                row[index] for row in rel.rows_readonly()
            ).items():
                key = (variable, value)
                joint_degree[key] = joint_degree.get(key, 0) + count
    if out_estimate is None:
        out_estimate = len(query.evaluate(relations))
    heavy_joint = {
        v: tuple(
            (value, joint_degree[(v, value)]) for value in sorted(heavy_join[v])
        )
        for v in join_vars
    }
    return QueryStatistics(
        p=p,
        in_size=sum(len(relations[a.name]) for a in query.atoms),
        out_estimate=out_estimate,
        sizes={a.name: len(relations[a.name]) for a in query.atoms},
        heavy_join_values={v: tuple(sorted(s)) for v, s in heavy_join.items()},
        max_joint_degree=max(joint_degree.values(), default=0),
        per_relation=tuple(per_relation),
        sampled=sample is not None,
        heavy_joint_degrees=heavy_joint,
    )
