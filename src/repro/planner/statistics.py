"""Cardinality and skew statistics feeding the plan chooser.

The tutorial's algorithms all branch on a handful of data statistics:
relation sizes, the degree profile of the join keys (heavy hitters), and
the expected output size. A real engine maintains these as sketches;
the simulator computes them exactly — the *decisions* they drive are
what the planner reproduces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.data.relation import Relation


@dataclass(frozen=True)
class JoinStatistics:
    """Statistics of one binary natural join R ⋈ S."""

    r_size: int
    s_size: int
    shared: tuple[str, ...]
    out_size: int
    max_degree_r: int
    max_degree_s: int

    @property
    def in_size(self) -> int:
        return self.r_size + self.s_size

    def has_heavy_hitter(self, p: int) -> bool:
        """Whether some join value is heavy at the tutorial's IN/p threshold."""
        threshold = self.in_size / p
        return max(self.max_degree_r, self.max_degree_s) >= threshold


def join_statistics(r: Relation, s: Relation) -> JoinStatistics:
    """Exact statistics of R ⋈ S (a real system would estimate these)."""
    shared = r.schema.common(s.schema)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    r_degrees = Counter(tuple(row[i] for i in r_idx) for row in r)
    s_degrees = Counter(tuple(row[i] for i in s_idx) for row in s)
    if shared:
        out = sum(c * s_degrees.get(k, 0) for k, c in r_degrees.items())
    else:
        out = len(r) * len(s)
    return JoinStatistics(
        r_size=len(r),
        s_size=len(s),
        shared=shared,
        out_size=out,
        max_degree_r=max(r_degrees.values(), default=0),
        max_degree_s=max(s_degrees.values(), default=0),
    )


def output_size(relations: dict[str, Relation], query) -> int:
    """Exact output cardinality of a full CQ (ground truth for planning tests)."""
    return len(query.evaluate(relations))
