"""Cost-based selection among the multiway strategies.

The tutorial's decision surface for a full conjunctive query:

- **GYM** for acyclic queries with modest output — L = O((IN + OUT)/p)
  beats one-round algorithms while OUT < p^{1−1/τ*}·IN (slide 78);
- **HyperCube** for skew-free data (or when the query is cyclic and the
  output is large) — one round, L = IN/p^{1/τ*};
- **SkewHC** when heavy hitters exist — one round, L = IN/p^{1/ψ*}.

The planner computes τ* via the LP, detects heavy hitters at the N/p
threshold, estimates OUT exactly (sketched in a real engine), and picks
accordingly. All three run paths return a
:class:`~repro.multiway.base.MultiwayRun` so callers can compare.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.multiway.base import MultiwayRun
from repro.multiway.gym import gym
from repro.multiway.hypercube import hypercube_join
from repro.multiway.skewhc import find_heavy_values, skewhc_join
from repro.query.cq import ConjunctiveQuery
from repro.query.fractional import tau_star
from repro.query.hypergraph import is_acyclic


@dataclass(frozen=True)
class MultiwayPlan:
    """A chosen multiway strategy plus the cost model's inputs."""

    algorithm: str            # "gym" | "hypercube" | "skewhc"
    acyclic: bool
    tau_star: float
    skewed: bool
    in_size: int
    out_estimate: int
    predicted_load: float

    def describe(self) -> str:
        return (
            f"{self.algorithm} (acyclic={self.acyclic}, τ*={self.tau_star:.2f}, "
            f"skewed={self.skewed}, predicted L ≈ {self.predicted_load:.0f})"
        )


def plan_multiway_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    out_estimate: int | None = None,
) -> MultiwayPlan:
    """Pick GYM / HyperCube / SkewHC for this query and input profile.

    ``out_estimate`` defaults to the exact output size (the simulator
    can afford it); pass a sketch-based estimate to model a real engine.
    """
    in_size = sum(len(relations[a.name]) for a in query.atoms)
    n_max = max((len(relations[a.name]) for a in query.atoms), default=0)
    tau = tau_star(query)
    acyclic = is_acyclic(query)
    heavy = find_heavy_values(query, dict(relations), threshold=max(n_max / p, 1.0))
    skewed = any(heavy.values())
    if out_estimate is None:
        out_estimate = len(query.evaluate(relations))

    one_round_load = in_size / p ** (1.0 / tau) if tau > 0 else in_size
    gym_load = (in_size + out_estimate) / p

    if acyclic and gym_load < one_round_load:
        return MultiwayPlan("gym", acyclic, tau, skewed, in_size, out_estimate, gym_load)
    if skewed:
        return MultiwayPlan(
            "skewhc", acyclic, tau, skewed, in_size, out_estimate, one_round_load
        )
    return MultiwayPlan(
        "hypercube", acyclic, tau, skewed, in_size, out_estimate, one_round_load
    )


def execute_multiway_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    out_estimate: int | None = None,
) -> tuple[MultiwayPlan, MultiwayRun]:
    """Plan and run; returns the decision and the execution."""
    plan = plan_multiway_join(query, relations, p, out_estimate=out_estimate)
    if plan.algorithm == "gym":
        run = gym(query, relations, p, seed=seed)
    elif plan.algorithm == "skewhc":
        run = skewhc_join(query, relations, p, seed=seed)
    else:
        run = hypercube_join(query, relations, p, seed=seed)
    return plan, run
