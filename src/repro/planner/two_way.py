"""Cost-based selection among the two-way join algorithms.

Encodes the tutorial's decision surface (slides 23–32):

- **broadcast join** when one side is smaller than the per-server share
  of the other (`min ≤ max/p`) — one round, load `|small|`;
- **Cartesian grid** when there is no join key;
- **parallel hash join** when no value is heavy at IN/p — one round,
  load ≈ IN/p;
- **skew-aware join** otherwise — still one (model) round, load
  `O(sqrt(OUT/p) + IN/p)`.

:func:`plan_two_way_join` returns the decision with its predicted load;
:func:`execute_two_way_join` runs it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.joins.base import JoinRun
from repro.joins.broadcast_join import broadcast_join
from repro.joins.cartesian import cartesian_product, predicted_cartesian_load
from repro.joins.hash_join import parallel_hash_join
from repro.joins.skew_join import skew_join
from repro.planner.statistics import JoinStatistics, join_statistics


@dataclass(frozen=True)
class TwoWayPlan:
    """A chosen algorithm plus the cost model's prediction."""

    algorithm: str            # "broadcast" | "cartesian" | "hash" | "skew"
    predicted_load: float
    statistics: JoinStatistics

    def describe(self) -> str:
        return (
            f"{self.algorithm} join (predicted L ≈ {self.predicted_load:.0f}, "
            f"IN={self.statistics.in_size}, OUT={self.statistics.out_size})"
        )


def plan_two_way_join(r: Relation, s: Relation, p: int) -> TwoWayPlan:
    """Pick the cheapest two-way algorithm for this input profile."""
    stats = join_statistics(r, s)
    if not stats.shared:
        return TwoWayPlan(
            "cartesian",
            predicted_cartesian_load(stats.r_size, stats.s_size, p),
            stats,
        )
    small = min(stats.r_size, stats.s_size)
    big = max(stats.r_size, stats.s_size)
    if small <= big / p:
        return TwoWayPlan("broadcast", float(small), stats)
    if not stats.has_heavy_hitter(p):
        return TwoWayPlan("hash", stats.in_size / p, stats)
    return TwoWayPlan(
        "skew",
        math.sqrt(stats.out_size / p) + stats.in_size / p,
        stats,
    )


def execute_two_way_join(
    r: Relation, s: Relation, p: int, seed: int = 0
) -> tuple[TwoWayPlan, JoinRun]:
    """Plan and run; returns the decision and the execution."""
    plan = plan_two_way_join(r, s, p)
    runner = {
        "broadcast": broadcast_join,
        "cartesian": cartesian_product,
        "hash": parallel_hash_join,
        "skew": skew_join,
    }[plan.algorithm]
    return plan, runner(r, s, p, seed=seed)
