"""Cost-based plan selection over the tutorial's algorithm menu."""

from repro.planner.join_order import estimate_join_size, greedy_join_order
from repro.planner.multiway import (
    MultiwayPlan,
    execute_multiway_join,
    plan_multiway_join,
)
from repro.planner.optimizer import (
    STRATEGIES,
    CandidatePlan,
    ExplainResult,
    execute_strategy,
    plan_and_execute,
    plan_query,
)
from repro.planner.statistics import (
    JoinStatistics,
    QueryStatistics,
    RelationStats,
    collect_query_statistics,
    join_statistics,
    output_size,
    relation_statistics,
)
from repro.planner.two_way import TwoWayPlan, execute_two_way_join, plan_two_way_join

__all__ = [
    "STRATEGIES",
    "CandidatePlan",
    "ExplainResult",
    "JoinStatistics",
    "MultiwayPlan",
    "QueryStatistics",
    "RelationStats",
    "TwoWayPlan",
    "collect_query_statistics",
    "estimate_join_size",
    "execute_multiway_join",
    "execute_strategy",
    "execute_two_way_join",
    "greedy_join_order",
    "join_statistics",
    "output_size",
    "plan_and_execute",
    "plan_multiway_join",
    "plan_query",
    "plan_two_way_join",
    "relation_statistics",
]
