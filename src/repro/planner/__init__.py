"""Cost-based plan selection over the tutorial's algorithm menu."""

from repro.planner.join_order import estimate_join_size, greedy_join_order
from repro.planner.multiway import (
    MultiwayPlan,
    execute_multiway_join,
    plan_multiway_join,
)
from repro.planner.statistics import JoinStatistics, join_statistics, output_size
from repro.planner.two_way import TwoWayPlan, execute_two_way_join, plan_two_way_join

__all__ = [
    "JoinStatistics",
    "MultiwayPlan",
    "TwoWayPlan",
    "estimate_join_size",
    "execute_multiway_join",
    "execute_two_way_join",
    "greedy_join_order",
    "join_statistics",
    "output_size",
    "plan_multiway_join",
    "plan_two_way_join",
]
