"""The cost-based adaptive planner: every strategy priced, cheapest wins.

Given a conjunctive query, its relation statistics
(:mod:`repro.planner.statistics`, heavy hitters at the m/p threshold of
arXiv:1401.1872), and the server count p, :func:`plan_query` enumerates
the full strategy menu —

- ``broadcast`` / ``hash`` / ``skew`` / ``cartesian`` for two-atom
  queries (the slide 23–32 decision surface, now priced instead of
  ruled);
- ``hypercube`` (one round, L = IN/p^{1/τ*}, guaranteed only skew-free);
- ``skewhc`` (one round, L = IN/p^{1/ψ*} under skew);
- ``gym`` (GHD multi-round, L = O((IN+OUT)/p), r = O(depth)) and
  ``semijoin`` (the vanilla one-node-per-round variant, r = O(#nodes))
  for acyclic connected queries

— predicts max-load L and round count for each from the closed forms of
:mod:`repro.theory.loads`, and picks the cheapest under an L-dominant
cost model with a round-count tiebreak (then a fixed precedence order,
so ties are deterministic). The result is an :class:`ExplainResult`
carrying every candidate's prediction, the statistics used, and the
arXiv:1602.06236 per-round load lower bound L ≥ OUT^{1/ρ*}/(r·p^{1/ρ*})
the predictions can be sanity-checked against. Every prediction also
carries its *conformance envelope* (factor, additive) — the constants
under which ``selftest --planner`` and the x7 bench hold the measured
L_max accountable.

:func:`execute_strategy` runs any executable strategy by name, so
``Engine.query(strategy="auto")`` and an explicitly forced strategy go
through the byte-identical code path.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.broadcast_join import broadcast_join
from repro.joins.cartesian import cartesian_product, predicted_cartesian_load
from repro.joins.hash_join import parallel_hash_join
from repro.joins.skew_join import skew_join
from repro.mpc.stats import RunStats
from repro.multiway.gym import gym
from repro.multiway.hypercube import hypercube_join
from repro.multiway.skewhc import find_heavy_values, skewhc_join
from repro.planner.statistics import QueryStatistics, collect_query_statistics
from repro.query.cq import ConjunctiveQuery
from repro.query.fractional import psi_star, rho_star, tau_star
from repro.query.ghd import width1_ghd
from repro.query.hypergraph import is_acyclic
from repro.theory.lower_bounds import join_load_lower_bound

__all__ = [
    "STRATEGIES",
    "BranchPricing",
    "CandidatePlan",
    "ExplainResult",
    "execute_strategy",
    "plan_and_execute",
    "plan_query",
    "price_branches",
]

# Deterministic tiebreak precedence (also the display order). One-round
# specialists come before the general one-round algorithms, which come
# before the multi-round family, so equal predictions resolve to the
# simplest machinery that achieves them.
STRATEGIES = (
    "scan",
    "broadcast",
    "hash",
    "skew",
    "cartesian",
    "hypercube",
    "skewhc",
    "gym",
    "semijoin",
)


@dataclass(frozen=True)
class CandidatePlan:
    """One strategy's applicability verdict and cost prediction."""

    strategy: str
    applicable: bool
    predicted_load: float | None
    predicted_rounds: int | None
    envelope_factor: float = 1.0
    envelope_additive: float = 0.0
    reason: str = ""

    @property
    def envelope(self) -> float | None:
        """The load ceiling ``factor · predicted + additive`` (None if n/a)."""
        if self.predicted_load is None:
            return None
        return self.envelope_factor * self.predicted_load + self.envelope_additive

    def within_envelope(self, measured: float) -> bool:
        """Whether a measured L_max honours this candidate's prediction."""
        ceiling = self.envelope
        return ceiling is not None and measured <= ceiling

    def describe(self) -> str:
        if not self.applicable:
            return f"{self.strategy:<10} inapplicable: {self.reason}"
        return (
            f"{self.strategy:<10} L~{self.predicted_load:<9.1f} "
            f"r={self.predicted_rounds}"
        )


@dataclass(frozen=True)
class ExplainResult:
    """The optimizer's full decision record for one query."""

    query: str
    p: int
    chosen: str
    candidates: tuple[CandidatePlan, ...]
    statistics: QueryStatistics
    tau_star: float
    rho_star: float
    psi_star: float | None
    acyclic: bool
    connected: bool
    lower_bound: float

    def candidate(self, strategy: str) -> CandidatePlan:
        for cand in self.candidates:
            if cand.strategy == strategy:
                return cand
        raise KeyError(f"no candidate named {strategy!r}")

    @property
    def chosen_plan(self) -> CandidatePlan:
        return self.candidate(self.chosen)

    @property
    def trace(self) -> tuple[str, ...]:
        """The decision trace, one line per fact (joined by describe())."""
        stats = self.statistics
        heavy = ", ".join(
            f"{var}({len(values)})"
            for var, values in stats.heavy_join_values.items()
            if values
        ) or "none"
        psi = f"{self.psi_star:.2f}" if self.psi_star is not None else "-"
        flag = lambda b: "yes" if b else "no"  # noqa: E731 - local formatter
        lines = [
            f"adaptive plan for {self.query}",
            (
                f"  p={self.p}  IN={stats.in_size}  OUT~{stats.out_estimate}  "
                f"skewed={flag(stats.skewed)}  acyclic={flag(self.acyclic)}  "
                f"connected={flag(self.connected)}"
            ),
            (
                f"  tau*={self.tau_star:.2f}  rho*={self.rho_star:.2f}  "
                f"psi*={psi}  max joint degree={stats.max_joint_degree}  "
                f"heavy join values: {heavy}"
            ),
            f"  lower bound (1 round): L >= {self.lower_bound:.1f}",
            "  candidates:",
        ]
        for cand in self.candidates:
            marker = "  <- chosen" if cand.strategy == self.chosen else ""
            lines.append(f"    {cand.describe()}{marker}")
        chosen = self.chosen_plan
        lines.append(
            f"  chosen: {self.chosen} (predicted L~{chosen.predicted_load:.1f}, "
            f"r={chosen.predicted_rounds}, envelope "
            f"{chosen.envelope_factor:.1f}x + {chosen.envelope_additive:.1f})"
        )
        return tuple(lines)

    def describe(self) -> str:
        """The golden-diffable explain trace."""
        return "\n".join(self.trace)


def _as_query(query: str | ConjunctiveQuery) -> ConjunctiveQuery:
    if isinstance(query, str):
        from repro.query.parser import parse_query

        return parse_query(query)
    return query


def _connected(query: ConjunctiveQuery) -> bool:
    """Whether the atoms form one connected hypergraph component."""
    atoms = query.atoms
    if len(atoms) <= 1:
        return True
    seen = {0}
    frontier = [0]
    while frontier:
        i = frontier.pop()
        for j in range(len(atoms)):
            if j not in seen and set(atoms[i].variables) & set(atoms[j].variables):
                seen.add(j)
                frontier.append(j)
    return len(seen) == len(atoms)


def _skew_predicted_load(stats: QueryStatistics, p: int) -> float:
    """The skew-join load prediction from the heavy-value degree profile.

    The executor peels heavy join values onto exclusive grid Cartesian
    products and hash-joins the light residue: a heavy value with a
    d_R x d_S rectangle on a g x h grid loads each server with
    d_R/g + d_S/h — at the optimal grid, 2*sqrt(area/servers). The area
    is estimated from the joint degree as (d/2)^2 (exact when the two
    sides are balanced, an overestimate otherwise — the safe direction),
    and the light residue pays IN_light/p. With no heavy values the
    prediction degenerates to IN/p, tying the plain hash join (which the
    precedence order then prefers).
    """
    joint = [
        degree
        for values in stats.heavy_joint_degrees.values()
        for _, degree in values
    ]
    heavy_area = sum((degree / 2.0) ** 2 for degree in joint)
    light_in = max(stats.in_size - sum(joint), 0)
    return 2.0 * math.sqrt(heavy_area / p) + light_in / p


def _hypercube_predicted_load(
    query: ConjunctiveQuery, stats: QueryStatistics, p: int
) -> float:
    """The share-faithful HyperCube load prediction.

    The closed form IN/p^{1/τ*} is the *fractional, balanced* optimum;
    the executor rounds shares to an integer grid and every server
    receives the **sum** of its atoms' fragments, so the faithful
    prediction is Σ_j |R_j| / Π_{v ∈ vars(R_j)} s_v under the exact
    integral assignment :func:`~repro.query.shares.optimal_shares`
    produces (the one :func:`~repro.multiway.hypercube.hypercube_join`
    will use). The two agree when the LP balances the grid, but the LP's
    max-objective is indifferent to replication cost — on a two-atom
    join with one tiny side it may put all share on a non-join variable
    and replicate the small side everywhere, which only the sum form
    prices. Falls back to the closed form if the share LP fails.
    """
    from repro.errors import OptimizationError
    from repro.query.shares import optimal_shares

    sizes = {a.name: stats.sizes[a.name] for a in query.atoms}
    try:
        shares = optimal_shares(query, sizes, p).integral
    except OptimizationError:
        tau = tau_star(query)
        return stats.in_size / p ** (1.0 / tau) if tau > 0 else float(stats.in_size)
    return sum(
        sizes[atom.name] / math.prod(shares[v] for v in atom.variables)
        for atom in query.atoms
    )


def _residual_job_estimate(
    query: ConjunctiveQuery, relations: Mapping[str, Relation], p: int
) -> int:
    """How many residual HyperCube jobs SkewHC would spawn (upper bound).

    Mirrors :func:`repro.multiway.skewhc.skewhc_join`'s own threshold
    (max relation size over p): each join variable contributes either
    "light" or one of its heavy values, so the residual count is at most
    Π(1 + |heavy(v)|). With more jobs than servers some residuals run
    on a single server and the IN/p^{1/ψ*} analysis loses its server
    allocation — the prediction is scaled accordingly.
    """
    n_max = max((len(relations[a.name]) for a in query.atoms), default=0)
    heavy = find_heavy_values(query, dict(relations), threshold=max(n_max / p, 1.0))
    jobs = 1
    for variable in query.variables:
        if len(query.atoms_with(variable)) >= 2:
            jobs *= 1 + len(heavy.get(variable, ()))
    return jobs


def plan_query(
    query: str | ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    out_estimate: int | None = None,
    sample: int | None = None,
    seed: int = 0,
    statistics: QueryStatistics | None = None,
) -> ExplainResult:
    """Price every applicable strategy and pick the cheapest.

    The cost model is L-dominant: candidates are ranked by predicted
    max-load, then by predicted round count, then by the fixed
    :data:`STRATEGIES` precedence (so equal predictions resolve
    deterministically, independent of atom order). ``statistics`` lets
    callers supply pre-collected (possibly sampled) statistics; by
    default they are gathered exactly via
    :func:`~repro.planner.statistics.collect_query_statistics`.
    """
    cq = _as_query(query)
    if p <= 0:
        raise QueryError("the planner needs at least one server")
    if not cq.atoms:
        raise QueryError("cannot plan an empty query")
    stats = statistics if statistics is not None else collect_query_statistics(
        cq, relations, p, out_estimate=out_estimate, sample=sample, seed=seed
    )

    tau = tau_star(cq)
    rho = rho_star(cq)
    acyclic = is_acyclic(cq)
    connected = _connected(cq)
    out = stats.out_estimate
    in_size = stats.in_size
    maxdeg = stats.max_joint_degree
    skewed = stats.skewed
    psi = psi_star(cq) if skewed and len(cq.atoms) >= 2 else None
    lower = (
        join_load_lower_bound(out, rho, p, rounds=1)
        if out > 0 and len(cq.atoms) >= 2
        else 0.0
    )

    if len(cq.atoms) == 1:
        scan = CandidatePlan("scan", True, 0.0, 0, 1.0, 0.0, "single atom")
        return ExplainResult(
            str(cq), p, "scan", (scan,), stats, tau, rho, psi,
            acyclic, connected, 0.0,
        )

    atoms = cq.atoms
    two_atoms = len(atoms) == 2
    shared = (
        tuple(sorted(set(atoms[0].variables) & set(atoms[1].variables)))
        if two_atoms
        else ()
    )
    sizes = [stats.sizes[a.name] for a in atoms]
    candidates: list[CandidatePlan] = []

    def add(strategy: str, load: float, rounds: int,
            factor: float, additive: float, reason: str = "") -> None:
        candidates.append(CandidatePlan(
            strategy, True, load, rounds, factor, additive, reason
        ))

    def skip(strategy: str, reason: str) -> None:
        candidates.append(CandidatePlan(strategy, False, None, None, reason=reason))

    # ----- two-atom specialists
    if two_atoms and shared:
        small = min(sizes)
        add("broadcast", float(small), 1, 1.5, 4.0)
        # Hash-partitioning floors at the heaviest joint key degree: all
        # tuples of one value meet on one server regardless of p.
        add("hash", max(in_size / p, float(maxdeg)), 1, 4.0, maxdeg + 8.0)
        skew_load = _skew_predicted_load(stats, p)
        add("skew", skew_load, 1, 6.0, p ** 2 + maxdeg + 8.0)
        skip("cartesian", "the atoms share variables")
    elif two_atoms:
        for name in ("broadcast", "hash", "skew"):
            skip(name, "the atoms share no join variable")
        add("cartesian", predicted_cartesian_load(sizes[0], sizes[1], p), 1, 3.0, 8.0)
    else:
        for name in ("broadcast", "hash", "skew", "cartesian"):
            skip(name, "only applies to two-atom queries")

    # ----- one-round share-based algorithms
    one_round_free = _hypercube_predicted_load(cq, stats, p)
    if skewed:
        skip("hypercube", "heavy hitters void the IN/p^{1/tau*} guarantee")
    else:
        add("hypercube", one_round_free, 1, 4.0, p + 8.0)

    if skewed and two_atoms and shared:
        # On a two-atom join SkewHC's residual decomposition degenerates
        # to the skew join's heavy/light split — identical price, and
        # the tie then resolves to the dedicated specialist by
        # precedence.
        skewhc_load = skew_load
    elif skewed and psi is not None and psi > 0:
        skewhc_load = in_size / p ** (1.0 / psi)
    else:
        skewhc_load = one_round_free
    jobs = _residual_job_estimate(cq, relations, p)
    if jobs > p:
        # More residual jobs than servers: residuals share servers and
        # the per-residual allocation argument degrades proportionally.
        skewhc_load *= jobs / p
    add(
        "skewhc", skewhc_load, 1, 6.0,
        p + 8.0 + math.sqrt(max(out, 1) / p) + maxdeg,
        reason=f"{jobs} residual jobs" if jobs > p else "",
    )

    # ----- multi-round GHD family
    if not acyclic:
        skip("gym", "the query is cyclic (no width-1 GHD)")
        skip("semijoin", "the query is cyclic (no width-1 GHD)")
    elif not connected:
        skip("gym", "the query hypergraph is disconnected")
        skip("semijoin", "the query hypergraph is disconnected")
    else:
        ghd = width1_ghd(cq)
        depth = max(ghd.depth, 1)
        nodes = len(ghd.nodes())
        gym_load = (in_size + out) / p
        add("gym", gym_load, 3 * depth, 6.0, maxdeg + p + 8.0)
        add("semijoin", gym_load, 3 * max(nodes - 1, 1), 6.0, maxdeg + p + 8.0)

    ranked = sorted(
        (c for c in candidates if c.applicable),
        key=lambda c: (
            c.predicted_load, c.predicted_rounds, STRATEGIES.index(c.strategy)
        ),
    )
    if not ranked:
        raise QueryError(f"no strategy applies to {cq}")
    ordered = tuple(
        sorted(candidates, key=lambda c: STRATEGIES.index(c.strategy))
    )
    return ExplainResult(
        str(cq), p, ranked[0].strategy, ordered, stats, tau, rho, psi,
        acyclic, connected, lower,
    )


# ------------------------------------------------------------------ execution


_TWO_WAY_RUNNERS = {
    "broadcast": broadcast_join,
    "hash": parallel_hash_join,
    "skew": skew_join,
    "cartesian": cartesian_product,
}


def _aligned(atom, rel: Relation) -> Relation:
    if set(rel.schema.attributes) != set(atom.variables):
        raise QueryError(
            f"relation {rel.name} attributes {rel.schema.attributes} do not "
            f"match atom {atom}"
        )
    if tuple(rel.schema.attributes) != atom.variables:
        return rel.project(list(atom.variables))
    return rel


def execute_strategy(
    query: str | ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    strategy: str,
    seed: int = 0,
) -> tuple[Relation, RunStats]:
    """Run one strategy by name; output is projected to query-variable order.

    This is the single dispatch point shared by ``strategy="auto"`` and
    explicitly forced strategies, so forcing the planner's choice is
    byte-identical to letting it decide. Strategies that cannot execute
    on the query's *shape* (atom count, shared variables, cyclicity)
    raise :class:`~repro.errors.QueryError`; strategies whose *guarantee*
    does not apply (e.g. HyperCube on skewed data) still run.
    """
    cq = _as_query(query)
    atoms = cq.atoms
    if strategy not in STRATEGIES:
        raise QueryError(
            f"unknown strategy {strategy!r} (choose from {', '.join(STRATEGIES)})"
        )
    bindings = {a.name: _aligned(a, relations[a.name]) for a in atoms}
    variables = list(cq.variables)

    if strategy == "scan":
        if len(atoms) != 1:
            raise QueryError("scan applies to single-atom queries only")
        return bindings[atoms[0].name].project(variables, name="OUT"), RunStats(p)
    if len(atoms) == 1:
        raise QueryError("single-atom queries only support the 'scan' strategy")

    if strategy in _TWO_WAY_RUNNERS:
        if len(atoms) != 2:
            raise QueryError(f"{strategy} applies to two-atom queries only")
        shared = set(atoms[0].variables) & set(atoms[1].variables)
        if strategy == "cartesian" and shared:
            raise QueryError("cartesian applies only when the atoms share no variables")
        if strategy != "cartesian" and not shared:
            raise QueryError(f"{strategy} needs a shared join variable")
        left, right = (bindings[a.name] for a in atoms)
        if strategy == "skew":
            # Peel at the statistics' per-relation m/p rule
            # (arXiv:1401.1872) rather than skew_join's IN/p default, so
            # the values the cost model priced as grid products are the
            # ones the executor actually peels — an IN/p cut leaves
            # joint degrees up to 2·IN/p in the light hash join, voiding
            # the prediction.
            threshold = (len(left) / p, len(right) / p)
            run = skew_join(left, right, p, seed=seed, threshold=threshold)
        else:
            run = _TWO_WAY_RUNNERS[strategy](left, right, p, seed=seed)
        return run.output.project(variables, name="OUT"), run.stats

    if strategy == "hypercube":
        run = hypercube_join(cq, bindings, p, seed=seed)
    elif strategy == "skewhc":
        run = skewhc_join(cq, bindings, p, seed=seed)
    else:  # gym | semijoin
        if not is_acyclic(cq):
            raise QueryError(f"{strategy} needs an acyclic query")
        if not _connected(cq):
            raise QueryError(f"{strategy} needs a connected query hypergraph")
        run = gym(
            cq, bindings, p, seed=seed,
            variant="optimized" if strategy == "gym" else "vanilla",
        )
    return run.output.project(variables, name="OUT"), run.stats


@dataclass(frozen=True)
class BranchPricing:
    """The optimizer's verdict on a k-way query split (see repro.service).

    ``explains`` holds one full :class:`ExplainResult` per branch — each
    branch is an independent query over its mod-partition of the split
    relation, so each gets its own statistics, heavy-hitter profile, and
    strategy choice. ``predicted_load`` is the *sum* of the branches'
    chosen predictions: the service executes branches as independent
    engine calls over the same ``p`` simulated servers, so per-server
    load accumulates across branches (the pessimistic, admission-safe
    reading; branches that run on disjoint server pools would cost the
    max instead).
    """

    branches: int
    explains: tuple[ExplainResult, ...]

    @property
    def predicted_load(self) -> float:
        return sum(
            e.chosen_plan.predicted_load or 0.0 for e in self.explains
        )

    @property
    def predicted_rounds(self) -> int:
        return sum(
            e.chosen_plan.predicted_rounds or 0 for e in self.explains
        )

    @property
    def chosen(self) -> tuple[str, ...]:
        return tuple(e.chosen for e in self.explains)


def price_branches(
    query: str | ConjunctiveQuery,
    branch_bindings: Sequence[Mapping[str, Relation]],
    p: int,
    seed: int = 0,
) -> BranchPricing:
    """Price every branch of a split query through the standard planner.

    The service's query splitter partitions one relation into k disjoint
    mod-based fragments; each element of ``branch_bindings`` is the full
    relation map for one branch. Pricing each branch independently is
    what makes the split *adaptive*: a branch that inherits a heavy
    hitter keeps the skew strategy while its uniform siblings drop to
    plain hash joins.
    """
    cq = _as_query(query)
    if not branch_bindings:
        raise QueryError("price_branches needs at least one branch")
    explains = tuple(
        plan_query(cq, bindings, p, seed=seed) for bindings in branch_bindings
    )
    return BranchPricing(len(explains), explains)


def plan_and_execute(
    query: str | ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    out_estimate: int | None = None,
    strategy: str = "auto",
    sample: int | None = None,
) -> tuple[ExplainResult, str, Relation, RunStats]:
    """Plan, then execute either the chosen or a forced strategy.

    Returns ``(explain, executed_strategy, output, stats)``.
    """
    cq = _as_query(query)
    explain = plan_query(
        cq, relations, p, out_estimate=out_estimate, sample=sample, seed=seed
    )
    executed = explain.chosen if strategy == "auto" else strategy
    output, stats = execute_strategy(cq, relations, p, executed, seed=seed)
    return explain, executed, output, stats
