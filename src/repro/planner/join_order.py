"""Join-order selection for iterative binary plans.

Slide 63 shows that a bad binary-plan order can materialize intermediates
far larger than IN — the classic join-ordering problem. This module
implements the standard greedy heuristic: start from the relation pair
with the smallest estimated join, then repeatedly attach the atom that
keeps the intermediate smallest (preferring connected atoms so Cartesian
steps only happen when the query itself is disconnected).

Cardinality estimates use exact degree statistics (the simulator can
afford them); the *decision procedure* is what a real optimizer runs on
sketched statistics.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.query.cq import ConjunctiveQuery


def estimate_join_size(left: Relation, right: Relation) -> int:
    """Exact |left ⋈ right| from degree profiles (product if disjoint)."""
    shared = left.schema.common(right.schema)
    if not shared:
        return len(left) * len(right)
    l_idx = left.schema.indices(shared)
    r_idx = right.schema.indices(shared)
    l_deg = Counter(tuple(row[i] for i in l_idx) for row in left)
    r_deg = Counter(tuple(row[i] for i in r_idx) for row in right)
    return sum(c * r_deg.get(k, 0) for k, c in l_deg.items())


def greedy_join_order(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> list[str]:
    """An atom order whose running intermediate stays greedily minimal.

    At each step the unused atom minimizing the estimated size of
    (current intermediate ⋈ atom) is appended; ties and the first pick
    fall back to atom-size order. Returns atom names for
    :func:`repro.multiway.binary_plans.binary_join_plan`'s ``order=``.
    """
    remaining = {a.name for a in query.atoms}
    if not remaining:
        raise QueryError("query has no atoms")
    aligned = {}
    for atom in query.atoms:
        rel = relations.get(atom.name)
        if rel is None:
            raise QueryError(f"no relation bound for atom {atom.name!r}")
        if rel.schema.attributes != atom.variables:
            rel = rel.project(list(atom.variables))
        aligned[atom.name] = rel

    # Seed: the cheapest pair (or the single atom).
    if len(remaining) == 1:
        return list(remaining)
    names = sorted(remaining)
    best_pair = None
    best_size = None
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            size = estimate_join_size(aligned[a], aligned[b])
            if best_size is None or size < best_size:
                best_size = size
                best_pair = (a, b)
    assert best_pair is not None
    order = list(best_pair)
    remaining -= set(best_pair)

    current = aligned[order[0]].join(aligned[order[1]])
    while remaining:
        connected = [
            n for n in sorted(remaining)
            if current.schema.common(aligned[n].schema)
        ]
        candidates = connected or sorted(remaining)
        next_name = min(
            candidates, key=lambda n: estimate_join_size(current, aligned[n])
        )
        order.append(next_name)
        remaining.remove(next_name)
        current = current.join(aligned[next_name])
    return order
