"""Similarity (band) joins via parallel sorting (slide 99).

Slide 99 lists similarity joins among the applications of parallel
sorting. The 1-D *band join*

    OUT = { (a, b) ∈ R × S : |a.key − b.key| ≤ ε }

sorts the union of both inputs by key (PSRS), so matching pairs land in
the same or adjacent key ranges; each server then joins its range
locally, with items within ε of a range boundary *replicated* to the
neighbouring server so no cross-boundary pair is missed. Loads stay at
O(N/p + OUT/p + boundary replication).
"""

from __future__ import annotations

from typing import Any

from repro.data.relation import Relation
from repro.joins.base import JoinRun
from repro.mpc.cluster import Cluster
from repro.sorting.psrs import IndexKey, psrs_partition

Row = tuple[Any, ...]


def band_join(
    r: Relation,
    s: Relation,
    r_key: str,
    s_key: str,
    epsilon: float,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
    audit: bool | None = None,
) -> JoinRun:
    """All pairs (r_row, s_row) with |r.key − s.key| ≤ ε, distributed.

    Output schema: R's attributes followed by S's (prefixed on clash).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    r_pos = r.schema.index(r_key)
    s_pos = s.schema.index(s_key)

    cluster = Cluster(p, seed=seed, audit=audit)
    union_rows = [(row[r_pos], 0, i, row) for i, row in enumerate(r)]
    union_rows += [(row[s_pos], 1, len(r) + i, row) for i, row in enumerate(s)]
    cluster.scatter_rows(union_rows, "U")

    splitters = psrs_partition(cluster, "U", "U@sorted", key=IndexKey(0, 2))
    # The PSRS sort key is composite (key, serial); recover the numeric
    # boundaries. Range i covers keys in (boundary[i-1], boundary[i]].
    boundaries = [b[0] for b in splitters]

    # Replicate every item to all ranges its ε-window [key−ε, key+ε]
    # intersects (handles ε wider than a range, including empty ranges).
    import bisect

    with cluster.round("band-replicate") as rnd:
        for server in cluster.servers:
            for item in server.get("U@sorted"):
                key = item[0]
                lo = bisect.bisect_left(boundaries, key - epsilon)
                hi = bisect.bisect_right(boundaries, key + epsilon)
                for bucket in range(lo, min(hi, p - 1) + 1):
                    if bucket != server.sid:
                        rnd.send(bucket, "U@extra", item)

    out_rows: list[Row] = []
    seen_pairs: set[tuple[int, int]] = set()
    for server in cluster.servers:
        local = server.get("U@sorted") + server.get("U@extra")
        r_items = [(t[0], t[2], t[3]) for t in local if t[1] == 0]
        s_items = [(t[0], t[2], t[3]) for t in local if t[1] == 1]
        for rk, rid, rrow in r_items:
            for sk, sid_, srow in s_items:
                if abs(rk - sk) <= epsilon and (rid, sid_) not in seen_pairs:
                    seen_pairs.add((rid, sid_))
                    out_rows.append(rrow + srow)

    out_attrs = list(r.schema.attributes) + [
        a if a not in r.schema else f"s_{a}" for a in s.schema.attributes
    ]
    output = Relation(output_name, out_attrs, out_rows)
    return JoinRun(output, cluster.stats)


def reference_band_join(
    r: Relation, s: Relation, r_key: str, s_key: str, epsilon: float
) -> list[Row]:
    """Brute-force ground truth."""
    r_pos = r.schema.index(r_key)
    s_pos = s.schema.index(s_key)
    return sorted(
        rrow + srow
        for rrow in r
        for srow in s
        if abs(rrow[r_pos] - srow[s_pos]) <= epsilon
    )
