"""Parallel sorting in the MPC model: PSRS and multi-round sample sort."""

from repro.sorting.band_join import band_join, reference_band_join
from repro.sorting.multiround import expected_rounds, multiround_sort
from repro.sorting.psrs import psrs_partition, psrs_sort
from repro.sorting.splitters import (
    bucket_of,
    buckets_of,
    choose_splitters,
    random_sample,
    regular_sample,
)

__all__ = [
    "band_join",
    "bucket_of",
    "buckets_of",
    "choose_splitters",
    "expected_rounds",
    "multiround_sort",
    "psrs_partition",
    "psrs_sort",
    "random_sample",
    "reference_band_join",
    "regular_sample",
]
