"""Multi-round sorting under a per-round load cap (slides 103–105).

When the permitted load ``L`` is small (many servers, ``p ≈ N/L``), PSRS
breaks down: its coordinator must absorb ``p(p−1)`` samples in one round.
Goodrich's BSP algorithm sorts with load ``L`` in ``O(log_L N)`` rounds;
the tutorial notes it is "very complex", so — per the survey's own
suggestion — we implement the standard simplification: a *hierarchical
sample sort*. Each level splits a group of ``g`` servers into ``f ≈ √L``
sub-ranges using sampled splitters, recursing until groups are single
servers. The depth is ``log_f p = O(log_L N)`` when ``L = Θ(N/p)``,
reproducing Goodrich's round bound; per-level partition loads stay O(L).

The round lower bound Ω(log_L N) (slide 105) is checked against this
implementation in the benchmarks.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from typing import Any

from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats
from repro.sorting.psrs import RowKey, identity_key
from repro.sorting.splitters import bucket_of, choose_splitters, regular_sample

Key = Callable[[Any], Any]


def multiround_sort(
    items: Sequence[Any],
    p: int,
    load_cap: int,
    key: Key = identity_key,
    seed: int = 0,
    audit: bool | None = None,
) -> tuple[list[Any], RunStats]:
    """Sort with per-round load ≈ ``load_cap`` in O(log_L N) rounds.

    Returns ``(sorted_items, stats)``. ``load_cap`` only steers the fanout
    (it is a target, not a hard cap — sampling noise can overshoot by a
    constant factor, as in the original analysis).
    """
    if load_cap < 2:
        raise ValueError("load_cap must be at least 2")
    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter_rows([(x,) for x in items], "run")
    row_key = RowKey(key)  # picklable adapter: process-backend eligible

    # Groups of servers owning one key range each, refined level by level.
    fanout = max(2, math.isqrt(load_cap))
    groups: list[list[int]] = [list(range(p))]
    level = 0
    while any(len(g) > 1 for g in groups):
        groups = _refine_level(cluster, groups, fanout, row_key, level)
        level += 1

    final_payloads = [server.take("run") for server in cluster.servers]
    for server, local in zip(
        cluster.servers, cluster.map_servers("psrs.finalsort", final_payloads, row_key)
    ):
        server.put("run", local)
    output = [row[0] for row in cluster.gather("run")]
    return output, cluster.stats


def _refine_level(
    cluster: Cluster,
    groups: list[list[int]],
    fanout: int,
    row_key: Key,
    level: int,
) -> list[list[int]]:
    """One level: every multi-server group splits into ≤ fanout subgroups.

    All groups advance in the same two rounds (sample gather + partition),
    which is what makes the total round count the tree depth, not the
    node count.
    """
    plans: list[tuple[list[int], list[list[int]], list[Any]]] = []

    # Round 1: within each group, regular samples to the group leader.
    with cluster.round(f"msort-sample-{level}") as rnd:
        for group in groups:
            if len(group) <= 1:
                continue
            leader = group[0]
            f = min(fanout, len(group))
            for sid in group:
                local = sorted(cluster.servers[sid].get("run"), key=row_key)
                for item in regular_sample(local, f - 1):
                    rnd.send(leader, "samples", (row_key(item),))

    # Leaders choose splitters (consumed locally, no extra round needed
    # beyond the implicit broadcast below, folded into the partition round
    # by sending items directly — splitters are tiny).
    for group in groups:
        if len(group) <= 1:
            continue
        leader = group[0]
        f = min(fanout, len(group))
        pooled = [k for (k,) in cluster.servers[leader].take("samples")]
        splitters = choose_splitters(pooled, f)
        subgroups = _split_servers(group, f)
        plans.append((group, subgroups, splitters))

    # Round 2: partition each group's data into its subgroups.
    with cluster.round(f"msort-partition-{level}") as rnd:
        for group, subgroups, splitters in plans:
            counters = [0] * len(subgroups)
            for sid in group:
                for item in cluster.servers[sid].take("run"):
                    b = min(bucket_of(row_key(item), splitters), len(subgroups) - 1)
                    target_group = subgroups[b]
                    dest = target_group[counters[b] % len(target_group)]
                    counters[b] += 1
                    rnd.send(dest, "run", item)

    next_groups: list[list[int]] = []
    for group in groups:
        if len(group) <= 1:
            next_groups.append(group)
    for _group, subgroups, _splitters in plans:
        next_groups.extend(subgroups)
    return next_groups


def _split_servers(group: list[int], parts: int) -> list[list[int]]:
    """Split a server group into ``parts`` contiguous non-empty subgroups."""
    parts = min(parts, len(group))
    base, extra = divmod(len(group), parts)
    subgroups = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        subgroups.append(group[start : start + size])
        start += size
    return subgroups


def expected_rounds(n: int, load_cap: int) -> float:
    """The Goodrich round bound Θ(log_L N) this algorithm targets."""
    if load_cap <= 1:
        raise ValueError("load_cap must exceed 1")
    return math.log(max(n, 2)) / math.log(load_cap)
