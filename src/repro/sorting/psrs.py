"""Parallel Sort by Regular Sampling — PSRS (slides 100–102).

The algorithm:

1. each server sorts its local fragment and extracts ``p − 1`` regular
   samples;
2. samples are gathered on a coordinator, which sorts the pooled
   ``p(p−1)`` samples and picks every ``p``-th as the global splitters;
3. splitters are broadcast; every item is routed to its interval's owner;
4. each server sorts what it received.

Load analysis (slide 102): L = O(N/p) provided ``p ≪ N^{1/3}`` — the
sample-gather round costs ``p(p−1) ≤ N/p`` exactly when ``p³ ≲ N``.
:func:`psrs_partition` is the in-cluster primitive (reused by the
parallel sort join); :func:`psrs_sort` is the standalone entry point.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.kernels.columnar import take_rows
from repro.kernels.config import kernels_enabled
from repro.kernels.partition import partition_indices
from repro.kernels.splitters import searchsorted_buckets, tuple_buckets
from repro.mpc.cluster import Cluster, RoundContext
from repro.mpc.stats import RunStats
from repro.sorting.splitters import (
    bucket_of,
    choose_splitters,
    random_sample,
    regular_sample,
)

Key = Callable[[Any], Any]


def identity_key(item: Any) -> Any:
    """The default sort key. A named module-level function (not a
    lambda) so it pickles, keeping default-keyed sorts eligible for the
    process backend; an unpicklable user key transparently falls back
    to inline execution."""
    return item


class IndexKey:
    """Picklable key projecting fixed row positions (``row[i] for i in
    positions``). The sort-join/band-join equivalent of a key lambda."""

    __slots__ = ("positions",)

    def __init__(self, *positions: int) -> None:
        self.positions = positions

    def __call__(self, row: Any) -> tuple:
        return tuple(row[i] for i in self.positions)


class RowKey:
    """Picklable ``key(row[0])`` adapter for ``(item, ...)`` tagged rows."""

    __slots__ = ("key",)

    def __init__(self, key: Key) -> None:
        self.key = key

    def __call__(self, row: Any) -> Any:
        return self.key(row[0])


class PositionTiebreak:
    """Key wrapper for ``(item, original_position)`` rows.

    Sorts by ``key(item)`` with the original position as tie-break, so
    heavily duplicated keys still spread evenly across servers. A class
    instead of a closure so it pickles whenever the wrapped key does.
    """

    __slots__ = ("key",)

    def __init__(self, key: Key) -> None:
        self.key = key

    def __call__(self, row: Any) -> Any:
        return (self.key(row[0]), row[1])


def psrs_localsort_chunk(payloads: list, common) -> list:
    """Exec task ``psrs.localsort``: phase-1 local sort + splitter samples.

    Payloads are ``(fragment rows, server id)``; returns
    ``(sorted rows, sampled items)`` per server. The server id seeds
    random sampling exactly as the historical loop did.
    """
    key, sample_count, use_random_sampling = common
    out = []
    for rows, sid in payloads:
        local = sorted(rows, key=key)
        if use_random_sampling:
            samples = random_sample(local, sample_count, seed=sid + 1)
        else:
            samples = regular_sample(local, sample_count)
        out.append((local, samples))
    return out


def psrs_finalsort_chunk(payloads: list, common) -> list:
    """Exec task ``psrs.finalsort``: phase-4 sort of each routed interval."""
    return [sorted(rows, key=common) for rows in payloads]


def _route_by_splitters(
    rnd: RoundContext,
    items: list[Any],
    key: Key,
    splitters: list[Any],
    out_fragment: str,
) -> bool:
    """Batched phase-3 routing via the splitter-search kernels.

    ``False`` means no fast path (non-integer keys / no splitters); the
    caller then routes item-at-a-time through ``bucket_of``.
    """
    if not kernels_enabled() or not items or not splitters:
        return not items
    keys = [key(item) for item in items]
    if isinstance(keys[0], tuple):
        destinations = tuple_buckets(keys, splitters)
    else:
        destinations = searchsorted_buckets(keys, splitters)
    if destinations is None:
        return False
    for dest, indices in enumerate(
        partition_indices(destinations, len(splitters) + 1)
    ):
        if len(indices):
            rnd.send_rows(dest, out_fragment, take_rows(items, indices))
    return True


def psrs_partition(
    cluster: Cluster,
    fragment: str,
    out_fragment: str,
    key: Key = identity_key,
    use_random_sampling: bool = False,
    coordinator: int = 0,
) -> list[Any]:
    """Range-partition ``fragment`` across the cluster and sort locally.

    After the call, server ``i`` holds ``out_fragment`` = the items of the
    ``i``-th key interval, locally sorted; the concatenation over servers
    is globally sorted. Returns the splitters used. Charges three rounds:
    sample gather, splitter broadcast, partition.
    """
    p = cluster.p

    # Phase 1: local sort + samples to the coordinator. The sorts run
    # through the exec backend (concurrently under the process backend);
    # sample *sends* stay here, on the round's coordinator-side buffers.
    with cluster.round("psrs-sample-gather") as rnd:
        payloads = [(server.take(fragment), server.sid) for server in cluster.servers]
        sorted_fragments = cluster.map_servers(
            "psrs.localsort", payloads, (key, p - 1, use_random_sampling)
        )
        for server, (local, samples) in zip(cluster.servers, sorted_fragments):
            server.put(f"{fragment}@sorted", local)
            for item in samples:
                rnd.send(coordinator, f"{fragment}@samples", (key(item),))

    # Phase 2: coordinator picks splitters and broadcasts them.
    pooled = [k for (k,) in cluster.servers[coordinator].take(f"{fragment}@samples")]
    splitters = choose_splitters(pooled, p)
    with cluster.round("psrs-splitter-broadcast") as rnd:
        for splitter in splitters:
            rnd.broadcast(f"{fragment}@splitters", (splitter,))

    # Phase 3: route every item to its interval owner; sort on arrival.
    with cluster.round("psrs-partition") as rnd:
        for server in cluster.servers:
            server.take(f"{fragment}@splitters")  # consumed; value known globally
            items = server.take(f"{fragment}@sorted")
            if not _route_by_splitters(rnd, items, key, splitters, out_fragment):
                for item in items:
                    rnd.send(bucket_of(key(item), splitters), out_fragment, item)
    final_payloads = [server.take(out_fragment) for server in cluster.servers]
    for server, local in zip(
        cluster.servers, cluster.map_servers("psrs.finalsort", final_payloads, key)
    ):
        server.put(out_fragment, local)
    return splitters


def psrs_sort(
    items: Sequence[Any],
    p: int,
    key: Key = identity_key,
    seed: int = 0,
    use_random_sampling: bool = False,
    audit: bool | None = None,
) -> tuple[list[Any], RunStats]:
    """Sort ``items`` on a fresh ``p``-server cluster with PSRS.

    Returns ``(sorted_items, stats)`` where ``sorted_items`` is the
    concatenation of the per-server sorted fragments. Ties are broken by
    the item's original position, so heavily duplicated keys still spread
    evenly across servers (the partition load stays O(N/p)).
    """
    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter_rows([(x, i) for i, x in enumerate(items)], "items")
    psrs_partition(
        cluster,
        "items",
        "items@out",
        key=PositionTiebreak(key),
        use_random_sampling=use_random_sampling,
    )
    output = [row[0] for row in cluster.gather("items@out")]
    return output, cluster.stats
