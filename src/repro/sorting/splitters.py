"""Splitter selection for range-partitioned parallel sorting (slides 100–101).

Splitters ``y_1 < … < y_{b-1}`` cut the key space into ``b`` intervals;
a partition round then routes every item to its interval's owner. PSRS
derives splitters from *regular samples* — each server contributes the
items at regular positions of its locally sorted data — which bounds the
final imbalance; modern implementations use random samples instead
(slide 102), which is cheaper but probabilistic. Both are provided.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.kernels.config import kernels_enabled
from repro.kernels.splitters import searchsorted_buckets, tuple_buckets


def regular_sample(sorted_items: Sequence[Any], count: int) -> list[Any]:
    """``count`` items at regular positions of a locally *sorted* list.

    Positions follow PSRS: item ``i·len/(count+1)`` for i = 1..count.
    Fewer items than requested samples yields all items.
    """
    n = len(sorted_items)
    if count <= 0 or n == 0:
        return []
    if n <= count:
        return list(sorted_items)
    return [sorted_items[(i * n) // (count + 1)] for i in range(1, count + 1)]


def random_sample(items: Sequence[Any], count: int, seed: int = 0) -> list[Any]:
    """``count`` random items (without replacement when possible)."""
    n = len(items)
    if count <= 0 or n == 0:
        return []
    rng = np.random.default_rng(seed)
    if n <= count:
        return list(items)
    positions = rng.choice(n, size=count, replace=False)
    return [items[i] for i in sorted(positions.tolist())]


def choose_splitters(samples: Sequence[Any], buckets: int) -> list[Any]:
    """The ``buckets - 1`` final splitters from the pooled samples.

    PSRS's rule: sort the pooled samples, take every ``len/buckets``-th.
    """
    if buckets <= 1:
        return []
    pool = sorted(samples)
    if not pool:
        return []
    splitters = []
    for i in range(1, buckets):
        pos = min((i * len(pool)) // buckets, len(pool) - 1)
        splitters.append(pool[pos])
    return splitters


def bucket_of(value: Any, splitters: Sequence[Any]) -> int:
    """Index of the interval ``value`` falls in (0 … len(splitters)).

    Interval ``i`` is ``(splitters[i-1], splitters[i]]``-style with the
    convention that values equal to a splitter go left, so splitters made
    of duplicated keys still spread data.
    """
    return bisect.bisect_left(splitters, value)


def buckets_of(values: Sequence[Any], splitters: Sequence[Any]) -> list[int]:
    """:func:`bucket_of` for a batch of keys, vectorized when possible.

    Integer keys (scalars or uniform tuples) go through the numpy
    splitter-search kernels; anything else falls back to per-key bisect.
    The result is always identical to ``[bucket_of(v, splitters) for v in
    values]``.
    """
    if kernels_enabled() and len(values) and len(splitters):
        if isinstance(values[0], tuple):
            array = tuple_buckets(values, splitters)
        else:
            array = searchsorted_buckets(values, splitters)
        if array is not None:
            return [int(b) for b in array.tolist()]
    return [bisect.bisect_left(splitters, value) for value in values]
