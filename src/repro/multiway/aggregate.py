"""Distributed grouping and aggregation (the slide-52 workload).

The tutorial motivates multi-round processing with

    SELECT cKey, month, sum(price) FROM Orders, Customers
    GROUP BY cKey, month

Two strategies for the GROUP BY stage:

- :func:`group_by` — one-phase: shuffle every tuple by its group key and
  fold locally. Load ≈ IN/p, but a heavy group concentrates on one
  server (the same skew problem as the hash join).
- :func:`two_phase_group_by` — pre-aggregate locally (free compute),
  then shuffle only the *partial aggregates*: at most one tuple per
  (server, group), so the shuffle moves ≤ p·G tuples and each server
  receives ≤ G — immune to value skew for algebraic aggregates.

Aggregates are algebraic: ``fold(values) -> partial`` and
``merge(partials) -> result`` (sum/count/min/max style).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats

Row = tuple[Any, ...]


def group_by(
    relation: Relation,
    keys: Sequence[str],
    value: str,
    fold: Callable[[list[Any]], Any],
    p: int,
    seed: int = 0,
    output_name: str = "AGG",
    audit: bool | None = None,
) -> tuple[Relation, RunStats]:
    """One-phase hash GROUP BY: route rows by key, fold each group locally."""
    key_idx = relation.schema.indices(keys)
    value_idx = relation.schema.index(value)

    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter(relation, "G@in")
    h = cluster.hash_function(0)
    with cluster.round("groupby-shuffle") as rnd:
        for server in cluster.servers:
            for row in server.take("G@in"):
                rnd.send(h(tuple(row[i] for i in key_idx)), "G@j", row)

    out_rows: list[Row] = []
    for server in cluster.servers:
        groups: dict[Row, list[Any]] = {}
        for row in server.take("G@j"):
            groups.setdefault(tuple(row[i] for i in key_idx), []).append(row[value_idx])
        for key, values in groups.items():
            out_rows.append(key + (fold(values),))

    schema = Schema(list(keys) + [f"{value}_agg"])
    return Relation(output_name, schema, out_rows), cluster.stats


def two_phase_group_by(
    relation: Relation,
    keys: Sequence[str],
    value: str,
    fold: Callable[[list[Any]], Any],
    merge: Callable[[list[Any]], Any],
    p: int,
    seed: int = 0,
    output_name: str = "AGG",
    audit: bool | None = None,
) -> tuple[Relation, RunStats]:
    """Combiner-based GROUP BY: local partials, then shuffle one row per
    (server, group). ``merge`` combines the partial ``fold`` results.
    """
    key_idx = relation.schema.indices(keys)
    value_idx = relation.schema.index(value)

    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter(relation, "G@in")
    h = cluster.hash_function(0)
    with cluster.round("groupby-partials") as rnd:
        for server in cluster.servers:
            local: dict[Row, list[Any]] = {}
            for row in server.take("G@in"):
                local.setdefault(tuple(row[i] for i in key_idx), []).append(
                    row[value_idx]
                )
            for key, values in local.items():
                rnd.send(h(key), "G@partial", key + (fold(values),))

    out_rows: list[Row] = []
    for server in cluster.servers:
        partials: dict[Row, list[Any]] = {}
        for row in server.take("G@partial"):
            partials.setdefault(row[:-1], []).append(row[-1])
        for key, parts in partials.items():
            out_rows.append(key + (merge(parts),))

    schema = Schema(list(keys) + [f"{value}_agg"])
    return Relation(output_name, schema, out_rows), cluster.stats


def reference_group_by(
    relation: Relation,
    keys: Sequence[str],
    value: str,
    fold: Callable[[list[Any]], Any],
    output_name: str = "AGG",
) -> Relation:
    """Sequential ground truth for the distributed variants."""
    key_idx = relation.schema.indices(keys)
    value_idx = relation.schema.index(value)
    groups: dict[Row, list[Any]] = {}
    for row in relation:
        groups.setdefault(tuple(row[i] for i in key_idx), []).append(row[value_idx])
    schema = Schema(list(keys) + [f"{value}_agg"])
    return Relation(
        output_name, schema, [key + (fold(values),) for key, values in groups.items()]
    )
