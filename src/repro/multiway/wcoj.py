"""A worst-case optimal (generic) join for local evaluation.

The tutorial's "in practice" slide (97) lists systems — BiGJoin, SEED,
TwinTwigJoin — whose local engines are *worst-case optimal joins*:
variable-at-a-time evaluation whose running time is bounded by the AGM
output bound, unlike binary join plans which can materialize
intermediates far larger than the output (slide 63's warning).

:func:`generic_join` implements the textbook Generic Join: pick a
variable order; for each prefix, intersect the candidate values offered
by every atom containing the next variable, seeded from the smallest
candidate set. It is a drop-in alternative to the left-deep local plan
inside HyperCube (``hypercube_join(..., local="generic")`` via
:func:`generic_join_evaluate`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.query.cq import ConjunctiveQuery

Row = tuple[Any, ...]


class _AtomIndex:
    """Trie-ish index of one relation along the global variable order."""

    def __init__(self, atom_variables: Sequence[str], rows: list[Row],
                 order: Sequence[str]) -> None:
        # Positions of the atom's variables sorted by the global order.
        self.variables = sorted(atom_variables, key=order.index)
        self._positions = [list(atom_variables).index(v) for v in self.variables]
        self.rows = rows

    def candidates(self, binding: Mapping[str, Any], variable: str) -> set[Any] | None:
        """Values this atom allows for ``variable`` given the binding.

        Returns None when the atom does not contain ``variable``.
        Counts respect set semantics (multiplicity handled at emit time).
        """
        if variable not in self.variables:
            return None
        out: set[Any] = set()
        for row in self.rows:
            ok = True
            value = None
            for v, pos in zip(self.variables, self._positions):
                if v == variable:
                    value = row[pos]
                elif v in binding and row[pos] != binding[v]:
                    ok = False
                    break
            if ok:
                out.add(value)
        return out

    def multiplicity(self, binding: Mapping[str, Any]) -> int:
        """Number of rows matching a full binding of the atom's variables."""
        count = 0
        for row in self.rows:
            if all(
                row[pos] == binding[v]
                for v, pos in zip(self.variables, self._positions)
            ):
                count += 1
        return count


def generic_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    order: Sequence[str] | None = None,
    output_name: str = "OUT",
) -> Relation:
    """Worst-case optimal evaluation of a full CQ (bag semantics).

    ``order`` fixes the variable elimination order (default: the query's
    variable order). Output multiplicities match
    :meth:`ConjunctiveQuery.evaluate` exactly.
    """
    variable_order = list(order) if order is not None else list(query.variables)
    if sorted(variable_order) != sorted(query.variables):
        raise QueryError(
            f"variable order {variable_order} does not cover {query.variables}"
        )

    indexes = []
    for atom in query.atoms:
        rel = relations.get(atom.name)
        if rel is None:
            raise QueryError(f"no relation bound for atom {atom.name!r}")
        if set(rel.schema.attributes) != set(atom.variables):
            raise QueryError(
                f"relation {rel.name} attributes do not match atom {atom}"
            )
        aligned = rel.project(list(atom.variables)) \
            if rel.schema.attributes != atom.variables else rel
        indexes.append(
            _AtomIndex(atom.variables, aligned.rows_readonly(), variable_order)
        )

    out_rows: list[Row] = []

    def extend(binding: dict[str, Any], depth: int) -> None:
        if depth == len(variable_order):
            # Bag semantics: multiply each atom's matching row count.
            multiplicity = 1
            for index in indexes:
                multiplicity *= index.multiplicity(binding)
                if multiplicity == 0:
                    return
            row = tuple(binding[v] for v in query.variables)
            out_rows.extend([row] * multiplicity)
            return
        variable = variable_order[depth]
        candidate_sets = [
            c for index in indexes
            if (c := index.candidates(binding, variable)) is not None
        ]
        if not candidate_sets:
            raise QueryError(f"variable {variable} appears in no atom")
        # Intersect, starting from the smallest set (the WCOJ trick).
        candidate_sets.sort(key=len)
        values = candidate_sets[0]
        for other in candidate_sets[1:]:
            values = values & other
            if not values:
                return
        for value in sorted(values, key=repr):
            binding[variable] = value
            extend(binding, depth + 1)
            del binding[variable]

    extend({}, 0)
    return Relation(output_name, list(query.variables), out_rows)


def generic_join_evaluate(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> Relation:
    """Adapter matching :meth:`ConjunctiveQuery.evaluate`'s signature."""
    return generic_join(query, relations)
