"""SkewHC: HyperCube made skew-resilient (slides 46–51).

Plain HyperCube's load guarantee collapses on skewed data. SkewHC fixes a
degree threshold (a value is a *heavy hitter* when it occurs ≥ N/p times
in some relation), and splits the output space by which variables take
heavy values:

- for every subset ``H`` of variables and every combination of heavy
  values for ``H``, the *residual query* Q_H — obtained by deleting the
  bound variables and dropping emptied atoms — is evaluated by HyperCube
  on its own exclusive server allocation, over the relations restricted
  to that combination (heavy on ``H``, light elsewhere);
- the all-light residual is ordinary HyperCube on light-only data.

Each original output tuple belongs to exactly one combination, so the
union of the residual outputs is exact. The worst residual governs the
load: L = Θ(IN / p^{1/ψ*}) where ψ* = max_H τ*(Q_H) (slide 47), and no
one-round algorithm can do better.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from typing import Any

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.heavy import allocate_servers
from repro.kernels.memo import cached_view, project_view, value_degrees
from repro.mpc.cluster import combine_parallel
from repro.multiway.base import MultiwayRun
from repro.multiway.hypercube import StagedHypercube, hypercube_route
from repro.query.cq import ConjunctiveQuery

Row = tuple[Any, ...]


def find_heavy_values(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    threshold: float,
) -> dict[str, set[Any]]:
    """Per-variable heavy-hitter sets: degree ≥ threshold in some atom."""
    heavy: dict[str, set[Any]] = {v: set() for v in query.variables}
    for atom in query.atoms:
        rel = relations[atom.name]
        for variable in atom.variables:
            # Degree maps are memoized per mutation token — every residual
            # stage of a repeated SkewHC run reuses them.
            for value, count in value_degrees(rel, variable).items():
                if count >= threshold:
                    heavy[variable].add(value)
    return heavy


def skewhc_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    threshold: float | None = None,
    output_name: str = "OUT",
    max_combinations: int = 100_000,
) -> MultiwayRun:
    """SkewHC evaluation of a full conjunctive query on ``p`` servers.

    ``threshold`` defaults to the tutorial's N/p with N the largest
    relation. All residual executions run on disjoint server pools, so
    the combined cost keeps ``r = 1`` (each residual is one HyperCube
    round) with ``L`` the max over residuals.
    """
    relations = {a.name: _aligned(a.name, query, relations) for a in query.atoms}
    n_max = max((len(r) for r in relations.values()), default=0)
    if threshold is None:
        threshold = max(n_max / p, 1.0)
    heavy = find_heavy_values(query, relations, threshold)

    jobs = _residual_jobs(query, relations, heavy, max_combinations)
    if not jobs:
        # No data at all: empty output, zero cost.
        from repro.mpc.stats import RunStats

        output = Relation(output_name, list(query.variables))
        return MultiwayRun(output, RunStats(p), {"threshold": threshold, "jobs": 0})

    weights = [max(job.input_size, 1) for job in jobs]
    allocation = allocate_servers(weights, p)

    # Phase 1 — coordinator side: route every residual on its own
    # cluster; fully-bound combinations produce their rows immediately.
    rows_per_job: list[list[Row]] = [[] for _ in jobs]
    staged: list[tuple[int, _ResidualJob, StagedHypercube]] = []
    for index, (job, p_job) in enumerate(zip(jobs, allocation)):
        prepared = job.stage(max(p_job, 1), seed)
        if prepared is None:
            rows_per_job[index] = job.bound_rows()
        else:
            staged.append((index, job, prepared))

    # Phase 2 — one batched eval dispatch. The residual clusters live on
    # disjoint server pools, so their hypercube.eval rounds have no
    # coordinator dependency between them: all residuals ride a single
    # queue message per worker instead of one round-trip per residual.
    # The clusters share the ambient backend instance; the dispatch is
    # accounted to the first staged cluster's ExecStats, which is
    # faithful in aggregate because combine_parallel sums them.
    runs = []
    if staged:
        backend = staged[0][2].cluster.backend
        per_call = backend.map_payload_batch(
            [
                ("hypercube.eval", entry.payloads, entry.common)
                for _, _, entry in staged
            ],
            stats=staged[0][2].cluster.stats.exec,
        )
        # Phase 3 — coordinator side again: gather and remap per residual.
        for (index, job, entry), results in zip(staged, per_call):
            run = entry.finish(results)
            rows_per_job[index] = job.remap(run)
            runs.append(run.stats)

    out_rows: list[Row] = [row for rows in rows_per_job for row in rows]
    output = Relation(output_name, list(query.variables), out_rows)
    return MultiwayRun(
        output,
        combine_parallel(p, runs),
        {"threshold": threshold, "jobs": len(jobs), "heavy": heavy},
    )


class _ResidualJob:
    """One heavy/light combination: a residual query over restricted data."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        bound: dict[str, Any],
        restricted: dict[str, Relation],
        multiplicity: int,
    ) -> None:
        self.query = query
        self.bound = bound
        self.restricted = restricted
        self.multiplicity = multiplicity
        self.input_size = sum(len(r) for r in restricted.values())

    def stage(self, p: int, seed: int) -> StagedHypercube | None:
        """Route the residual HyperCube run; ``None`` when fully bound."""
        free = [v for v in self.query.variables if v not in self.bound]
        if not free:
            return None
        residual = self.query.residual(list(self.bound))
        return hypercube_route(residual, self.restricted, p, seed=seed)

    def bound_rows(self) -> list[Row]:
        """Fully bound: the combination itself is the output (weighted
        by the vanished atoms' multiplicities)."""
        row = tuple(self.bound[v] for v in self.query.variables)
        return [row] * self.multiplicity

    def remap(self, run: MultiwayRun) -> list[Row]:
        """Re-expand residual output rows to the original variable order."""
        residual_vars = list(run.output.schema.attributes)
        res_pos = {v: i for i, v in enumerate(residual_vars)}
        rows = []
        for out_row in run.output:
            full = tuple(
                self.bound[v] if v in self.bound else out_row[res_pos[v]]
                for v in self.query.variables
            )
            rows.extend([full] * self.multiplicity)
        return rows

    def execute(self, p: int, seed: int) -> tuple[list[Row], Any]:
        """Route, evaluate, and remap this residual on its own (unbatched)."""
        staged = self.stage(p, seed)
        if staged is None:
            return self.bound_rows(), None
        run = staged.evaluate()
        return self.remap(run), run.stats


def _residual_jobs(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    heavy: dict[str, set[Any]],
    max_combinations: int,
) -> list[_ResidualJob]:
    jobs: list[_ResidualJob] = []
    heavy_vars = [v for v in query.variables if heavy[v]]
    total = 0
    for r in range(len(heavy_vars) + 1):
        for subset in itertools.combinations(heavy_vars, r):
            combos = itertools.product(*(sorted(heavy[v]) for v in subset))
            for values in combos:
                total += 1
                if total > max_combinations:
                    raise QueryError(
                        f"SkewHC exceeded {max_combinations} heavy combinations"
                    )
                bound = dict(zip(subset, values))
                job = _build_job(query, relations, heavy, bound)
                if job is not None:
                    jobs.append(job)
    return jobs


def _build_job(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    heavy: dict[str, set[Any]],
    bound: dict[str, Any],
) -> _ResidualJob | None:
    """Restrict all relations to one combination; None if provably empty."""
    restricted: dict[str, Relation] = {}
    multiplicity = 1
    for atom in query.atoms:
        rel = relations[atom.name]
        # The restriction depends only on the relation's contents, the
        # bound values of the atom's variables, and the heavy sets of its
        # free variables — memoize it per mutation token so repeated
        # SkewHC runs (and self-joined atoms sharing a relation) reuse
        # the scan. The cached residual relation keeps a stable identity,
        # which is what lets the residual HyperCube's partition cache hit.
        bound_key = tuple((v, bound[v]) for v in atom.variables if v in bound)
        heavy_key = tuple(
            (v, tuple(sorted(heavy[v])))
            for v in atom.variables
            if v not in bound and heavy[v]
        )
        kind, value = cached_view(
            rel,
            ("restrict", atom.variables, bound_key, heavy_key),
            lambda rel=rel, atom=atom: _restrict_atom(rel, atom, bound, heavy),
        )
        if kind == "count":
            # The atom vanishes in the residual; it acts as a filter whose
            # match count multiplies output multiplicities (bag semantics).
            if not value:
                return None
            multiplicity *= value
        else:
            if not len(value):
                return None
            restricted[atom.name] = value
    return _ResidualJob(query, bound, restricted, multiplicity)


def _restrict_atom(
    rel: Relation,
    atom: Any,
    bound: dict[str, Any],
    heavy: dict[str, set[Any]],
) -> tuple[str, Any]:
    """One atom's heavy/light restriction: ``("count", n)`` when the atom
    is fully bound (vanishes), else ``("rel", Relation)`` over the free
    positions."""
    positions = [(i, v) for i, v in enumerate(atom.variables)]

    def keep(row: Row) -> bool:
        for i, v in positions:
            if v in bound:
                if row[i] != bound[v]:
                    return False
            elif row[i] in heavy[v]:
                return False
        return True

    kept = [row for row in rel if keep(row)]
    free_positions = [i for i, v in positions if v not in bound]
    if not free_positions:
        return ("count", len(kept))
    free_vars = [atom.variables[i] for i in free_positions]
    return (
        "rel",
        Relation(
            atom.name,
            free_vars,
            [tuple(row[i] for i in free_positions) for row in kept],
        ),
    )


def _aligned(
    name: str, query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> Relation:
    atom = query.atom(name)
    try:
        rel = relations[name]
    except KeyError:
        raise QueryError(f"no relation bound for atom {name!r}") from None
    if set(rel.schema.attributes) != set(atom.variables):
        raise QueryError(
            f"relation {rel.name} attributes {rel.schema.attributes} do not match "
            f"atom {atom}"
        )
    if rel.schema.attributes != atom.variables:
        rel = project_view(rel, atom.variables)
    return rel
