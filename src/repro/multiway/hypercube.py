"""The HyperCube (Shares) algorithm — one-round multiway join (slides 34–44).

Servers are arranged in a grid with one dimension per query variable;
the variable's *share* is the dimension's extent. Each tuple of atom
``S_j`` knows the grid coordinates of the variables it contains (via one
independent hash function per variable) and is replicated to every
server agreeing with them. Every server then evaluates the whole query
on its local fragments; each output tuple is produced at exactly one
server.

With optimal shares the expected load is the slide-40 formula

    L = max over edge packings u of (Π_j |S_j|^{u_j} / p)^{1/Σ u_j}

— equal to ``N / p^{1/τ*}`` for equal sizes — and this is optimal among
one-round algorithms on skew-free data (slide 36 for the triangle).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.kernels.config import kernels_enabled
from repro.kernels.memo import (
    count_fused,
    memo_enabled,
    project_view,
    route_scattered_grid,
)
from repro.kernels.partition import try_route_grid
from repro.mpc.cluster import Cluster
from repro.mpc.topology import Grid
from repro.multiway.base import MultiwayRun
from repro.query.cq import ConjunctiveQuery
from repro.query.shares import ShareAssignment, optimal_shares


@dataclass
class StagedHypercube:
    """A HyperCube run routed but not yet evaluated (route/eval split).

    :func:`hypercube_route` performs the scatter and the replication
    round — everything that needs the coordinator — and parks the
    per-server evaluation payloads here. The caller then either runs
    :meth:`evaluate` (what :func:`hypercube_join` does) or, when holding
    several independent staged runs, ships all their ``hypercube.eval``
    dispatches as one batched backend call and hands each result list to
    :meth:`finish`. SkewHC uses the latter: its residual jobs live on
    disjoint server pools, so their eval rounds are coordinator-
    independent and collapse into one queue round-trip per worker.
    """

    query: ConjunctiveQuery
    cluster: Cluster
    grid: Grid
    payloads: list
    common: tuple
    shares: dict[str, int]
    assignment: ShareAssignment | None

    def evaluate(self, output_name: str = "OUT") -> MultiwayRun:
        """Dispatch the eval round on this run's own cluster and finish."""
        results = self.cluster.map_servers(
            "hypercube.eval", self.payloads, self.common
        )
        return self.finish(results, output_name)

    def finish(self, results: list, output_name: str = "OUT") -> MultiwayRun:
        """Store per-server eval results and gather the output relation."""
        for sid, rows in enumerate(results):
            if rows is not None:
                self.cluster.servers[sid].put("out", rows)
        output = self.cluster.gather_relation(
            "out", output_name, list(self.query.variables)
        )
        details: dict = {"shares": dict(self.shares)}
        if self.assignment is not None:
            details["assignment"] = self.assignment
        return MultiwayRun(output, self.cluster.stats, details)


def hypercube_route(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    shares: dict[str, int] | None = None,
    local: str = "plan",
    audit: bool | None = None,
) -> StagedHypercube:
    """Scatter and route a HyperCube run, deferring the eval dispatch."""
    if local not in ("plan", "generic"):
        raise QueryError(f"unknown local evaluator {local!r}")
    rels = {a.name: _relation_for(query, a.name, relations) for a in query.atoms}
    sizes = {name: len(rel) for name, rel in rels.items()}
    assignment: ShareAssignment | None = None
    if shares is None:
        assignment = optimal_shares(query, sizes, p)
        shares = assignment.integral
    extents = [shares[v] for v in query.variables]
    grid = Grid(extents)
    if grid.size > p:
        raise QueryError(f"shares {shares} need {grid.size} servers, only {p} given")

    cluster = Cluster(p, seed=seed, audit=audit)
    hash_functions = {
        v: cluster.hash_function(i, extents[i]) for i, v in enumerate(query.variables)
    }
    var_position = {v: i for i, v in enumerate(query.variables)}

    # Scatter inputs (free), then the single replication round.
    fragments = {}
    for atom in query.atoms:
        fragments[atom.name] = cluster.scatter(rels[atom.name], f"{atom.name}@in")

    salts = [hash_functions[v].salt for v in query.variables]
    with cluster.round("hypercube") as rnd:
        for atom in query.atoms:
            column_dims = [var_position[v] for v in atom.variables]
            if route_scattered_grid(
                cluster, rnd, rels[atom.name], fragments[atom.name],
                column_dims, salts, extents, grid.strides, f"{atom.name}@hc",
            ):
                continue
            arity = tuple(range(len(atom.variables)))
            for server in cluster.servers:
                rows, cols = server.take_with_columns(fragments[atom.name], arity)
                if try_route_grid(
                    rnd, rows, column_dims, salts, extents, grid.strides,
                    f"{atom.name}@hc", columns=cols,
                ):
                    continue
                for row in rows:
                    partial: list[int | None] = [None] * len(extents)
                    for value, v in zip(row, atom.variables):
                        partial[var_position[v]] = hash_functions[v](value)
                    for dest in grid.matching(partial):
                        rnd.send(dest, f"{atom.name}@hc", row)

    # Build the per-server eval payloads now (fragments are consumed by
    # take); the dispatch itself is the staged half. With memo on, a
    # payload whose full-arity side-car survived delivery is *fused*: the
    # eval chunk builds the local relation straight from the column
    # blocks instead of re-wrapping the row list.
    fused = memo_enabled() and kernels_enabled()
    payloads = []
    for sid in range(grid.size):
        server = cluster.servers[sid]
        per_atom = []
        for atom in query.atoms:
            arity = tuple(range(len(atom.variables)))
            rows, cols = server.take_with_columns(f"{atom.name}@hc", arity)
            if fused and cols is not None and rows:
                count_fused(cluster.stats.memo)
            per_atom.append((rows, cols))
        payloads.append(per_atom)
    return StagedHypercube(
        query=query,
        cluster=cluster,
        grid=grid,
        payloads=payloads,
        common=(query, local, fused),
        shares=dict(shares),
        assignment=assignment,
    )


def hypercube_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    shares: dict[str, int] | None = None,
    output_name: str = "OUT",
    local: str = "plan",
    audit: bool | None = None,
) -> MultiwayRun:
    """One-round HyperCube evaluation of a full conjunctive query.

    ``relations`` maps atom names to relations whose attributes are the
    atom's variables. ``shares`` overrides the optimized integral shares
    (ablation hook); its product must not exceed ``p``. ``local`` picks
    the per-server evaluation engine: ``"plan"`` (left-deep binary joins)
    or ``"generic"`` (the worst-case optimal join of
    :mod:`repro.multiway.wcoj`, as in BiGJoin-style systems — slide 97).
    Communication costs are identical; only server-local work differs.

    The local evaluation is fanned out via the exec backend (with the
    process backend the grid servers of a worker's range evaluate
    concurrently; side-car columns ride shared memory).
    """
    staged = hypercube_route(
        query, relations, p, seed=seed, shares=shares, local=local, audit=audit
    )
    return staged.evaluate(output_name)


def hypercube_eval_chunk(payloads: list, common) -> list:
    """Exec task ``hypercube.eval``: evaluate the query on grid servers.

    Each payload is the server's per-atom ``(rows, columns side-car)``
    pairs in ``query.atoms`` order; fragment rows come straight from the
    simulator, so they are adopted without re-validating arity, and each
    relation's columnar cache is seeded from the delivered side-car. A
    server with an empty fragment produces ``None`` (no output stored).

    When the coordinator flagged the run as *fused* (memo + kernels on),
    a payload carrying a full-arity side-car is turned into a
    column-primary relation directly — the delivered row list is never
    re-wrapped, and local evaluation reads the routed column blocks.
    The eval itself is column-driven either way, so fused and unfused
    payloads produce byte-identical output rows.
    """
    query, local, *rest = common
    fused = bool(rest and rest[0])
    out = []
    for per_atom in payloads:
        local_fragments = {}
        for atom, (rows, cols) in zip(query.atoms, per_atom):
            if fused and cols is not None and rows:
                rel = Relation.from_columns(atom.name, list(atom.variables), cols)
            else:
                rel = Relation.wrap(atom.name, list(atom.variables), rows)
                rel.prime_columns(cols)
            local_fragments[atom.name] = rel
        if all(len(rel) for rel in local_fragments.values()):
            if local == "generic":
                from repro.multiway.wcoj import generic_join

                result = generic_join(query, local_fragments)
            else:
                result = query.evaluate(local_fragments)
            out.append(result.rows())
        else:
            out.append(None)
    return out


def _relation_for(
    query: ConjunctiveQuery, name: str, relations: Mapping[str, Relation]
) -> Relation:
    atom = query.atom(name)
    try:
        rel = relations[name]
    except KeyError:
        raise QueryError(f"no relation bound for atom {name!r}") from None
    if set(rel.schema.attributes) != set(atom.variables):
        raise QueryError(
            f"relation {rel.name} attributes {rel.schema.attributes} do not match "
            f"atom {atom}"
        )
    if rel.schema.attributes != atom.variables:
        # Memoized: repeated runs over an unchanged relation get the same
        # reordered projection object, keeping the grid partition cache hot.
        rel = project_view(rel, atom.variables)
    return rel


def triangle_hypercube(
    r: Relation,
    s: Relation,
    t: Relation,
    p: int,
    seed: int = 0,
    audit: bool | None = None,
) -> MultiwayRun:
    """Convenience wrapper: HyperCube on Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x)."""
    from repro.query.cq import triangle_query

    return hypercube_join(
        triangle_query(), {"R": r, "S": s, "T": t}, p, seed=seed, audit=audit
    )
