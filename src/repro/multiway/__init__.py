"""Multiway joins on the MPC model: HyperCube, SkewHC, binary plans, GYM."""

from repro.multiway.aggregate import (
    group_by,
    reference_group_by,
    two_phase_group_by,
)
from repro.multiway.base import (
    MultiwayRun,
    shuffle_aggregate,
    shuffle_join,
    shuffle_multi_semijoin,
    shuffle_semijoin,
)
from repro.multiway.binary_plans import binary_join_plan
from repro.multiway.gym import gym
from repro.multiway.hypercube import hypercube_join, triangle_hypercube
from repro.multiway.semijoin import triangle_hl_semijoin, two_path_semijoin_plan
from repro.multiway.reduced import reduced_hypercube
from repro.multiway.skewhc import find_heavy_values, skewhc_join
from repro.multiway.wcoj import generic_join
from repro.multiway.yannakakis import YannakakisResult, yannakakis

__all__ = [
    "MultiwayRun",
    "YannakakisResult",
    "binary_join_plan",
    "find_heavy_values",
    "generic_join",
    "group_by",
    "gym",
    "hypercube_join",
    "shuffle_aggregate",
    "shuffle_join",
    "shuffle_multi_semijoin",
    "reduced_hypercube",
    "reference_group_by",
    "shuffle_semijoin",
    "skewhc_join",
    "triangle_hl_semijoin",
    "triangle_hypercube",
    "two_phase_group_by",
    "two_path_semijoin_plan",
    "yannakakis",
]
