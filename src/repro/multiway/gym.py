"""GYM: distributed Yannakakis over a GHD (slides 78–95).

GYM runs Yannakakis' three phases as MPC rounds:

- **vanilla** — one semijoin or join per round, sequentially:
  r = O(n) rounds, L = O((IN + OUT)/p) (slides 80–89);
- **optimized** — independent operations share rounds: all semijoins of
  one tree level run simultaneously on disjoint server pools (a parent
  reduced by several same-key children needs just one round — the
  intersect trick of slides 90–92), and each join level is a single
  one-round HyperCube of a node with its children's results (slide 93's
  "Skew-HC" join phase). Rounds drop to O(depth) (slide 94).

For GHDs of width w > 1 each node's *bag* is first materialized by
joining its cover atoms — the source of the IN^w term in the trade-off
r = O(d), L = O((IN^w + OUT)/p) of slide 95.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.cartesian import cartesian_product
from repro.joins.heavy import allocate_servers
from repro.kernels.memo import project_view
from repro.mpc.cluster import combine_parallel, combine_sequential
from repro.mpc.stats import RunStats
from repro.multiway.base import MultiwayRun, shuffle_join, shuffle_multi_semijoin
from repro.multiway.hypercube import hypercube_join
from repro.query.cq import Atom, ConjunctiveQuery
from repro.query.ghd import GHD, GHDNode, width1_ghd


def gym(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    ghd: GHD | None = None,
    variant: str = "optimized",
    seed: int = 0,
    output_name: str = "OUT",
) -> MultiwayRun:
    """Distributed Yannakakis on ``p`` servers.

    ``variant`` is ``"optimized"`` (r = O(depth)) or ``"vanilla"``
    (r = O(#nodes)). Works on any valid GHD of the query; defaults to the
    depth-minimized GYO join tree.
    """
    if variant not in ("optimized", "vanilla"):
        raise QueryError(f"unknown GYM variant {variant!r}")
    if ghd is None:
        ghd = width1_ghd(query)

    # A GHD may reuse an atom in several covers (e.g. the balanced path
    # decomposition). Under bag semantics reuse would square duplicate
    # multiplicities, so such runs switch to set semantics: bags are
    # deduplicated and each output tuple appears exactly once.
    cover_uses = [name for node in ghd.nodes() for name in node.cover]
    set_semantics = len(cover_uses) != len(set(cover_uses))

    phases: list[RunStats] = []
    working, materialize_stats = _materialize_bags(
        query, relations, ghd, p, seed,
        parallel=(variant == "optimized"),
        dedupe=set_semantics,
    )
    phases.extend(materialize_stats)

    levels = _levels(ghd)

    # Upward semijoin phase (deepest level reduces the one above it).
    for depth in range(len(levels) - 1, 0, -1):
        ops = [
            (parent, parent.children)
            for parent in levels[depth - 1]
            if parent.children
        ]
        phases.extend(
            _semijoin_level(working, ops, p, seed, variant, direction="up")
        )

    # Downward semijoin phase.
    for depth in range(len(levels) - 1):
        ops = [
            (parent, parent.children)
            for parent in levels[depth]
            if parent.children
        ]
        phases.extend(
            _semijoin_level(working, ops, p, seed + 1000, variant, direction="down")
        )

    # Join phase, bottom-up.
    phases.extend(_join_phase(working, levels, p, seed + 2000, variant))

    result = working[id(ghd.root)]
    output = result.project(list(query.variables), name=output_name)
    return MultiwayRun(
        output,
        combine_sequential(p, phases),
        {
            "variant": variant,
            "width": ghd.width,
            "depth": ghd.depth,
            "set_semantics": set_semantics,
        },
    )


# ------------------------------------------------------------ bag building


def _materialize_bags(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    ghd: GHD,
    p: int,
    seed: int,
    parallel: bool,
    dedupe: bool = False,
) -> tuple[dict[int, Relation], list[RunStats]]:
    """Join each node's cover atoms and project to its bag.

    Width-1 nodes cost nothing. Wider nodes run one join per step; in
    parallel mode, step t of every node shares a round.
    """
    working: dict[int, Relation] = {}
    pending: list[tuple[GHDNode, list[Relation]]] = []
    for node in ghd.nodes():
        covers = [_aligned(query, name, relations) for name in node.cover]
        if dedupe:
            covers = [rel.distinct() for rel in covers]
        if len(covers) == 1:
            working[id(node)] = _project_bag(covers[0], node, dedupe)
        else:
            pending.append((node, _greedy_join_order(covers)))

    phases: list[RunStats] = []
    step = 0
    current: dict[int, Relation] = {
        id(node): covers[0] for node, covers in pending
    }
    while pending:
        step += 1
        step_runs: list[RunStats] = []
        weights = [
            max(len(current[id(node)]) + len(covers[step]), 1)
            for node, covers in pending
        ]
        pools = allocate_servers(weights, p) if parallel else [p] * len(pending)
        for (node, covers), p_op in zip(pending, pools):
            left = current[id(node)]
            right = covers[step]
            if left.schema.common(right.schema):
                joined, stats = shuffle_join(
                    left, right, max(p_op, 1), seed=seed + step,
                    label=f"bag-join-{step}",
                )
            else:
                run = cartesian_product(left, right, max(p_op, 1), seed=seed + step)
                joined, stats = run.output, run.stats
            current[id(node)] = joined
            step_runs.append(stats)
            if step == len(covers) - 1:
                working[id(node)] = _project_bag(joined, node, dedupe)
        if parallel:
            phases.append(combine_parallel(p, step_runs))
        else:
            phases.extend(step_runs)
        pending = [
            (node, covers) for node, covers in pending if id(node) not in working
        ]
    return working, phases


def _greedy_join_order(covers: list[Relation]) -> list[Relation]:
    """Reorder cover atoms so consecutive joins share attributes if possible."""
    remaining = list(covers[1:])
    ordered = [covers[0]]
    seen = set(covers[0].schema.attributes)
    while remaining:
        connected = [r for r in remaining if seen & set(r.schema.attributes)]
        pick = connected[0] if connected else remaining[0]
        remaining.remove(pick)
        ordered.append(pick)
        seen |= set(pick.schema.attributes)
    return ordered


def _project_bag(rel: Relation, node: GHDNode, dedupe: bool = False) -> Relation:
    bag_attrs = [a for a in rel.schema.attributes if a in node.bag]
    # Memoized: repeated GYM runs over unchanged inputs reuse the bag
    # projection (read-only downstream — semijoins replace, never mutate).
    projected = project_view(rel, bag_attrs, name=f"B{node.cover[0]}")
    return projected.distinct() if dedupe else projected


# ------------------------------------------------------------- semijoins


def _semijoin_level(
    working: dict[int, Relation],
    ops: list[tuple[GHDNode, list[GHDNode]]],
    p: int,
    seed: int,
    variant: str,
    direction: str,
) -> list[RunStats]:
    """All semijoins between one tree level and the next.

    ``direction="up"``: each parent is reduced by all its children;
    ``direction="down"``: each child is reduced by its parent. Optimized
    mode packs independent operations (grouped by target and key) into
    shared rounds on proportionally allocated pools.
    """
    if not ops:
        return []

    # Expand into (target_node, [reducer relations]) with a common key.
    tasks: list[tuple[GHDNode, list[Relation]]] = []
    for parent, children in ops:
        if direction == "up":
            groups: dict[tuple[str, ...], list[Relation]] = {}
            for child in children:
                key = tuple(
                    a
                    for a in working[id(parent)].schema.attributes
                    if a in working[id(child)].schema
                )
                if not key:
                    continue  # disconnected child constrains nothing
                groups.setdefault(key, []).append(working[id(child)])
            for reducers in groups.values():
                tasks.append((parent, reducers))
        else:
            for child in children:
                key = tuple(
                    a
                    for a in working[id(child)].schema.attributes
                    if a in working[id(parent)].schema
                )
                if not key:
                    continue
                tasks.append((child, [working[id(parent)]]))

    phases: list[RunStats] = []
    if variant == "optimized":
        # Tasks with the same target (several key groups of one parent)
        # cannot share a round; pack them into waves of distinct targets.
        waves: list[list[tuple[GHDNode, list[Relation]]]] = []
        for task in tasks:
            for wave in waves:
                if all(id(task[0]) != id(t[0]) for t in wave):
                    wave.append(task)
                    break
            else:
                waves.append([task])
        for wave in waves:
            weights = [
                max(len(working[id(t)]) + sum(len(r) for r in reds), 1)
                for t, reds in wave
            ]
            pools = allocate_servers(weights, p)
            runs = []
            for (target, reducers), p_op in zip(wave, pools):
                reduced, stats = shuffle_multi_semijoin(
                    working[id(target)],
                    reducers,
                    max(p_op, 1),
                    seed=seed,
                    label=f"semijoin-{direction}",
                )
                working[id(target)] = reduced
                runs.append(stats)
            phases.append(combine_parallel(p, runs))
    else:
        for target, reducers in tasks:
            for reducer in reducers:
                reduced, stats = shuffle_multi_semijoin(
                    working[id(target)],
                    [reducer],
                    p,
                    seed=seed,
                    label=f"semijoin-{direction}",
                )
                working[id(target)] = reduced
                phases.append(stats)
    return phases


# ------------------------------------------------------------- join phase


def _join_phase(
    working: dict[int, Relation],
    levels: list[list[GHDNode]],
    p: int,
    seed: int,
    variant: str,
) -> list[RunStats]:
    """Bottom-up joins. Optimized: one HyperCube round per level."""
    phases: list[RunStats] = []
    for depth in range(len(levels) - 1, 0, -1):
        parents = [n for n in levels[depth - 1] if n.children]
        if not parents:
            continue
        if variant == "optimized":
            weights = [
                max(
                    len(working[id(parent)])
                    + sum(len(working[id(c)]) for c in parent.children),
                    1,
                )
                for parent in parents
            ]
            pools = allocate_servers(weights, p)
            runs = []
            for parent, p_op in zip(parents, pools):
                merged, stats = _hypercube_merge(
                    working, parent, max(p_op, 1), seed + depth
                )
                working[id(parent)] = merged
                runs.append(stats)
            phases.append(combine_parallel(p, runs))
        else:
            for parent in parents:
                result = working[id(parent)]
                for child in parent.children:
                    child_rel = working[id(child)]
                    if result.schema.common(child_rel.schema):
                        result, stats = shuffle_join(
                            result, child_rel, p, seed=seed + depth, label="join-up"
                        )
                    else:
                        run = cartesian_product(result, child_rel, p, seed=seed + depth)
                        result, stats = run.output, run.stats
                    phases.append(stats)
                working[id(parent)] = result
    return phases


def _hypercube_merge(
    working: dict[int, Relation], parent: GHDNode, p: int, seed: int
) -> tuple[Relation, RunStats]:
    """Join a parent with all its children's results in one round."""
    parts = [working[id(parent)]] + [working[id(c)] for c in parent.children]
    atoms = []
    rels: dict[str, Relation] = {}
    for i, rel in enumerate(parts):
        name = f"P{i}"
        atoms.append(Atom(name, list(rel.schema.attributes)))
        rels[name] = Relation(name, rel.schema, rel.rows_readonly())
    subquery = ConjunctiveQuery(atoms)
    run = hypercube_join(subquery, rels, p, seed=seed)
    return run.output, run.stats


def _levels(ghd: GHD) -> list[list[GHDNode]]:
    levels: list[list[GHDNode]] = []
    frontier = [ghd.root]
    while frontier:
        levels.append(frontier)
        frontier = [c for node in frontier for c in node.children]
    return levels


def _aligned(
    query: ConjunctiveQuery, name: str, relations: Mapping[str, Relation]
) -> Relation:
    atom = query.atom(name)
    try:
        rel = relations[name]
    except KeyError:
        raise QueryError(f"no relation bound for atom {name!r}") from None
    if set(rel.schema.attributes) != set(atom.variables):
        raise QueryError(
            f"relation {rel.name} attributes {rel.schema.attributes} do not match "
            f"atom {atom}"
        )
    if rel.schema.attributes != atom.variables:
        rel = project_view(rel, atom.variables)
    return rel
