"""Shared result type and charged communication primitives for multiway plans.

Multi-round algorithms compose three charged one-round primitives:

- :func:`shuffle_join` — hash-partition two relations by their shared key
  and join locally (the step of an iterative binary plan);
- :func:`shuffle_semijoin` — reduce a target relation by a reducer's
  distinct keys (one Yannakakis/GYM semijoin);
- :func:`shuffle_multi_semijoin` — reduce a target by several reducers
  sharing the same key attributes in a single round (optimized GYM).

Each primitive runs on a fresh cluster of ``p`` servers: inputs are
scattered (free, per the model's initial-placement grant), the shuffle is
charged, locals are computed, and the result is returned with the round's
:class:`RunStats`. Plans stitch phases together with
:func:`~repro.mpc.cluster.combine_sequential` (same servers, consecutive
rounds) and :func:`~repro.mpc.cluster.combine_parallel` (disjoint
servers, simultaneous rounds). Charging every phase's full shuffle is
slightly conservative — a real engine reuses co-partitioning — but keeps
the accounting identical across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.base import distributed_local_join
from repro.kernels.config import kernels_enabled
from repro.kernels.join import semijoin_mask
from repro.kernels.memo import distinct_project, key_degrees, route_scattered
from repro.kernels.partition import try_route
from repro.mpc.cluster import Cluster
from repro.mpc.stats import RunStats

Row = tuple[Any, ...]


@dataclass
class MultiwayRun:
    """Output and cost of one distributed multiway-join execution."""

    output: Relation
    stats: RunStats
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def load(self) -> int:
        return self.stats.max_load

    @property
    def rounds(self) -> int:
        return self.stats.num_rounds


def shuffle_join(
    r: Relation,
    s: Relation,
    p: int,
    seed: int = 0,
    label: str = "join",
    output_name: str = "J",
    audit: bool | None = None,
) -> tuple[Relation, RunStats]:
    """One-round hash join; returns the (gathered) result and its cost."""
    shared = r.schema.common(s.schema)
    if not shared:
        raise QueryError(
            f"{r.name} ⋈ {s.name} has no shared attributes; use the "
            f"Cartesian product primitive"
        )
    cluster = Cluster(p, seed=seed, audit=audit)
    r_frag = cluster.scatter(r, "L@in")
    s_frag = cluster.scatter(s, "R@in")
    h = cluster.hash_function(0)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    with cluster.round(label) as rnd:
        for rel, frag, idx, out in (
            (r, r_frag, r_idx, "L@j"),
            (s, s_frag, s_idx, "R@j"),
        ):
            if route_scattered(cluster, rnd, rel, frag, idx, h, out):
                continue
            for server in cluster.servers:
                rows, cols = server.take_with_columns(frag, tuple(idx))
                if not try_route(rnd, rows, idx, h, out, columns=cols):
                    for row in rows:
                        rnd.send(h(tuple(row[i] for i in idx)), out, row)
    distributed_local_join(cluster, "L@j", "R@j", r, s, "out")
    attrs = list(r.schema.attributes) + [
        a for a in s.schema.attributes if a not in r.schema
    ]
    return cluster.gather_relation("out", output_name, attrs), cluster.stats


def shuffle_semijoin(
    target: Relation,
    reducer: Relation,
    p: int,
    seed: int = 0,
    label: str = "semijoin",
    audit: bool | None = None,
) -> tuple[Relation, RunStats]:
    """One-round distributed semijoin ``target ⋉ reducer``."""
    result, stats = shuffle_multi_semijoin(
        target, [reducer], p, seed=seed, label=label, audit=audit
    )
    return result, stats


def shuffle_multi_semijoin(
    target: Relation,
    reducers: list[Relation],
    p: int,
    seed: int = 0,
    label: str = "semijoin",
    audit: bool | None = None,
) -> tuple[Relation, RunStats]:
    """Reduce ``target`` by several reducers in a single round, skew-aware.

    All reducers must share the *same* key attributes with the target (a
    GYM parent whose children attach through one variable set — slide 90's
    simultaneous upward semijoins). A target tuple survives iff its key
    appears in every reducer.

    Light keys (degree < IN/p in the target) are hash-partitioned together
    with the reducers' distinct keys. Heavy keys would overload a single
    hash bucket, so their target tuples *stay in place* and only the
    membership verdicts of the ≤ p heavy keys are broadcast — this is
    what keeps a semijoin at L = O(IN/p) under arbitrary skew (slide 58).
    """
    if not reducers:
        raise QueryError("shuffle_multi_semijoin needs at least one reducer")
    keys = [target.schema.common(red.schema) for red in reducers]
    if any(not k for k in keys):
        raise QueryError(f"a reducer shares no attributes with {target.name}")
    if len(set(keys)) != 1:
        raise QueryError(
            f"simultaneous semijoins need one key; got {sorted(set(keys))}"
        )
    shared = keys[0]
    t_idx = target.schema.indices(shared)
    cluster = Cluster(p, seed=seed, audit=audit)

    # Heavy keys by target degree (statistics assumed known, as in the
    # tutorial's skew algorithms; a real engine samples them). The degree
    # map is memoized per mutation token — GYM recomputes it every round
    # on the same relations.
    degrees = key_degrees(target, t_idx, stats=cluster.stats.memo)
    in_size = len(target) + sum(len(r) for r in reducers)
    threshold = max(in_size / p, 2.0)
    heavy = {k for k, c in degrees.items() if c >= threshold}

    t_frag = cluster.scatter(target, "T@in")
    reducer_frags = []
    reducer_lights: list[Relation] = []
    reducer_key_sets: list[set[Row]] = []
    for i, red in enumerate(reducers):
        distinct_keys = distinct_project(red, shared, stats=cluster.stats.memo)
        reducer_key_sets.append(set(distinct_keys.rows_readonly()))
        # Without heavy keys the memoized distinct relation is scattered
        # directly, keeping a stable identity for the partition cache.
        light_keys = (
            distinct_keys
            if not heavy
            else distinct_keys.select(lambda row: row not in heavy)
        )
        reducer_lights.append(light_keys)
        reducer_frags.append(cluster.scatter(light_keys, f"K{i}@in"))

    # Heavy keys surviving every reducer get their verdict broadcast.
    heavy_alive = sorted(
        k for k in heavy if all(k in ks for ks in reducer_key_sets)
    )

    h = cluster.hash_function(0)
    key_arity = tuple(range(len(shared)))
    with cluster.round(label) as rnd:
        # Per-(destination, fragment) arrival order is source-server
        # ascending on both the replayed and the per-server path, so the
        # fragment-at-a-time restructure delivers byte-identical state.
        if not heavy and route_scattered(
            cluster, rnd, target, t_frag, t_idx, h, "T@j"
        ):
            for server in cluster.servers:
                server.put("T@stay", [])
        else:
            for server in cluster.servers:
                taken = server.take(t_frag)
                stay = _route_light(rnd, taken, t_idx, heavy, h)
                server.put("T@stay", stay)
        for i, frag in enumerate(reducer_frags):
            if route_scattered(
                cluster, rnd, reducer_lights[i], frag, key_arity, h, f"K{i}@j"
            ):
                continue
            for server in cluster.servers:
                rows = server.take(frag)
                if not try_route(rnd, rows, key_arity, h, f"K{i}@j"):
                    for row in rows:
                        rnd.send(h(row), f"K{i}@j", row)
        for key in heavy_alive:
            rnd.broadcast("H@alive", key)

    payloads = []
    for server in cluster.servers:
        server.take("H@alive")  # consumed: contents mirror `heavy_alive`
        payloads.append(
            (
                [server.take(f"K{i}@j") for i in range(len(reducers))],
                server.take("T@j"),
                server.take("T@stay"),
            )
        )
    results = cluster.map_servers(
        "semijoin.filter", payloads, (tuple(t_idx), tuple(heavy_alive))
    )
    for server, survivors in zip(cluster.servers, results):
        server.put("out", survivors)
    result = cluster.gather_relation("out", target.name, target.schema.attributes)
    return result, cluster.stats


def _route_light(
    rnd: Any,
    rows: list[Row],
    t_idx: tuple[int, ...],
    heavy: set[Row],
    h: Any,
) -> list[Row]:
    """Route light rows to ``h(key)``; return the heavy rows (they stay).

    Vectorized heavy/light split + batched routing when the key columns
    are integers; otherwise the original tuple-at-a-time loop.
    """
    if kernels_enabled() and rows:
        mask = semijoin_mask(rows, t_idx, list(heavy))
        if mask is not None:
            stay = [row for row, is_heavy in zip(rows, mask) if is_heavy]
            light = [row for row, is_heavy in zip(rows, mask) if not is_heavy]
            if try_route(rnd, light, t_idx, h, "T@j"):
                return stay
    stay = []
    for row in rows:
        key = tuple(row[i] for i in t_idx)
        if key in heavy:
            stay.append(row)  # no communication: stays in place
        else:
            rnd.send(h(key), "T@j", row)
    return stay


def semijoin_filter_chunk(payloads: list, common) -> list:
    """Exec task ``semijoin.filter``: the local phase of the multi-semijoin.

    Each payload is ``(per-reducer key row lists, routed target rows,
    heavy stay-in-place rows)``; the survivors are the light rows whose
    key appears in every reducer plus the heavy rows whose key survived
    globally (``heavy_alive``, broadcast by the coordinator). Pure over
    its inputs, so inline and worker execution agree byte-for-byte.
    """
    t_idx, heavy_alive = common
    alive = set(heavy_alive)
    out = []
    for key_rows, t_rows, stay_rows in payloads:
        key_sets = [set(rows) for rows in key_rows]
        survivors = _filter_members(t_rows, t_idx, key_sets)
        survivors.extend(
            row for row in stay_rows if tuple(row[i] for i in t_idx) in alive
        )
        out.append(survivors)
    return out


def _filter_members(
    rows: list[Row], t_idx: tuple[int, ...], key_sets: list[set[Row]]
) -> list[Row]:
    """Rows whose key tuple appears in *every* key set (order preserved)."""
    if kernels_enabled() and rows:
        combined = None
        for ks in key_sets:
            mask = semijoin_mask(rows, t_idx, list(ks))
            if mask is None:
                break
            combined = mask if combined is None else combined & mask
        else:
            if combined is None:  # no reducers: everything survives
                return list(rows)
            return [row for row, keep in zip(rows, combined) if keep]
    return [
        row
        for row in rows
        if all(tuple(row[i] for i in t_idx) in ks for ks in key_sets)
    ]


def shuffle_aggregate(
    rows: list[Row],
    key_positions: tuple[int, ...],
    combine: Any,
    p: int,
    seed: int = 0,
    label: str = "aggregate",
    audit: bool | None = None,
) -> tuple[list[Row], RunStats]:
    """One-round hash aggregation: route rows by key, fold groups locally.

    ``combine(key, group_rows) -> row`` produces one output row per group.
    Used by the SQL-on-MPC matrix multiplication's GROUP BY stage.
    """
    cluster = Cluster(p, seed=seed, audit=audit)
    cluster.scatter_rows(rows, "A@in")
    h = cluster.hash_function(0)
    with cluster.round(label) as rnd:
        for server in cluster.servers:
            taken = server.take("A@in")
            if not try_route(rnd, taken, key_positions, h, "A@j"):
                for row in taken:
                    rnd.send(h(tuple(row[i] for i in key_positions)), "A@j", row)
    # An unpicklable ``combine`` (a closure) transparently degrades the
    # process backend to inline execution for this call.
    payloads = [server.take("A@j") for server in cluster.servers]
    results = cluster.map_servers(
        "aggregate.groups", payloads, (tuple(key_positions), combine)
    )
    out: list[Row] = [row for rows in results for row in rows]
    return out, cluster.stats


def aggregate_groups_chunk(payloads: list, common) -> list:
    """Exec task ``aggregate.groups``: fold each server's groups locally.

    Group order follows first-arrival order of each key (dict insertion
    order), identical across backends because the routed rows arrive in
    the same order either way.
    """
    key_positions, combine = common
    out = []
    for rows in payloads:
        groups: dict[Row, list[Row]] = {}
        for row in rows:
            groups.setdefault(tuple(row[i] for i in key_positions), []).append(row)
        out.append([combine(key, group) for key, group in groups.items()])
    return out
