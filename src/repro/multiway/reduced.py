"""Full reduction + one-round HyperCube finish (slides 63, 93).

Slide 63's upshot — *"semijoins can help if OUT is small"* — suggests a
hybrid plan for acyclic queries: run Yannakakis' two semijoin sweeps as
MPC rounds (GYM's reduction phases, O(depth) rounds of load ≤ IN/p),
then evaluate the query in a **single** HyperCube round over the reduced
relations (the "Skew-HC join phase" of slide 93).

After full reduction every remaining tuple contributes to the output, so
the relations HyperCube sees have size ≤ min(IN, OUT·arity) — on
selective queries the one-round load collapses far below IN/p^{1/τ*}.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.heavy import allocate_servers
from repro.mpc.cluster import combine_parallel, combine_sequential
from repro.mpc.stats import RunStats
from repro.multiway.base import MultiwayRun, shuffle_multi_semijoin
from repro.multiway.hypercube import hypercube_join
from repro.query.cq import ConjunctiveQuery
from repro.query.ghd import GHD, width1_ghd


def reduced_hypercube(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    ghd: GHD | None = None,
    seed: int = 0,
    output_name: str = "OUT",
) -> MultiwayRun:
    """Semijoin-reduce an acyclic query, then one HyperCube round.

    Requires a width-1 GHD (acyclic query). Returns the usual
    :class:`MultiwayRun`; ``details`` records the per-atom reduction
    ratios so experiments can show where the plan wins.
    """
    if ghd is None:
        ghd = width1_ghd(query)
    if ghd.width != 1:
        raise QueryError("reduced_hypercube needs a width-1 GHD (acyclic query)")

    working: dict[str, Relation] = {}
    for node in ghd.nodes():
        name = node.cover[0]
        atom = query.atom(name)
        rel = relations.get(name)
        if rel is None:
            raise QueryError(f"no relation bound for atom {name!r}")
        if set(rel.schema.attributes) != set(atom.variables):
            raise QueryError(f"relation {rel.name} does not match atom {atom}")
        if rel.schema.attributes != atom.variables:
            rel = rel.project(list(atom.variables))
        working[name] = rel
    original_sizes = {name: len(rel) for name, rel in working.items()}

    node_name = {id(node): node.cover[0] for node in ghd.nodes()}
    levels = _levels(ghd)
    phases: list[RunStats] = []

    # Upward sweep: deepest level first, every parent of the level in
    # parallel on proportionally allocated pools.
    for depth in range(len(levels) - 1, 0, -1):
        phases.extend(
            _sweep(working, node_name, levels[depth - 1], p, seed, upward=True)
        )
    # Downward sweep.
    for depth in range(len(levels) - 1):
        phases.extend(
            _sweep(working, node_name, levels[depth], p, seed + 500, upward=False)
        )

    hc = hypercube_join(query, working, p, seed=seed + 999, output_name=output_name)
    phases.append(hc.stats)

    reduction = {
        name: (original_sizes[name], len(working[name])) for name in working
    }
    return MultiwayRun(
        hc.output,
        combine_sequential(p, phases),
        {"reduction": reduction, "shares": hc.details.get("shares")},
    )


def _sweep(working, node_name, parents, p, seed, upward: bool) -> list[RunStats]:
    tasks = []
    for parent in parents:
        if not parent.children:
            continue
        pname = node_name[id(parent)]
        if upward:
            groups: dict[tuple[str, ...], list[Relation]] = {}
            for child in parent.children:
                cname = node_name[id(child)]
                key = working[pname].schema.common(working[cname].schema)
                if key:
                    groups.setdefault(key, []).append(working[cname])
            for reducers in groups.values():
                tasks.append((pname, reducers))
        else:
            for child in parent.children:
                cname = node_name[id(child)]
                if working[cname].schema.common(working[pname].schema):
                    tasks.append((cname, [working[pname]]))

    phases: list[RunStats] = []
    # Waves of distinct targets share a round.
    waves: list[list] = []
    for task in tasks:
        for wave in waves:
            if all(task[0] != t[0] for t in wave):
                wave.append(task)
                break
        else:
            waves.append([task])
    for wave in waves:
        weights = [
            max(len(working[t]) + sum(len(r) for r in reds), 1) for t, reds in wave
        ]
        pools = allocate_servers(weights, p)
        runs = []
        for (target, reducers), p_op in zip(wave, pools):
            reduced, stats = shuffle_multi_semijoin(
                working[target], reducers, max(p_op, 1), seed=seed,
                label="reduce-semijoin",
            )
            working[target] = reduced
            runs.append(stats)
        phases.append(combine_parallel(p, runs))
    return phases


def _levels(ghd: GHD):
    levels = []
    frontier = [ghd.root]
    while frontier:
        levels.append(frontier)
        frontier = [c for node in frontier for c in node.children]
    return levels
