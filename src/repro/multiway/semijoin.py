"""Heavy-Light + Semijoin plans (slides 58–59).

Semijoins shrink relations without ever growing intermediates, which is
what makes multi-round plans beat one-round algorithms under skew:

- slide 58's easy case — R(x) ⋈ S(x,y) ⋈ T(y): two semijoin rounds
  reduce S, then the (already-filtered) output is emitted with
  L = O(IN/p) even though one-round needs IN/p^{1/2};
- slide 59's triangle plan — light z-values go to HyperCube, each heavy
  z-value h spawns the residual R(x,y) ⋉ S'(y) ⋉ T'(x) handled by two
  semijoin rounds on its own servers. Two rounds total with
  L = O(IN/p^{2/3}), worst-case optimal *despite* skew.
"""

from __future__ import annotations

from typing import Any

from repro.data.relation import Relation
from repro.joins.heavy import allocate_servers
from repro.mpc.cluster import combine_parallel, combine_sequential
from repro.multiway.base import MultiwayRun, shuffle_multi_semijoin, shuffle_semijoin
from repro.query.cq import triangle_query, two_path_query

Row = tuple[Any, ...]


def two_path_semijoin_plan(
    r: Relation,
    s: Relation,
    t: Relation,
    p: int,
    seed: int = 0,
    output_name: str = "OUT",
) -> MultiwayRun:
    """Slide 58: evaluate R(x) ⋈ S(x,y) ⋈ T(y) by pure semijoins.

    Round 1: TMP(x,y) = S ⋉ R; round 2: OUT = TMP ⋉ T. Both rounds move
    O(IN) tuples total, so L = O(IN/p) regardless of skew — while any
    one-round algorithm needs IN/p^{1/2} (ψ* = 2).
    """
    tmp, stats1 = shuffle_semijoin(s, r, p, seed=seed, label="semijoin-R")
    reduced, stats2 = shuffle_semijoin(tmp, t, p, seed=seed + 1, label="semijoin-T")
    # Bag semantics: each surviving S tuple joins every matching R and T copy.
    r_counts = r.degrees("x")
    t_counts = t.degrees("y")
    rows: list[Row] = []
    for x, y in reduced.project(["x", "y"]).rows_readonly():
        rows.extend([(x, y)] * (r_counts[x] * t_counts[y]))
    output = Relation(output_name, ["x", "y"], rows)
    run_stats = combine_sequential(p, [stats1, stats2])
    return MultiwayRun(output, run_stats, {"query": str(two_path_query())})


def triangle_hl_semijoin(
    r: Relation,
    s: Relation,
    t: Relation,
    p: int,
    seed: int = 0,
    threshold: float | None = None,
    output_name: str = "OUT",
) -> MultiwayRun:
    """Slide 59: the Heavy-Light + Semijoin triangle algorithm.

    ``threshold`` defaults to IN/p^{1/3} — z-values of lower degree are
    *light* and handled by one HyperCube round on most of the cluster;
    each heavy value gets a two-round semijoin residual on its own
    allocation. Worst-case optimal: r = 2, L = O(IN/p^{2/3}).
    """
    from repro.multiway.hypercube import hypercube_join

    n = max(len(r), len(s), len(t))
    if threshold is None:
        threshold = max(n / p ** (1.0 / 3.0), 1.0)

    # Heavy z-values by degree in S(y,z) or T(z,x).
    degrees = s.degrees("z")
    degrees.update(t.degrees("z"))
    heavy_z = sorted(v for v, c in degrees.items() if c >= threshold)
    heavy_set = set(heavy_z)

    s_light = s.select(lambda row: row[1] not in heavy_set)  # z is position 1 of S(y,z)
    t_light = t.select(lambda row: row[0] not in heavy_set)  # z is position 0 of T(z,x)

    # Server split: light HyperCube gets servers ∝ its input share.
    light_in = len(r) + len(s_light) + len(t_light)
    heavy_in = (len(s) - len(s_light)) + (len(t) - len(t_light)) + len(r) * bool(heavy_z)
    pools = allocate_servers([max(light_in, 1), max(heavy_in, 1)], p) if heavy_z else [p]
    p_light = pools[0]
    p_heavy = pools[1] if heavy_z else 0

    runs = []
    out_rows: list[Row] = []

    light_run = hypercube_join(
        triangle_query(), {"R": r, "S": s_light, "T": t_light}, p_light, seed=seed
    )
    out_rows.extend(light_run.output.rows_readonly())
    runs.append(light_run.stats)

    if heavy_z:
        heavy_allocation = allocate_servers(
            [max(degrees[z], 1) for z in heavy_z], p_heavy
        )
        heavy_runs = []
        for z_value, p_z in zip(heavy_z, heavy_allocation):
            rows, stats = _heavy_z_residual(r, s, t, z_value, max(p_z, 1), seed)
            out_rows.extend(rows)
            heavy_runs.append(stats)
        runs.append(combine_parallel(p_heavy, heavy_runs))

    output = Relation(output_name, ["x", "y", "z"], out_rows)
    return MultiwayRun(
        output,
        combine_parallel(p, runs),
        {"heavy_z": heavy_z, "threshold": threshold},
    )


def _heavy_z_residual(
    r: Relation, s: Relation, t: Relation, z_value: Any, p: int, seed: int
) -> tuple[list[Row], Any]:
    """q(z=h): R(x,y) ⋉ S'(y) ⋉ T'(x) via two semijoin rounds (slide 59)."""
    s_h = s.select(lambda row: row[1] == z_value).project(["y"], name="Sh")
    t_h = t.select(lambda row: row[0] == z_value).project(["x"], name="Th")
    if not len(s_h) or not len(t_h):
        from repro.mpc.stats import RunStats

        return [], RunStats(p)
    reduced, stats = shuffle_multi_semijoin(
        r, [s_h], p, seed=seed, label="semijoin-S@z"
    )
    reduced, stats2 = shuffle_semijoin(
        reduced, t_h, p, seed=seed + 1, label="semijoin-T@z"
    )
    # Multiplicity: bag semantics count matching S and T tuples per (x,y).
    s_counts = s_h.degrees("y")
    t_counts = t_h.degrees("x")
    rows: list[Row] = []
    for x, y in reduced.project(["x", "y"]).rows_readonly():
        rows.extend([(x, y, z_value)] * (s_counts[y] * t_counts[x]))
    return rows, combine_sequential(p, [stats, stats2])
