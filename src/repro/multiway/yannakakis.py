"""Yannakakis' algorithm for acyclic queries (slides 64–77).

Three phases over a width-1 GHD (join tree):

1. **upward semijoins** — leaves to root, each node reduced by its
   children;
2. **downward semijoins** — root to leaves, each child reduced by its
   parent;
3. **join phase** — bottom-up joins of the fully reduced relations.

After the two semijoin sweeps every remaining tuple participates in at
least one output, so intermediate join results never exceed OUT and the
serial running time is O(IN + OUT) (slide 77). This module is the serial
reference; :mod:`repro.multiway.gym` distributes it.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.query.cq import ConjunctiveQuery
from repro.query.ghd import GHD, GHDNode, width1_ghd


@dataclass
class YannakakisResult:
    """Output plus the accounting the O(IN+OUT) claim is about."""

    output: Relation
    semijoin_operations: int
    join_operations: int
    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def max_intermediate(self) -> int:
        return max(self.intermediate_sizes, default=0)


def yannakakis(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    ghd: GHD | None = None,
    output_name: str = "OUT",
) -> YannakakisResult:
    """Evaluate an acyclic full CQ in O(IN + OUT) with full reduction.

    ``ghd`` defaults to the GYO join tree; it must be width 1 (one atom
    per node).
    """
    if ghd is None:
        ghd = width1_ghd(query)
    if ghd.width != 1:
        raise QueryError("serial Yannakakis needs a width-1 GHD (join tree)")

    # Working copy: one relation per node, projected to the atom's variables.
    working: dict[int, Relation] = {}
    for node in ghd.nodes():
        name = node.cover[0]
        atom = query.atom(name)
        rel = relations.get(name)
        if rel is None:
            raise QueryError(f"no relation bound for atom {name!r}")
        if set(rel.schema.attributes) != set(atom.variables):
            raise QueryError(
                f"relation {rel.name} attributes do not match atom {atom}"
            )
        working[id(node)] = rel.project(list(atom.variables))

    semijoins = 0

    # Phase 1: upward (children reduce parents), deepest levels first.
    for node in _postorder(ghd.root):
        for child in node.children:
            working[id(node)] = working[id(node)].semijoin(working[id(child)])
            semijoins += 1

    # Phase 2: downward (parents reduce children), top-down.
    for node in _preorder(ghd.root):
        for child in node.children:
            working[id(child)] = working[id(child)].semijoin(working[id(node)])
            semijoins += 1

    # Phase 3: bottom-up joins.
    joins = 0
    intermediates: list[int] = []

    def join_subtree(node: GHDNode) -> Relation:
        nonlocal joins
        result = working[id(node)]
        for child in node.children:
            result = result.join(join_subtree(child))
            joins += 1
            intermediates.append(len(result))
        return result

    full = join_subtree(ghd.root)
    output = full.project(list(query.variables), name=output_name)
    return YannakakisResult(output, semijoins, joins, intermediates)


def _postorder(node: GHDNode) -> list[GHDNode]:
    out: list[GHDNode] = []
    for child in node.children:
        out.extend(_postorder(child))
    out.append(node)
    return out


def _preorder(node: GHDNode) -> list[GHDNode]:
    out = [node]
    for child in node.children:
        out.extend(_preorder(child))
    return out
