"""Iterative binary join plans — the multi-round baseline (slides 52, 57, 63).

Most systems evaluate a multiway join as a sequence of two-way hash
joins, one round each. On skew-free ("matching-degree") data the
intermediates never grow, so the whole plan runs with L = O(IN/p) in
n − 1 rounds (slide 57) — beating any one-round algorithm's
IN/p^{1/τ*}. On cyclic queries with large intermediates the plan can
explode (slide 63: |T_i| ≫ p·IN makes one-round replication cheaper) —
the benchmarks reproduce both regimes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.cartesian import cartesian_product
from repro.mpc.cluster import combine_sequential
from repro.multiway.base import MultiwayRun, shuffle_join
from repro.query.cq import ConjunctiveQuery


def binary_join_plan(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    p: int,
    seed: int = 0,
    order: Sequence[str] | None = None,
    output_name: str = "OUT",
) -> MultiwayRun:
    """Left-deep sequence of one-round hash joins (Cartesian when forced).

    ``order`` lists atom names in join order (default: query order). The
    run's ``details`` record every intermediate size — the quantity
    slide 63's scalability warning is about.
    """
    atom_order = list(order) if order is not None else [a.name for a in query.atoms]
    if sorted(atom_order) != sorted(a.name for a in query.atoms):
        raise QueryError(
            f"join order {atom_order} does not cover the query atoms exactly"
        )

    current = _aligned(query, atom_order[0], relations)
    runs = []
    intermediate_sizes = [len(current)]
    for step, name in enumerate(atom_order[1:], start=1):
        rel = _aligned(query, name, relations)
        shared = current.schema.common(rel.schema)
        if shared:
            current, stats = shuffle_join(
                current, rel, p, seed=seed + step, label=f"join-{name}"
            )
        else:
            run = cartesian_product(current, rel, p, seed=seed + step)
            current, stats = run.output, run.stats
        runs.append(stats)
        intermediate_sizes.append(len(current))

    output = current.project(list(query.variables), name=output_name)
    return MultiwayRun(
        output,
        combine_sequential(p, runs),
        {"order": atom_order, "intermediate_sizes": intermediate_sizes},
    )


def _aligned(
    query: ConjunctiveQuery, name: str, relations: Mapping[str, Relation]
) -> Relation:
    atom = query.atom(name)
    try:
        rel = relations[name]
    except KeyError:
        raise QueryError(f"no relation bound for atom {name!r}") from None
    if set(rel.schema.attributes) != set(atom.variables):
        raise QueryError(
            f"relation {rel.name} attributes {rel.schema.attributes} do not match "
            f"atom {atom}"
        )
    if rel.schema.attributes != atom.variables:
        rel = rel.project(list(atom.variables))
    return rel
