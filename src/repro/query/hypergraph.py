"""Query hypergraphs and the GYO acyclicity test.

A conjunctive query induces a hypergraph: vertices are variables, each
atom contributes the hyperedge of its variables. α-acyclicity — the
property Yannakakis' algorithm needs — is decided by the GYO (Graham /
Yu–Özsoyoğlu) ear-removal procedure, which also yields a *join tree*:
one node per atom such that, for every variable, the atoms containing it
form a connected subtree.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DecompositionError
from repro.query.cq import ConjunctiveQuery


class Hypergraph:
    """The hypergraph of a query: named edges over variable vertices."""

    def __init__(self, edges: dict[str, frozenset[str]]) -> None:
        if not edges:
            raise DecompositionError("a hypergraph needs at least one edge")
        self.edges = dict(edges)
        self.vertices: frozenset[str] = frozenset().union(*edges.values())

    @classmethod
    def of(cls, query: ConjunctiveQuery) -> "Hypergraph":
        return cls({a.name: a.var_set() for a in query.atoms})

    def edges_with(self, vertex: str) -> list[str]:
        """Names of edges containing ``vertex``."""
        return [name for name, vs in self.edges.items() if vertex in vs]

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}{sorted(vs)}" for n, vs in sorted(self.edges.items()))
        return f"Hypergraph({parts})"


def gyo_reduction(hypergraph: Hypergraph) -> tuple[bool, dict[str, str]]:
    """Run GYO ear removal.

    Returns ``(acyclic, parent)`` where ``parent`` maps each removed edge
    to the edge that witnessed its removal (the join-tree parent); the
    last remaining edge is the root and maps to itself.

    An edge ``e`` is an *ear* if some other edge ``f`` contains every
    vertex of ``e`` that also occurs outside ``e`` (vertices exclusive to
    ``e`` are free riders). The query is α-acyclic iff ears can be
    removed until one edge remains.
    """
    remaining: dict[str, set[str]] = {n: set(vs) for n, vs in hypergraph.edges.items()}
    parent: dict[str, str] = {}

    while len(remaining) > 1:
        ear = _find_ear(remaining)
        if ear is None:
            return False, parent
        name, witness = ear
        del remaining[name]
        parent[name] = witness

    root = next(iter(remaining))
    parent[root] = root
    return True, parent


def _find_ear(remaining: dict[str, set[str]]) -> tuple[str, str] | None:
    """One (ear, witness) pair, or None if no ear exists."""
    for name, vertices in remaining.items():
        # Vertices of `name` that occur in some other edge.
        shared = {
            v
            for v in vertices
            if any(v in other for oname, other in remaining.items() if oname != name)
        }
        for oname, other in remaining.items():
            if oname != name and shared <= other:
                return name, oname
    return None


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """α-acyclicity of a conjunctive query (GYO)."""
    acyclic, _parent = gyo_reduction(Hypergraph.of(query))
    return acyclic


def join_tree(query: ConjunctiveQuery) -> dict[str, str]:
    """A join tree for an acyclic query, as a parent map over atom names.

    The root maps to itself. Raises :class:`DecompositionError` on cyclic
    queries. The returned tree satisfies the running-intersection
    property, which :func:`verify_join_tree` checks independently.
    """
    acyclic, parent = gyo_reduction(Hypergraph.of(query))
    if not acyclic:
        raise DecompositionError(f"query {query} is cyclic; no join tree exists")
    return parent


def verify_join_tree(query: ConjunctiveQuery, parent: dict[str, str]) -> bool:
    """Check the running-intersection property of a parent map.

    For every variable, the set of atoms containing it must induce a
    connected subtree of the tree defined by ``parent``.
    """
    names = {a.name for a in query.atoms}
    if set(parent) != names:
        return False
    roots = [n for n, p in parent.items() if p == n]
    if len(roots) != 1:
        return False

    def path_to_root(node: str) -> list[str]:
        path = [node]
        while parent[path[-1]] != path[-1]:
            path.append(parent[path[-1]])
            if len(path) > len(names):  # cycle guard
                return []
        return path

    for variable in query.variables:
        holders = [a.name for a in query.atoms_with(variable)]
        if len(holders) <= 1:
            continue
        # The subtree induced by `holders` is connected iff for every
        # holder, walking to the root, the first *other* holder reached is
        # connected through nodes... simplest correct check: the minimal
        # subtree spanning the holders must consist only of atoms that
        # contain the variable.
        paths = [path_to_root(h) for h in holders]
        if any(not p for p in paths):
            return False
        # Compute the union of pairwise path-symmetric-differences: the
        # spanning subtree is the union of paths up to the lowest common
        # ancestors. A node lies on the spanning subtree iff it appears in
        # some path but not in the common suffix of all paths.
        common_suffix_len = _common_suffix_length(paths)
        spanning: set[str] = set()
        for p in paths:
            spanning.update(p[: len(p) - common_suffix_len])
        # Add the deepest common ancestor (it joins the branches).
        spanning.add(paths[0][len(paths[0]) - common_suffix_len])
        holder_set = set(holders)
        if not spanning <= holder_set:
            return False
    return True


def minimize_depth(query: ConjunctiveQuery, parent: dict[str, str]) -> dict[str, str]:
    """Find a shallow orientation of a join tree.

    GYM's round count is proportional to the tree depth (slide 79), so a
    shallow join tree is preferable. A join tree is really an undirected
    tree — any node can serve as the root — so we try every root,
    greedily re-parent each node to the shallowest valid ancestor, and
    keep the shallowest result. For a star query this flattens the GYO
    chain to depth 1. The result is always a valid join tree.
    """
    best = None
    best_depth = None
    for root in sorted(parent):
        candidate = _flatten_from_root(query, _reroot(parent, root), root)
        depth = _tree_depth(candidate)
        if best_depth is None or depth < best_depth:
            best, best_depth = candidate, depth
    assert best is not None
    return best


def _reroot(parent: dict[str, str], new_root: str) -> dict[str, str]:
    """Re-orient a tree's parent map so ``new_root`` becomes the root."""
    # Undirected adjacency, then BFS from the new root.
    adjacency: dict[str, set[str]] = {n: set() for n in parent}
    for node, par in parent.items():
        if node != par:
            adjacency[node].add(par)
            adjacency[par].add(node)
    rerooted = {new_root: new_root}
    frontier = [new_root]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in rerooted:
                rerooted[neighbour] = node
                frontier.append(neighbour)
    return rerooted


def _tree_depth(parent: dict[str, str]) -> int:
    def depth_of(node: str) -> int:
        d = 0
        while parent[node] != node:
            node = parent[node]
            d += 1
        return d

    return max(depth_of(n) for n in parent)


def _flatten_from_root(
    query: ConjunctiveQuery, parent: dict[str, str], root: str
) -> dict[str, str]:
    """Greedily re-parent nodes toward the fixed root."""
    parent = dict(parent)

    def depth_of(node: str) -> int:
        d = 0
        while parent[node] != node:
            node = parent[node]
            d += 1
        return d

    changed = True
    while changed:
        changed = False
        for node in sorted(parent, key=depth_of):
            if node == root:
                continue
            # Walk the ancestor chain top-down, try the shallowest first.
            chain = []
            cursor = parent[node]
            while True:
                chain.append(cursor)
                if parent[cursor] == cursor:
                    break
                cursor = parent[cursor]
            for candidate in reversed(chain[1:]):  # exclude current parent
                trial = dict(parent)
                trial[node] = candidate
                if verify_join_tree(query, trial):
                    parent = trial
                    changed = True
                    break
    return parent


def _common_suffix_length(paths: Iterable[list[str]]) -> int:
    """Length of the longest common suffix of all paths."""
    reversed_paths = [list(reversed(p)) for p in paths]
    shortest = min(len(p) for p in reversed_paths)
    length = 0
    for i in range(shortest):
        tokens = {p[i] for p in reversed_paths}
        if len(tokens) == 1:
            length += 1
        else:
            break
    return length
