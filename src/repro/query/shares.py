"""Optimal share computation for the HyperCube algorithm (slides 37–44).

HyperCube arranges ``p`` servers in a grid ``p_1 × … × p_k`` (one
dimension per variable). An atom ``S_j`` is replicated along the
dimensions of variables it does not contain, so the expected number of
its tuples per server is ``|S_j| / Π_{i : x_i ∈ vars(S_j)} p_i``. The
*shares* ``p_i`` minimize the worst atom's per-server traffic subject to
``Π p_i ≤ p``.

Writing ``p_i = p^{e_i}``, the problem becomes the linear program

    minimize λ  s.t.  log|S_j| − (Σ_{i ∈ j} e_i)·log p ≤ λ,  Σ e_i ≤ 1,  e ≥ 0

whose optimum (by LP duality, Beame et al. '14) equals the edge-packing
load formula of slide 40. Real-valued shares are rounded to an integer
grid with ``Π p_i ≤ p`` by exhaustive/greedy search.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import OptimizationError
from repro.query.cq import ConjunctiveQuery


@dataclass(frozen=True)
class ShareAssignment:
    """Result of share optimization for one query + size profile."""

    exponents: dict[str, float]       # e_i: share of variable i is p^{e_i}
    fractional: dict[str, float]      # p^{e_i} (real-valued shares)
    integral: dict[str, int]          # rounded shares, Π ≤ p
    predicted_load: float             # max_j |S_j| / Π_{i∈j} share_i (fractional)
    integral_load: float              # same with the integral shares

    def extents(self, variables: tuple[str, ...]) -> tuple[int, ...]:
        """Integral shares ordered by the query's variable tuple."""
        return tuple(self.integral[v] for v in variables)


def optimal_shares(query: ConjunctiveQuery, sizes: dict[str, int], p: int,
                   max_enumeration: int = 200_000) -> ShareAssignment:
    """Optimal (fractional) shares and a good integral rounding.

    ``sizes`` maps atom names to cardinalities; ``p`` is the server count.
    """
    if p <= 0:
        raise OptimizationError("p must be positive")
    exponents = _share_exponents(query, sizes, p)
    fractional = {v: p ** e for v, e in exponents.items()}
    integral = _round_shares(query, sizes, p, fractional, max_enumeration)
    return ShareAssignment(
        exponents=exponents,
        fractional=fractional,
        integral=integral,
        predicted_load=_max_atom_load(query, sizes, fractional),
        integral_load=_max_atom_load(query, sizes, integral),
    )


def _share_exponents(query: ConjunctiveQuery, sizes: dict[str, int],
                     p: int) -> dict[str, float]:
    """Solve the log-space share LP; returns e_i per variable."""
    variables = list(query.variables)
    k = len(variables)
    log_p = math.log(p) if p > 1 else 1.0  # p=1: all shares 1, any exponents

    # Decision vector: [e_1 … e_k, λ]
    c = np.zeros(k + 1)
    c[-1] = 1.0

    rows, rhs = [], []
    for atom in query.atoms:
        row = np.zeros(k + 1)
        for i, v in enumerate(variables):
            if v in atom.variables:
                row[i] = -log_p
        row[-1] = -1.0
        rows.append(row)
        rhs.append(-math.log(max(sizes[atom.name], 1)))
    # Σ e_i ≤ 1
    budget = np.zeros(k + 1)
    budget[:k] = 1.0
    rows.append(budget)
    rhs.append(1.0)

    bounds = [(0.0, None)] * k + [(None, None)]
    result = linprog(c, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds,
                     method="highs")
    if not result.success:
        raise OptimizationError(f"share LP failed: {result.message}")
    return {v: float(max(result.x[i], 0.0)) for i, v in enumerate(variables)}


def _max_atom_load(query: ConjunctiveQuery, sizes: dict[str, int],
                   shares: dict[str, float] | dict[str, int]) -> float:
    """max_j |S_j| / Π_{i ∈ vars(S_j)} share_i — the expected worst load."""
    worst = 0.0
    for atom in query.atoms:
        denom = math.prod(shares[v] for v in atom.variables)
        worst = max(worst, sizes[atom.name] / denom)
    return worst


def _round_shares(query: ConjunctiveQuery, sizes: dict[str, int], p: int,
                  fractional: dict[str, float], max_enumeration: int) -> dict[str, int]:
    """Integral shares with Π ≤ p minimizing the predicted load.

    Small grids are searched exhaustively over per-variable candidates
    {1, …, ceil(share)+1}; otherwise a floor-rounding with greedy repair
    is used.
    """
    variables = list(query.variables)
    candidate_lists: list[list[int]] = []
    for v in variables:
        hi = max(1, math.ceil(fractional[v]) + 1)
        candidates = sorted({1, *range(max(1, math.floor(fractional[v]) - 1), hi + 1)})
        candidate_lists.append([c for c in candidates if c <= p])

    combos = math.prod(len(c) for c in candidate_lists)
    if combos <= max_enumeration:
        best: dict[str, int] | None = None
        best_rank: tuple | None = None
        for combo in itertools.product(*candidate_lists):
            if math.prod(combo) > p:
                continue
            shares = dict(zip(variables, combo))
            load = _max_atom_load(query, sizes, shares)
            # Rank ties canonically so the result does not depend on the
            # order atoms/variables appear in the query text: among grids
            # with the same worst atom load, prefer the lower *total*
            # replication (what every server sums over its atoms), then
            # the name-lexicographic share vector.
            total = sum(
                sizes[a.name] / math.prod(shares[v] for v in a.variables)
                for a in query.atoms
            )
            rank = (load, total, tuple(shares[v] for v in sorted(variables)))
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = shares
        if best is not None:
            return best

    # Fallback: floor everything (guaranteed feasible), no repair needed.
    floored = {v: max(1, math.floor(fractional[v])) for v in variables}
    while math.prod(floored.values()) > p:
        # Shrink the variable whose share exceeds its fractional value
        # most (name order breaks exact ratio ties deterministically).
        victim = max(
            sorted(floored),
            key=lambda v: floored[v] / max(fractional[v], 1e-12),
        )
        floored[victim] = max(1, floored[victim] - 1)
    return floored


def equal_size_shares(query: ConjunctiveQuery, n: int, p: int) -> ShareAssignment:
    """Shares when all relations have the same size ``n``."""
    return optimal_shares(query, {a.name: n for a in query.atoms}, p)
