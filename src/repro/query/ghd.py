"""Generalized hypertree decompositions (GHDs) — slides 64, 79, 95.

A GHD of a query is a rooted tree where each node has a *bag* of
variables and a *cover* λ (a set of atoms whose variables contain the
bag), such that

1. every atom's variables are contained in some bag ("coverage"),
2. for every variable, the nodes whose bag contains it form a connected
   subtree ("running intersection"),
3. each bag is contained in the union of its cover atoms' variables.

The *width* is the maximum cover size; acyclic queries are exactly those
with width-1 GHDs (join trees). GYM runs on any GHD; its cost is
``r = O(depth)`` rounds and ``L = O((IN^width + OUT)/p)`` load, so GHDs
of different shapes trade rounds for load (slide 95). This module builds:

- :func:`width1_ghd` — a join tree for any acyclic query (via GYO);
- :func:`path_chain_ghd` / :func:`path_flat_ghd` /
  :func:`path_balanced_ghd` — the three path-query decompositions of
  slide 95 (w=1 d=n; w≈n/2 d=1; w=3 d=log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecompositionError
from repro.query.cq import ConjunctiveQuery, path_query
from repro.query.hypergraph import join_tree, minimize_depth


@dataclass
class GHDNode:
    """One node of a decomposition: a variable bag covered by λ atoms."""

    bag: frozenset[str]
    cover: tuple[str, ...]
    children: list["GHDNode"] = field(default_factory=list)

    def walk(self) -> list["GHDNode"]:
        """All nodes of the subtree, preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


class GHD:
    """A generalized hypertree decomposition of a query."""

    def __init__(self, query: ConjunctiveQuery, root: GHDNode) -> None:
        self.query = query
        self.root = root

    def nodes(self) -> list[GHDNode]:
        return self.root.walk()

    @property
    def width(self) -> int:
        """Maximum cover (λ) size over all nodes."""
        return max(len(n.cover) for n in self.nodes())

    @property
    def depth(self) -> int:
        """Edge-depth of the tree (a single node has depth 0)."""

        def depth_of(node: GHDNode) -> int:
            if not node.children:
                return 0
            return 1 + max(depth_of(c) for c in node.children)

        return depth_of(self.root)

    def verify(self) -> bool:
        """Check coverage, running intersection, and cover containment."""
        nodes = self.nodes()
        atom_vars = {a.name: a.var_set() for a in self.query.atoms}

        # (3) each bag is inside the union of its cover atoms' variables.
        for node in nodes:
            union: set[str] = set()
            for name in node.cover:
                if name not in atom_vars:
                    return False
                union |= atom_vars[name]
            if not node.bag <= union:
                return False

        # (1) every atom is covered by some bag.
        for atom in self.query.atoms:
            if not any(atom.var_set() <= node.bag for node in nodes):
                return False

        # (2) running intersection, checked top-down: once a variable
        # leaves the bag on a root-to-leaf path it may not reappear, and
        # the nodes holding it must form one connected component.
        return self._running_intersection()

    def _running_intersection(self) -> bool:
        holders: dict[str, list[GHDNode]] = {}
        for node in self.nodes():
            for v in node.bag:
                holders.setdefault(v, []).append(node)
        parent: dict[int, GHDNode | None] = {id(self.root): None}
        for node in self.nodes():
            for child in node.children:
                parent[id(child)] = node
        for v, nodes in holders.items():
            if len(nodes) == 1:
                continue
            # Connected iff every holder except one has its parent holding v too.
            tops = [n for n in nodes
                    if parent[id(n)] is None or v not in parent[id(n)].bag]
            if len(tops) != 1:
                return False
        return True

    def __repr__(self) -> str:
        return f"GHD(width={self.width}, depth={self.depth}, nodes={len(self.nodes())})"


# -------------------------------------------------------------- constructions


def width1_ghd(query: ConjunctiveQuery, flatten: bool = True) -> GHD:
    """A width-1 GHD (join tree) of an acyclic query, one node per atom.

    With ``flatten=True`` (the default) the tree is greedily re-rooted to
    minimize depth, since GYM's round count is O(depth). Raises
    :class:`DecompositionError` for cyclic queries.
    """
    parent_map = join_tree(query)
    if flatten:
        parent_map = minimize_depth(query, parent_map)
    nodes = {
        a.name: GHDNode(bag=a.var_set(), cover=(a.name,)) for a in query.atoms
    }
    root_name = next(n for n, p in parent_map.items() if p == n)
    for name, parent_name in parent_map.items():
        if name != parent_name:
            nodes[parent_name].children.append(nodes[name])
    ghd = GHD(query, nodes[root_name])
    if not ghd.verify():  # pragma: no cover - GYO guarantees validity
        raise DecompositionError(f"GYO produced an invalid join tree for {query}")
    return ghd


def path_chain_ghd(n: int) -> GHD:
    """Path query, width 1, depth n−1: the natural chain join tree."""
    query = path_query(n)
    root = GHDNode(bag=query.atoms[0].var_set(), cover=(query.atoms[0].name,))
    tip = root
    for atom in query.atoms[1:]:
        child = GHDNode(bag=atom.var_set(), cover=(atom.name,))
        tip.children.append(child)
        tip = child
    return _checked(GHD(query, root))


def path_flat_ghd(n: int) -> GHD:
    """Path query, width ⌈(n+1)/2⌉, depth ≤ 1 (slide 95's w=n/2 shape).

    The root covers every other atom (R1, R3, …) plus Rn, so its bag
    contains all variables; remaining atoms hang off it as leaves.
    """
    query = path_query(n)
    cover_names = [f"R{i}" for i in range(1, n + 1, 2)]
    if f"R{n}" not in cover_names:
        cover_names.append(f"R{n}")
    bag = frozenset(query.variables)
    root = GHDNode(bag=bag, cover=tuple(cover_names))
    for atom in query.atoms:
        if atom.name not in cover_names:
            root.children.append(GHDNode(bag=atom.var_set(), cover=(atom.name,)))
    return _checked(GHD(query, root))


def path_balanced_ghd(n: int) -> GHD:
    """Path query, width ≤ 3, depth O(log n) (slide 95's w=3 shape).

    Recursive construction: the node for atom range [i, j] is covered by
    {R_i, R_mid, R_j}; its children handle the two half-ranges.
    """
    query = path_query(n)

    def build(i: int, j: int) -> GHDNode:
        if j - i + 1 <= 3:
            names = tuple(f"R{t}" for t in range(i, j + 1))
            bag = frozenset().union(*(query.atom(m).var_set() for m in names))
            return GHDNode(bag=bag, cover=names)
        mid = (i + j) // 2
        names = (f"R{i}", f"R{mid}", f"R{j}")
        bag = frozenset().union(*(query.atom(m).var_set() for m in names))
        node = GHDNode(bag=bag, cover=names)
        node.children.append(build(i, mid))
        node.children.append(build(mid, j))
        return node

    return _checked(GHD(query, build(1, n)))


def _checked(ghd: GHD) -> GHD:
    if not ghd.verify():
        raise DecompositionError(
            f"constructed GHD for {ghd.query} violates GHD properties"
        )
    return ghd


def expected_gym_rounds(ghd: GHD) -> int:
    """The optimized-GYM round count O(d): 2 semijoin sweeps + d join rounds."""
    d = max(ghd.depth, 1)
    return 2 * d + d


def expected_balanced_depth(n: int) -> int:
    """Depth of :func:`path_balanced_ghd` — Θ(log n)."""
    depth = 0
    span = n
    while span > 3:
        span = (span + 1) // 2
        depth += 1
    return depth
