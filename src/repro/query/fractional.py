"""Fractional covers and packings of query hypergraphs (slide 39).

Three linear programs drive every load bound in the tutorial:

- **fractional edge packing** — weights ``u_j ≥ 0`` on atoms with
  ``Σ_{j : x ∈ vars(S_j)} u_j ≤ 1`` for every variable ``x``; its optimal
  total weight is ``τ*``. The skew-free one-round load is
  ``IN / p^{1/τ*}`` (slide 40).
- **fractional edge cover** — weights ``w_j ≥ 0`` with
  ``Σ_{j : x ∈ vars(S_j)} w_j ≥ 1``; its optimum is ``ρ*``, the exponent
  of the AGM output bound ``|OUT| ≤ IN^{ρ*}`` (slide 55).
- **fractional vertex cover** — weights on variables covering every atom;
  by LP duality its optimum equals ``τ*``.

``ψ*`` (slide 47) is ``max_x τ*(Q_x)`` over residual queries — the
exponent governing one-round algorithms under *skew*.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import OptimizationError, QueryError
from repro.query.cq import ConjunctiveQuery

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LPResult:
    """Optimal value and weights of one of the hypergraph LPs."""

    value: float
    weights: dict[str, float]

    def weight(self, name: str) -> float:
        return self.weights[name]


def _solve(c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray, names: list[str],
           maximize: bool) -> LPResult:
    sign = -1.0 if maximize else 1.0
    result = linprog(sign * c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(c),
                     method="highs")
    if not result.success:
        raise OptimizationError(f"LP failed: {result.message}")
    value = sign * result.fun
    weights = {name: float(w) for name, w in zip(names, result.x)}
    return LPResult(float(value), weights)


def fractional_edge_packing(query: ConjunctiveQuery,
                            objective: dict[str, float] | None = None) -> LPResult:
    """Maximize Σ c_j·u_j subject to Σ_{j ∋ x} u_j ≤ 1 for every variable x.

    With the default all-ones objective the optimum is ``τ*``. The
    weighted form (``c_j = log |S_j|``) appears in the unequal-size load
    formula of slide 40.
    """
    atoms = query.atoms
    names = [a.name for a in atoms]
    c = np.array([1.0 if objective is None else objective[n] for n in names])
    rows = []
    for variable in query.variables:
        rows.append([1.0 if variable in a.variables else 0.0 for a in atoms])
    a_ub = np.array(rows)
    b_ub = np.ones(len(query.variables))
    return _solve(c, a_ub, b_ub, names, maximize=True)


def fractional_edge_cover(query: ConjunctiveQuery,
                          objective: dict[str, float] | None = None) -> LPResult:
    """Minimize Σ c_j·w_j subject to Σ_{j ∋ x} w_j ≥ 1 for every variable x.

    With the all-ones objective the optimum is ``ρ*``; with
    ``c_j = log |S_j|`` the optimum is the log of the AGM bound.
    """
    atoms = query.atoms
    names = [a.name for a in atoms]
    c = np.array([1.0 if objective is None else objective[n] for n in names])
    rows = []
    for variable in query.variables:
        # ≥ constraints become ≤ after negation.
        rows.append([-1.0 if variable in a.variables else 0.0 for a in atoms])
    a_ub = np.array(rows)
    b_ub = -np.ones(len(query.variables))
    return _solve(c, a_ub, b_ub, names, maximize=False)


def fractional_vertex_cover(query: ConjunctiveQuery) -> LPResult:
    """Minimize Σ v_x subject to Σ_{x ∈ vars(S_j)} v_x ≥ 1 for every atom.

    By LP duality the optimum equals ``τ*`` — tests exploit this.
    """
    variables = list(query.variables)
    c = np.ones(len(variables))
    rows = []
    for atom in query.atoms:
        rows.append([-1.0 if v in atom.variables else 0.0 for v in variables])
    a_ub = np.array(rows)
    b_ub = -np.ones(len(query.atoms))
    return _solve(c, a_ub, b_ub, variables, maximize=False)


def tau_star(query: ConjunctiveQuery) -> float:
    """τ*: the fractional edge packing number (slide 40)."""
    return fractional_edge_packing(query).value


def rho_star(query: ConjunctiveQuery) -> float:
    """ρ*: the fractional edge cover number — the AGM exponent (slide 55)."""
    return fractional_edge_cover(query).value


def psi_star(query: ConjunctiveQuery) -> float:
    """ψ* = max over variable subsets x of τ*(Q_x) (slide 47).

    Governs one-round load under skew: L = IN / p^{1/ψ*}. Enumerates all
    2^k residual queries, so only sensible for small queries (the
    tutorial's all have ≤ 7 variables).
    """
    if len(query.variables) > 16:
        raise QueryError("psi_star enumerates variable subsets; query too large")
    best = tau_star(query)
    for r in range(1, len(query.variables)):
        for bound in itertools.combinations(query.variables, r):
            try:
                residual = query.residual(bound)
            except QueryError:
                continue
            best = max(best, tau_star(residual))
    return best


def verify_packing(query: ConjunctiveQuery, weights: dict[str, float]) -> bool:
    """Check feasibility of an edge packing (used to validate LP output)."""
    if any(w < -_TOLERANCE for w in weights.values()):
        return False
    for variable in query.variables:
        total = sum(weights.get(a.name, 0.0) for a in query.atoms_with(variable))
        if total > 1.0 + 1e-6:
            return False
    return True


def verify_cover(query: ConjunctiveQuery, weights: dict[str, float]) -> bool:
    """Check feasibility of an edge cover."""
    if any(w < -_TOLERANCE for w in weights.values()):
        return False
    for variable in query.variables:
        total = sum(weights.get(a.name, 0.0) for a in query.atoms_with(variable))
        if total < 1.0 - 1e-6:
            return False
    return True


def skew_free_load(query: ConjunctiveQuery, n: int, p: int) -> float:
    """The tutorial's skew-free one-round load N / p^{1/τ*} (slide 41)."""
    return n / p ** (1.0 / tau_star(query))


def skewed_load(query: ConjunctiveQuery, n: int, p: int) -> float:
    """The worst-case one-round load under skew N / p^{1/ψ*} (slide 47)."""
    return n / p ** (1.0 / psi_star(query))


def maximal_load_over_packings(query: ConjunctiveQuery, sizes: dict[str, int],
                               p: int) -> tuple[float, dict[str, float]]:
    """The unequal-size optimal load of slide 40/42.

        L = max over edge packings u of (Π_j |S_j|^{u_j} / p)^{1 / Σ_j u_j}

    The maximum over the packing polytope of a quasi-convex objective is
    attained at a vertex; we enumerate the polytope's vertices for the
    small queries of the tutorial by solving the LP with random positive
    objectives plus all 0/1-support candidates. Returns ``(L, packing)``.
    """
    best_load = 0.0
    best_packing: dict[str, float] = {a.name: 0.0 for a in query.atoms}
    log_sizes = {name: math.log(max(size, 1)) for name, size in sizes.items()}

    for packing in _packing_vertices(query):
        total = sum(packing.values())
        if total <= _TOLERANCE:
            continue
        log_load = (sum(log_sizes[n] * u for n, u in packing.items())
                    - math.log(p)) / total
        load = math.exp(log_load)
        if load > best_load:
            best_load = load
            best_packing = packing
    return best_load, best_packing


def _packing_vertices(query: ConjunctiveQuery) -> list[dict[str, float]]:
    """Vertices of the edge-packing polytope (exact for ≤ ~6 atoms).

    Enumerate all subsets of atoms; for each subset solve the packing LP
    restricted to that support with the all-ones objective, plus the
    classic half-integral vertices. This covers every vertex of the
    polytope for the tutorial's query sizes; duplicates are pruned.
    """
    atoms = [a.name for a in query.atoms]
    if len(atoms) > 12:
        raise QueryError("packing-vertex enumeration is exponential; query too large")
    vertices: list[dict[str, float]] = []
    seen: set[tuple[float, ...]] = set()

    for r in range(1, len(atoms) + 1):
        for support in itertools.combinations(range(len(atoms)), r):
            support_set = {atoms[i] for i in support}
            objective = {n: (1.0 if n in support_set else -1000.0) for n in atoms}
            result = fractional_edge_packing(query, objective)
            rounded = tuple(round(result.weights[n], 9) for n in atoms)
            if rounded not in seen:
                seen.add(rounded)
                vertices.append({n: max(result.weights[n], 0.0) for n in atoms})
    return vertices
