"""The AGM output-size bound (slide 55).

For a full conjunctive query Q with relation sizes |S_j|, every fractional
edge cover (w_j) bounds the output:

    |OUT| ≤ Π_j |S_j|^{w_j}

and the bound is tight for the best cover. With equal sizes |S_j| = IN the
bound reads |OUT| ≤ IN^{ρ*}.
"""

from __future__ import annotations

import math

from repro.query.cq import ConjunctiveQuery
from repro.query.fractional import fractional_edge_cover


def agm_bound(query: ConjunctiveQuery, sizes: dict[str, int]) -> float:
    """The optimal AGM bound Π_j |S_j|^{w_j} for the given relation sizes.

    ``sizes`` maps atom names to relation cardinalities. An empty relation
    makes the bound 0 (the query returns nothing).
    """
    if any(sizes[a.name] == 0 for a in query.atoms):
        return 0.0
    objective = {a.name: math.log(sizes[a.name]) for a in query.atoms}
    cover = fractional_edge_cover(query, objective)
    return math.exp(cover.value)


def agm_bound_equal(query: ConjunctiveQuery, n: int) -> float:
    """The equal-size AGM bound IN^{ρ*}."""
    return agm_bound(query, {a.name: n for a in query.atoms})


def output_within_agm(query: ConjunctiveQuery, sizes: dict[str, int],
                      out_size: int) -> bool:
    """Whether an observed output size respects the AGM bound.

    A tolerance of 0.5 absorbs float rounding of the LP exponentials.
    """
    return out_size <= agm_bound(query, sizes) + 0.5


def agm_ratio(query: ConjunctiveQuery, sizes: dict[str, int],
              out_size: int) -> float:
    """``out_size`` as a fraction of the AGM bound (0.0 for an empty bound).

    The differential harness reports this per instance: a ratio above
    1.0 (modulo float rounding) is a theorem violation — some algorithm
    produced tuples a correct evaluation cannot.
    """
    bound = agm_bound(query, sizes)
    if bound == 0.0:
        return 0.0 if out_size == 0 else float("inf")
    return out_size / bound
