"""A tiny datalog-style parser for conjunctive queries.

Accepts the notation the tutorial writes queries in::

    Q(x, y, z) :- R(x, y), S(y, z), T(z, x)

The head is optional (full CQs output every variable anyway), so both of
these parse to the same query::

    R(x, y), S(y, z), T(z, x)
    Δ(x,y,z) :- R(x,y), S(y,z), T(z,x)

Grammar (whitespace-insensitive)::

    query := [head ":-"] atom ("," atom)*
    atom  := NAME "(" NAME ("," NAME)* ")"
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.query.cq import Atom, ConjunctiveQuery

_ATOM = re.compile(r"\s*([^\s(),]+)\s*\(([^()]*)\)\s*")


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from datalog-ish notation.

    >>> q = parse_query("R(x, y), S(y, z), T(z, x)")
    >>> [a.name for a in q.atoms]
    ['R', 'S', 'T']
    """
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head = _parse_atom(head_text)
    else:
        head, body_text = None, text

    atoms = []
    position = 0
    body = body_text.strip()
    while position < len(body):
        match = _ATOM.match(body, position)
        if not match:
            raise QueryError(f"cannot parse query body at: {body[position:]!r}")
        atoms.append(_make_atom(match))
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                raise QueryError(
                    f"expected ',' between atoms at: {body[position:]!r}"
                )
            position += 1
    if not atoms:
        raise QueryError(f"no atoms found in query {text!r}")

    query = ConjunctiveQuery(atoms)
    if head is not None:
        missing = set(head.variables) - set(query.variables)
        if missing:
            raise QueryError(
                f"head variables {sorted(missing)} do not appear in the body"
            )
        if set(head.variables) != set(query.variables):
            raise QueryError(
                "only full conjunctive queries are supported: the head must "
                f"contain every body variable {query.variables}"
            )
    return query


def unparse_query(query: ConjunctiveQuery) -> str:
    """Render a query back into the notation :func:`parse_query` accepts.

    Round-trip guarantee: ``parse_query(unparse_query(q))`` yields a
    query with the same atoms (names, variable lists and order) as ``q``.
    """
    return ", ".join(str(atom) for atom in query.atoms)


def _parse_atom(text: str) -> Atom:
    match = _ATOM.fullmatch(text)
    if not match:
        raise QueryError(f"cannot parse atom {text.strip()!r}")
    return _make_atom(match)


def _make_atom(match: re.Match) -> Atom:
    name = match.group(1)
    variables = [v.strip() for v in match.group(2).split(",") if v.strip()]
    if not variables:
        raise QueryError(f"atom {name!r} has no variables")
    return Atom(name, variables)
