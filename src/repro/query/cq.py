"""Conjunctive queries (full CQs) and residual queries.

The tutorial studies *full* conjunctive queries

    Q(x1, …, xk) = S1(vars1) ⋈ S2(vars2) ⋈ … ⋈ Sl(varsl)

where the head contains every variable. An :class:`Atom` names a relation
and lists its variables; a :class:`ConjunctiveQuery` is a list of atoms.

Residual queries (slide 47): fixing a set of variables ``x`` (because
their values are heavy hitters handled separately) yields ``Q_x``,
obtained by removing those variables from every atom and deleting atoms
that become empty. SkewHC computes one residual query per heavy/light
combination.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.data.relation import Relation
from repro.errors import QueryError


@dataclass(frozen=True)
class Atom:
    """One atom ``name(variables)`` of a conjunctive query.

    Variables within an atom must be distinct (the tutorial's queries all
    satisfy this; repeated variables can be expressed with a selection
    before the join).
    """

    name: str
    variables: tuple[str, ...]

    def __init__(self, name: str, variables: Sequence[str]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "variables", tuple(variables))
        if not self.variables:
            raise QueryError(f"atom {name} has no variables")
        if len(set(self.variables)) != len(self.variables):
            raise QueryError(f"atom {name}{self.variables} repeats a variable")

    @property
    def arity(self) -> int:
        return len(self.variables)

    def var_set(self) -> frozenset[str]:
        return frozenset(self.variables)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A full conjunctive query: the natural join of its atoms.

    >>> triangle = ConjunctiveQuery([
    ...     Atom("R", ["x", "y"]), Atom("S", ["y", "z"]), Atom("T", ["z", "x"]),
    ... ])
    >>> triangle.variables
    ('x', 'y', 'z')
    """

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self.atoms = list(atoms)
        if not self.atoms:
            raise QueryError("a query needs at least one atom")
        names = [a.name for a in self.atoms]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate atom names in query: {names}")
        seen: dict[str, None] = {}
        for atom in self.atoms:
            for v in atom.variables:
                seen.setdefault(v)
        self.variables: tuple[str, ...] = tuple(seen)

    def atom(self, name: str) -> Atom:
        """The atom called ``name``."""
        for a in self.atoms:
            if a.name == name:
                return a
        raise QueryError(f"no atom named {name!r} in {self}")

    def atoms_with(self, variable: str) -> list[Atom]:
        """All atoms containing ``variable``."""
        return [a for a in self.atoms if variable in a.variables]

    def residual(self, bound: Iterable[str]) -> "ConjunctiveQuery":
        """The residual query Q_x: drop ``bound`` variables, drop empty atoms.

        Raises :class:`QueryError` if *every* atom becomes empty (the
        residual of a fully bound query is a constant, not a query).
        """
        bound_set = set(bound)
        unknown = bound_set - set(self.variables)
        if unknown:
            raise QueryError(f"cannot bind unknown variables {sorted(unknown)}")
        new_atoms = []
        for atom in self.atoms:
            remaining = [v for v in atom.variables if v not in bound_set]
            if remaining:
                new_atoms.append(Atom(atom.name, remaining))
        if not new_atoms:
            raise QueryError(f"residual of {self} on {sorted(bound_set)} has no atoms")
        return ConjunctiveQuery(new_atoms)

    def evaluate(self, relations: Mapping[str, Relation]) -> Relation:
        """Reference (sequential) evaluation: left-deep natural join.

        ``relations`` maps atom names to relations whose schemas use the
        atom's variables as attribute names. Used as ground truth in tests.
        """
        result: Relation | None = None
        for atom in self.atoms:
            rel = self._bound_relation(atom, relations)
            result = rel if result is None else result.join(rel)
        assert result is not None
        # Normalize the column order to the query's variable order.
        return result.project(list(self.variables), name="OUT")

    def _bound_relation(self, atom: Atom, relations: Mapping[str, Relation]) -> Relation:
        try:
            rel = relations[atom.name]
        except KeyError:
            raise QueryError(f"no relation bound for atom {atom.name!r}") from None
        if rel.schema.attributes != atom.variables:
            if set(rel.schema.attributes) != set(atom.variables):
                raise QueryError(
                    f"relation {rel.name} attributes {rel.schema.attributes} do not "
                    f"match atom {atom}"
                )
            rel = rel.project(list(atom.variables))
        return rel

    def __str__(self) -> str:
        return " ⋈ ".join(str(a) for a in self.atoms)

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({[str(a) for a in self.atoms]})"


# --------------------------------------------------------------- common queries


def two_way_join() -> ConjunctiveQuery:
    """R(x,y) ⋈ S(y,z) — the tutorial's two-way join."""
    return ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])


def triangle_query() -> ConjunctiveQuery:
    """Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x) (slide 34)."""
    return ConjunctiveQuery(
        [Atom("R", ["x", "y"]), Atom("S", ["y", "z"]), Atom("T", ["z", "x"])]
    )


def two_path_query() -> ConjunctiveQuery:
    """R(x), S(x,y), T(y) — the intersection-path example (slide 53)."""
    return ConjunctiveQuery([Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])])


def path_query(n: int) -> ConjunctiveQuery:
    """The length-n path R1(A0,A1) ⋈ R2(A1,A2) ⋈ … ⋈ Rn(A(n-1),An) (slide 79)."""
    if n < 1:
        raise QueryError("path query needs at least one atom")
    return ConjunctiveQuery(
        [Atom(f"R{i}", [f"A{i - 1}", f"A{i}"]) for i in range(1, n + 1)]
    )


def star_query(n: int) -> ConjunctiveQuery:
    """The star R1(A0,A1) ⋈ R2(A0,A2) ⋈ … ⋈ Rn(A0,An) (slide 79)."""
    if n < 1:
        raise QueryError("star query needs at least one atom")
    return ConjunctiveQuery(
        [Atom(f"R{i}", ["A0", f"A{i}"]) for i in range(1, n + 1)]
    )


def cycle_query(n: int) -> ConjunctiveQuery:
    """The length-n cycle R1(x1,x2) ⋈ … ⋈ Rn(xn,x1); n=3 is the triangle."""
    if n < 3:
        raise QueryError("cycle query needs at least three atoms")
    return ConjunctiveQuery(
        [Atom(f"R{i}", [f"x{i}", f"x{(i % n) + 1}"]) for i in range(1, n + 1)]
    )


def spider_query() -> ConjunctiveQuery:
    """The slide-61 open query: R1(x1,x2,x3) ⋈ R2(y1,y2,y3) ⋈ S1(x1,y1) ⋈ S2(x2,y2) ⋈ S3(x3,y3)."""
    return ConjunctiveQuery(
        [
            Atom("R1", ["x1", "x2", "x3"]),
            Atom("R2", ["y1", "y2", "y3"]),
            Atom("S1", ["x1", "y1"]),
            Atom("S2", ["x2", "y2"]),
            Atom("S3", ["x3", "y3"]),
        ]
    )
