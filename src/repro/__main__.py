"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run t3 f5 ...        # run selected experiments
    python -m repro run all              # run everything (minutes)
    python -m repro selftest             # differential correctness gate
    python -m repro bench --quick        # measured wall-time benchmarks
    python -m repro serve --clients 8    # concurrent query service + load

Each experiment prints the same rows the tutorial reports; the mapping
from ids to slides lives in DESIGN.md. ``selftest`` validates every
algorithm entry point against the single-node oracle on randomized
instances (see :mod:`repro.testing.selftest`); extra arguments are
forwarded, e.g. ``python -m repro selftest --instances 16``.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent.parent.parent / "benchmarks"

_EXPERIMENTS = {
    "t1": "bench_t1_cost_regimes",
    "f1": "bench_f1_load_concentration",
    "f2": "bench_f2_skew_threshold",
    "t2": "bench_t2_cartesian",
    "t3": "bench_t3_skew_join",
    "f3": "bench_f3_triangle",
    "t4": "bench_t4_unequal",
    "f4": "bench_f4_speedup",
    "t5": "bench_t5_skewhc",
    "t6": "bench_t6_rounds",
    "t7": "bench_t7_agm",
    "f5": "bench_f5_hl_semijoin",
    "t8": "bench_t8_gym",
    "f6": "bench_f6_ghd_tradeoff",
    "t9": "bench_t9_sorting",
    "t10": "bench_t10_matmul",
    "f7": "bench_f7_matmul_frontier",
    "t11": "bench_t11_matmul_lb",
    "x1": "bench_x1_extensions",
    "x2": "bench_x2_open_problems",
    "x3": "bench_x3_faults",
    "x4": "bench_x4_backend_scaling",
    "x7": "bench_x7_planner",
    "ablations": "bench_ablations",
}


def _run_experiment(experiment_id: str) -> None:
    module_name = _EXPERIMENTS[experiment_id]
    path = _BENCH_DIR / f"{module_name}.py"
    if not path.exists():
        print(f"benchmark file not found: {path}", file=sys.stderr)
        raise SystemExit(2)
    sys.path.insert(0, str(_BENCH_DIR))
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.path.remove(str(_BENCH_DIR))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tutorial's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("ids", nargs="+", help="experiment ids, e.g. t3 f5, or 'all'")
    sub.add_parser(
        "selftest",
        help="differentially validate every algorithm against the oracle",
        add_help=False,
    )
    sub.add_parser(
        "bench",
        help="run the measured benchmarks and write BENCH_3.json",
        add_help=False,
    )
    sub.add_parser(
        "serve",
        help="run the concurrent query service under a client load",
        add_help=False,
    )
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["selftest"]:
        # Forward everything after the subcommand to the selftest parser
        # (its own --help documents the options).
        from repro.testing.selftest import main as selftest_main

        return selftest_main(argv[1:])
    if argv[:1] == ["bench"]:
        from repro.bench.runner import main as bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["serve"]:
        from repro.service.cli import main as serve_main

        return serve_main(argv[1:])
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id, module in _EXPERIMENTS.items():
            print(f"  {experiment_id:<10} {module}")
        return 0

    ids = list(_EXPERIMENTS) if args.ids == ["all"] else args.ids
    unknown = [i for i in ids if i not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        _run_experiment(experiment_id)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
