"""Measured wall-time benchmarks (``python -m repro bench``).

Unlike :mod:`repro.theory`, which predicts loads analytically, and the
``benchmarks/`` scripts, which print the tutorial's tables, this package
*measures*: curated experiments at fixed seeds and sizes, wall-clock
timed, written as a schema-validated JSON document (``BENCH_3.json``)
together with kernels on/off speedup pairs whose model-visible behavior
(``L_max``, rounds, output) is verified identical. A comparator diffs
two BENCH files and flags wall-time regressions beyond a threshold.
"""

from repro.bench.compare import BenchComparison, ComparisonEntry, compare_bench
from repro.bench.experiments import EXPERIMENTS, Experiment, experiment
from repro.bench.runner import (
    machine_info,
    main,
    run_bench,
    run_experiment,
    run_speedup,
)
from repro.bench.schema import SCHEMA_VERSION, validate_bench

__all__ = [
    "EXPERIMENTS",
    "BenchComparison",
    "ComparisonEntry",
    "Experiment",
    "SCHEMA_VERSION",
    "compare_bench",
    "experiment",
    "machine_info",
    "main",
    "run_bench",
    "run_experiment",
    "run_speedup",
    "validate_bench",
]
