"""The x7 planner scenarios: one workload per cost-model regime.

Each scenario is a conjunctive query plus seeded relations shaped so
that exactly one strategy family should win on predicted load — a
uniform two-way join for ``hash``, a tiny build side for ``broadcast``,
a Zipf-skewed join for ``skew``, uniform and power-law triangles for
``hypercube`` / ``skewhc``, an acyclic path for ``gym``, a star for
``hypercube`` again, and a variable-disjoint pair for ``cartesian``.

The x7 bench (:func:`repro.bench.runner.run_bench_x7`) plans each
scenario once, then executes *every* applicable candidate — chosen and
rejected alike — recording the predicted-vs-measured load ratio per
strategy. The committed BENCH_7 artifact certifies that no strategy's
measured L_max exceeds twice its prediction at these seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.generators import (
    skewed_relation,
    uniform_relation,
)
from repro.data.graphs import power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation

__all__ = ["PlannerScenario", "planner_scenarios"]


@dataclass(frozen=True)
class PlannerScenario:
    """One planner workload: query text, inputs, and the expected winner."""

    name: str
    query: str
    relations: Mapping[str, Relation]
    p: int
    n: int
    seed: int
    expect: str  # the strategy the cost model should choose here

    @property
    def in_size(self) -> int:
        return sum(len(r) for r in self.relations.values())


def planner_scenarios(quick: bool = False) -> list[PlannerScenario]:
    """The committed scenario set (smaller sizes under ``quick``)."""
    scale = 4 if quick else 1
    scenarios: list[PlannerScenario] = []

    # Uniform two-way join: no skew, both sides large -> hash wins the
    # IN/p regime (hypercube ties and loses the precedence tiebreak).
    n = 20_000 // scale
    scenarios.append(PlannerScenario(
        name="two_way_uniform",
        query="R(x, y), S(y, z)",
        relations={
            "R": uniform_relation("R", ("x", "y"), n, 4_000 // scale, seed=701),
            "S": uniform_relation("S", ("y", "z"), n, 4_000 // scale, seed=702),
        },
        p=16, n=n, seed=7, expect="hash",
    ))

    # One tiny side: replicating it everywhere is cheaper than
    # repartitioning the big side.
    n = 12_000 // scale
    scenarios.append(PlannerScenario(
        name="broadcast_small_side",
        query="R(x, y), S(y, z)",
        relations={
            "R": uniform_relation("R", ("x", "y"), n, 1_200 // scale, seed=711),
            "S": uniform_relation("S", ("y", "z"), 150, 1_200 // scale, seed=712),
        },
        p=16, n=n, seed=7, expect="broadcast",
    ))

    # Zipf-skewed join key: heavy hitters void the hash guarantee; the
    # two-phase skew join prices below broadcast and hash.
    n = 6_000 // scale
    scenarios.append(PlannerScenario(
        name="two_way_zipf",
        query="R(x, y), S(y, z)",
        relations={
            "R": skewed_relation("R", ["x", "y"], n, "y",
                                 universe=600 // scale, s=1.3, seed=721),
            "S": skewed_relation("S", ["y", "z"], n, "y",
                                 universe=600 // scale, s=1.3, seed=722),
        },
        p=16, n=n, seed=7, expect="skew",
    ))

    # Uniform triangle: the one-round HyperCube regime.
    n = 4_000 // scale
    edges = random_edges(n, 300 // scale, seed=731)
    r, s, t = triangle_relations(edges)
    scenarios.append(PlannerScenario(
        name="triangle_uniform",
        query="R(x, y), S(y, z), T(z, x)",
        relations={"R": r, "S": s, "T": t},
        p=16, n=n, seed=7, expect="hypercube",
    ))

    # Power-law triangle: degree skew voids plain HyperCube; SkewHC's
    # residual decomposition is the only guaranteed one-round plan.
    n = 3_000 // scale
    edges = power_law_edges(n, 400 // scale, s=1.4, seed=741)
    r, s, t = triangle_relations(edges)
    scenarios.append(PlannerScenario(
        name="triangle_power_law",
        query="R(x, y), S(y, z), T(z, x)",
        relations={"R": r, "S": s, "T": t},
        p=16, n=n, seed=7, expect="skewhc",
    ))

    # Acyclic path, sparse joins (domain ~ n, so OUT stays near IN):
    # GYM's (IN+OUT)/p multi-round bound beats the one-round shares'
    # IN/p^{1/2} on a length-3 chain.
    n = 3_000 // scale
    scenarios.append(PlannerScenario(
        name="path_three",
        query="R(x, y), S(y, z), T(z, w)",
        relations={
            "R": uniform_relation("R", ("x", "y"), n, 2_000 // scale, seed=751),
            "S": uniform_relation("S", ("y", "z"), n, 2_000 // scale, seed=752),
            "T": uniform_relation("T", ("z", "w"), n, 2_000 // scale, seed=753),
        },
        p=8, n=n, seed=7, expect="gym",
    ))

    # Star: high fractional edge packing keeps HyperCube's one-round
    # share allocation ahead of the multi-round plans.
    n = 3_000 // scale
    scenarios.append(PlannerScenario(
        name="star_three",
        query="R(x, y), S(x, z), T(x, w)",
        relations={
            "R": uniform_relation("R", ("x", "y"), n, 600 // scale, seed=761),
            "S": uniform_relation("S", ("x", "z"), n, 600 // scale, seed=762),
            "T": uniform_relation("T", ("x", "w"), n, 600 // scale, seed=763),
        },
        p=16, n=n, seed=7, expect="hypercube",
    ))

    # Variable-disjoint pair: a pure Cartesian product; the p_1 x p_2
    # grid beats broadcasting either side.
    n = 250 if not quick else 120
    scenarios.append(PlannerScenario(
        name="product_pair",
        query="R(a, b), S(c, d)",
        relations={
            "R": uniform_relation("R", ("a", "b"), n, 200, seed=771),
            "S": uniform_relation("S", ("c", "d"), n, 200, seed=772),
        },
        p=16, n=n, seed=7, expect="cartesian",
    ))
    return scenarios
