"""The BENCH file schema (``repro-bench/1``) and its validator.

A BENCH file is a JSON document::

    {
      "schema": "repro-bench/1",
      "machine": {"platform": str, "python": str, "numpy": str,
                  "cpu_count": int,
                  # optional, absent in pre-backend files (== inline):
                  "backend": str, "workers": int, "transport": str},
      "kernels": bool,          # kernels enabled for the experiment runs
      "quick": bool,            # --quick sizes
      "experiments": [
        {"name": str, "n": int, "p": int, "seconds": float,
         "L_max": int, "rounds": int, "out_size": int}, ...
      ],
      "speedups": [             # kernels on-vs-off pairs
        {"name": str, "n": int, "p": int,
         "seconds_on": float, "seconds_off": float, "speedup": float,
         "L_max": int, "rounds": int,
         "identical": bool,    # on/off stats + output byte-identical
         "oracle_ok": bool}, ...
      ],
      "scaling": [              # optional: backend-scaling sweep (x4)
        {"name": str, "n": int, "p": int,
         "backend": str, "workers": int, "transport": str,
         "seconds": float, "speedup": float,   # inline_s / this_s
         "L_max": int, "rounds": int, "out_size": int,
         "identical": bool}, ...  # matches the inline reference exactly
      ],
      "x7": [                   # optional: planner predicted-vs-measured
        {"name": str,           # scenario name
         "strategy": str,       # the candidate executed for this record
         "n": int, "p": int,
         "chosen": bool,        # the cost model picked this candidate
         "predicted_load": float, "measured_load": int,
         "predicted_rounds": int, "measured_rounds": int,
         "ratio": float,        # measured_load / predicted_load
         "seconds": float, "out_size": int}, ...
      ],
      "x8": [                   # optional: concurrent service throughput
        {"name": str,           # arm name, e.g. "clients4" or "split2"
         "clients": int,        # concurrent client threads
         "workers": int,        # service worker threads
         "split": int,          # query split factor (1 = no rewrite)
         "queries": int,        # requests issued across all clients
         "completed": int, "rejected": int,
         "seconds": float,      # wall time of the whole arm
         "queries_per_second": float,
         "cache_hits": int, "cache_misses": int,
         "cache_hit_rate": float,
         "identical": bool}, ...  # every result byte-matched the serial
                                  # baseline (canonical row order)
      ],
      "transport_ab": [         # optional: shm row-packing on/off bytes
        {"name": str, "n": int, "p": int, "workers": int,
         "rows_packing": bool,  # REPRO_SHM_ROWS state for this run
         "seconds": float,
         "shm_bytes": int,      # bytes carried via shared memory (both ways)
         "pickle_bytes": int,   # bytes carried via queue pickle (both ways)
         "L_max": int, "rounds": int, "out_size": int,
         "identical": bool}, ...  # both modes agree with each other
      ],
      "x9": [                   # optional: dispatch-protocol overhead sweep
        {"name": str, "n": int, "p": int, "workers": int,
         "queries": int,        # repeated runs through one pool
         "protocol": str,       # "resident" or "snapshot"
         "seconds": float,
         "queue_messages": int, # coordinator->worker round-trips
         "snapshot_dispatches": int,  # messages shipping a full payload
         "shm_bytes_out": int, "pickle_bytes_out": int,
         "dispatch_bytes_out": int,
         "resident_hits": int, "resident_bytes_saved": int,
         "fallback_dispatches": int,
         "dispatch_ratio": float,  # snapshot/resident snapshot_dispatches
         "pickle_ratio": float,    # snapshot/resident pickle_bytes_out
         "identical": bool}, ...   # every run matched the inline reference
      ],
      "x10": [                  # optional: memoization on/off sweep
        {"name": str, "n": int, "p": int,
         "queries": int,        # repeated runs per arm
         "seconds_on": float, "seconds_off": float,
         "speedup": float,      # seconds_off / seconds_on
         "hash_ops_on": int, "hash_ops_off": int,
         "hash_ops_ratio": float,  # hash_ops_off / hash_ops_on (0 when
                                   # the scenario hashes nothing, e.g.
                                   # splitter-based multiround sort)
         "partition_hits": int, "view_hits": int, "bytes_saved": int,
         "identical": bool}, ...   # both arms byte-identical per run
      ]
    }

Validation is hand-rolled (no jsonschema dependency): it returns a flat
list of human-readable error strings, empty when the document conforms.
"""

from __future__ import annotations

from typing import Any

SCHEMA_VERSION = "repro-bench/1"

__all__ = ["SCHEMA_VERSION", "validate_bench"]

_MACHINE_FIELDS: dict[str, type] = {
    "platform": str,
    "python": str,
    "numpy": str,
    "cpu_count": int,
}

# Written by every current runner, but optional so files from before the
# execution-backend layer still validate (their absence means inline).
_MACHINE_OPTIONAL_FIELDS: dict[str, type] = {
    "backend": str,
    "workers": int,
    "transport": str,
}

_EXPERIMENT_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "seconds": (int, float),
    "L_max": (int,),
    "rounds": (int,),
    "out_size": (int,),
}

_SPEEDUP_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "seconds_on": (int, float),
    "seconds_off": (int, float),
    "speedup": (int, float),
    "L_max": (int,),
    "rounds": (int,),
    "identical": (bool,),
    "oracle_ok": (bool,),
}

_SCALING_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "backend": (str,),
    "workers": (int,),
    "transport": (str,),
    "seconds": (int, float),
    "speedup": (int, float),
    "L_max": (int,),
    "rounds": (int,),
    "out_size": (int,),
    "identical": (bool,),
}


_X7_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "strategy": (str,),
    "n": (int,),
    "p": (int,),
    "chosen": (bool,),
    "predicted_load": (int, float),
    "measured_load": (int,),
    "predicted_rounds": (int,),
    "measured_rounds": (int,),
    "ratio": (int, float),
    "seconds": (int, float),
    "out_size": (int,),
}


_X8_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "clients": (int,),
    "workers": (int,),
    "split": (int,),
    "queries": (int,),
    "completed": (int,),
    "rejected": (int,),
    "seconds": (int, float),
    "queries_per_second": (int, float),
    "cache_hits": (int,),
    "cache_misses": (int,),
    "cache_hit_rate": (int, float),
    "identical": (bool,),
}


_TRANSPORT_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "workers": (int,),
    "rows_packing": (bool,),
    "seconds": (int, float),
    "shm_bytes": (int,),
    "pickle_bytes": (int,),
    "L_max": (int,),
    "rounds": (int,),
    "out_size": (int,),
    "identical": (bool,),
}


_X9_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "workers": (int,),
    "queries": (int,),
    "protocol": (str,),
    "seconds": (int, float),
    "queue_messages": (int,),
    "snapshot_dispatches": (int,),
    "shm_bytes_out": (int,),
    "pickle_bytes_out": (int,),
    "dispatch_bytes_out": (int,),
    "resident_hits": (int,),
    "resident_bytes_saved": (int,),
    "fallback_dispatches": (int,),
    # Mean outbound bytes per queue message; null (None) when the arm
    # sent no queue message at all — a mean over zero messages is
    # undefined and must not masquerade as "0 bytes".
    "bytes_per_message": (int, float, type(None)),
    "dispatch_ratio": (int, float),
    "pickle_ratio": (int, float),
    "identical": (bool,),
}


_X10_FIELDS: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "n": (int,),
    "p": (int,),
    "queries": (int,),
    "seconds_on": (int, float),
    "seconds_off": (int, float),
    "speedup": (int, float),
    "hash_ops_on": (int,),
    "hash_ops_off": (int,),
    "hash_ops_ratio": (int, float),
    "partition_hits": (int,),
    "view_hits": (int,),
    "bytes_saved": (int,),
    "identical": (bool,),
}


def _check_record(
    record: Any, fields: dict[str, tuple[type, ...]], where: str, errors: list[str]
) -> None:
    if not isinstance(record, dict):
        errors.append(f"{where}: expected an object, got {type(record).__name__}")
        return
    for field, types in fields.items():
        if field not in record:
            errors.append(f"{where}: missing field {field!r}")
            continue
        value = record[field]
        # bool is an int subclass; only accept it where bool is expected.
        if isinstance(value, bool) and bool not in types:
            errors.append(f"{where}.{field}: expected {types[0].__name__}, got bool")
        elif not isinstance(value, types):
            errors.append(
                f"{where}.{field}: expected {types[0].__name__}, "
                f"got {type(value).__name__}"
            )
        elif (
            value is not None
            and not isinstance(value, (str, bool))
            and value < 0
        ):
            errors.append(f"{where}.{field}: must be non-negative, got {value!r}")


def validate_bench(document: Any) -> list[str]:
    """All schema violations in ``document`` (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return [f"top level: expected an object, got {type(document).__name__}"]
    if document.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema: expected {SCHEMA_VERSION!r}, got {document.get('schema')!r}"
        )
    machine = document.get("machine")
    if not isinstance(machine, dict):
        errors.append("machine: expected an object")
    else:
        for field, typ in _MACHINE_FIELDS.items():
            value = machine.get(field)
            if not isinstance(value, typ) or isinstance(value, bool):
                errors.append(f"machine.{field}: expected {typ.__name__}")
        for field, typ in _MACHINE_OPTIONAL_FIELDS.items():
            if field not in machine:
                continue
            value = machine[field]
            if not isinstance(value, typ) or isinstance(value, bool):
                errors.append(f"machine.{field}: expected {typ.__name__}")
    for flag in ("kernels", "quick"):
        if not isinstance(document.get(flag), bool):
            errors.append(f"{flag}: expected a bool")
    experiments = document.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        errors.append("experiments: expected a non-empty list")
    else:
        seen: set[str] = set()
        for i, record in enumerate(experiments):
            _check_record(record, _EXPERIMENT_FIELDS, f"experiments[{i}]", errors)
            name = record.get("name") if isinstance(record, dict) else None
            if isinstance(name, str):
                if name in seen:
                    errors.append(f"experiments[{i}]: duplicate name {name!r}")
                seen.add(name)
    speedups = document.get("speedups", [])  # optional: absent == none run
    if not isinstance(speedups, list):
        errors.append("speedups: expected a list")
    else:
        for i, record in enumerate(speedups):
            _check_record(record, _SPEEDUP_FIELDS, f"speedups[{i}]", errors)
    scaling = document.get("scaling", [])  # optional: only x4 runs emit it
    if not isinstance(scaling, list):
        errors.append("scaling: expected a list")
    else:
        for i, record in enumerate(scaling):
            _check_record(record, _SCALING_FIELDS, f"scaling[{i}]", errors)
            if isinstance(record, dict):
                backend = record.get("backend")
                if isinstance(backend, str) and backend not in ("inline", "process"):
                    errors.append(
                        f"scaling[{i}].backend: expected 'inline' or "
                        f"'process', got {backend!r}"
                    )
    x7 = document.get("x7", [])  # optional: only planner (x7) runs emit it
    if not isinstance(x7, list):
        errors.append("x7: expected a list")
    else:
        pairs: set[tuple[Any, Any]] = set()
        for i, record in enumerate(x7):
            _check_record(record, _X7_FIELDS, f"x7[{i}]", errors)
            if isinstance(record, dict):
                pair = (record.get("name"), record.get("strategy"))
                if pair in pairs:
                    errors.append(
                        f"x7[{i}]: duplicate (name, strategy) pair {pair!r}"
                    )
                pairs.add(pair)
    x8 = document.get("x8", [])  # optional: only service (x8) runs emit it
    if not isinstance(x8, list):
        errors.append("x8: expected a list")
    else:
        names: set[Any] = set()
        for i, record in enumerate(x8):
            _check_record(record, _X8_FIELDS, f"x8[{i}]", errors)
            if isinstance(record, dict):
                name = record.get("name")
                if name in names:
                    errors.append(f"x8[{i}]: duplicate name {name!r}")
                names.add(name)
    transport_ab = document.get("transport_ab", [])  # optional section
    if not isinstance(transport_ab, list):
        errors.append("transport_ab: expected a list")
    else:
        for i, record in enumerate(transport_ab):
            _check_record(record, _TRANSPORT_FIELDS, f"transport_ab[{i}]", errors)
    x9 = document.get("x9", [])  # optional: only protocol (x9) runs emit it
    if not isinstance(x9, list):
        errors.append("x9: expected a list")
    else:
        arms: set[tuple[Any, Any]] = set()
        for i, record in enumerate(x9):
            _check_record(record, _X9_FIELDS, f"x9[{i}]", errors)
            if isinstance(record, dict):
                protocol = record.get("protocol")
                if isinstance(protocol, str) and protocol not in (
                    "resident", "snapshot"
                ):
                    errors.append(
                        f"x9[{i}].protocol: expected 'resident' or "
                        f"'snapshot', got {protocol!r}"
                    )
                arm = (record.get("name"), protocol)
                if arm in arms:
                    errors.append(f"x9[{i}]: duplicate (name, protocol) {arm!r}")
                arms.add(arm)
    x10 = document.get("x10", [])  # optional: only memo (x10) runs emit it
    if not isinstance(x10, list):
        errors.append("x10: expected a list")
    else:
        scenario_names: set[Any] = set()
        for i, record in enumerate(x10):
            _check_record(record, _X10_FIELDS, f"x10[{i}]", errors)
            if isinstance(record, dict):
                name = record.get("name")
                if name in scenario_names:
                    errors.append(f"x10[{i}]: duplicate name {name!r}")
                scenario_names.add(name)
    return errors
