"""Diff two BENCH files and flag wall-time regressions.

``compare_bench`` matches experiments by name and classifies each one:

- ``regressed`` — current time exceeds baseline by more than the
  threshold (default 20%), and the pair is above the noise floor;
- ``improved`` — current time beats baseline by more than the threshold;
- ``ok`` — within the threshold, or both runs under the noise floor
  (``min_seconds``), where ratios are dominated by timer jitter;
- ``missing`` — the baseline experiment did not run at all this time
  (treated as a failure: silently dropping a benchmark is how
  regressions hide);
- ``incomparable`` — the pair exists but no meaningful ratio can be
  formed (zero or negative recorded time against a measurement above
  the noise floor — a corrupt or hand-edited file). Also treated as a
  failure: a pair that cannot be checked must not pass silently;
- ``new`` — present now but not in the baseline (informational).

When both files carry an ``x7`` planner section, the same classification
is applied per ``(scenario, strategy)`` pair to the measured/predicted
load *ratio* (entries named ``x7:{scenario}/{strategy}``, unit ``x``):
a ratio drifting more than the threshold against the baseline means the
cost model and the executors moved apart and is flagged ``regressed``.

``x8`` (concurrent service), ``x9`` (dispatch protocol), and ``x10``
(memoization) sections are compared as *higher-is-better* quantities:
per-arm throughput (``x8:{arm}``, unit ``q/s``), the
resident-over-snapshot savings ratios (``x9:{workload}/dispatch`` and
``x9:{workload}/pickle``, unit ``x``), and the memo-off-over-on ratios
(``x10:{scenario}/speedup`` and ``x10:{scenario}/hash_ops``, unit
``x``). For these a *drop* beyond the threshold is the regression — the
service got slower, or the protocol/memo layer stopped saving what it
used to.

Comparing files measured at different sizes (``--quick`` vs full) is
refused: the ratio would be meaningless. So is comparing files measured
under different execution backends (``machine.backend`` — inline vs a
process pool), unless ``force=True`` (CLI ``--force``): the wall-clock
difference would measure the backend, not the code under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["BenchComparison", "ComparisonEntry", "compare_bench"]


@dataclass(frozen=True)
class ComparisonEntry:
    """One experiment's baseline-vs-current verdict.

    ``unit`` is ``"s"`` for wall-time entries and ``"x"`` for the x7
    planner entries, whose compared quantity is the dimensionless
    measured/predicted load ratio (the field names keep ``seconds`` for
    compatibility; they hold whatever quantity ``unit`` says).
    """

    name: str
    baseline_seconds: float | None
    current_seconds: float | None
    status: str  # ok | improved | regressed | missing | incomparable | new
    unit: str = "s"

    @property
    def ratio(self) -> float | None:
        """current / baseline, when both sides exist and baseline > 0."""
        if (
            self.baseline_seconds is None
            or self.baseline_seconds <= 0
            or self.current_seconds is None
        ):
            return None
        return self.current_seconds / self.baseline_seconds


@dataclass
class BenchComparison:
    """All per-experiment verdicts of one baseline/current diff."""

    threshold: float
    min_seconds: float
    entries: list[ComparisonEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[ComparisonEntry]:
        return [
            e
            for e in self.entries
            if e.status in ("regressed", "missing", "incomparable")
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format_table(self) -> str:
        header = f"{'experiment':<22} {'baseline':>9} {'current':>9} {'ratio':>7}  status"
        lines = [header, "-" * len(header)]
        for e in self.entries:
            base = (
                f"{e.baseline_seconds:.3f}{e.unit}"
                if e.baseline_seconds is not None else "-"
            )
            cur = (
                f"{e.current_seconds:.3f}{e.unit}"
                if e.current_seconds is not None else "-"
            )
            ratio = f"{e.ratio:.2f}x" if e.ratio is not None else "-"
            lines.append(f"{e.name:<22} {base:>9} {cur:>9} {ratio:>7}  {e.status}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressions)} regressions)"
        lines.append("-" * len(header))
        lines.append(f"threshold=+{self.threshold:.0%} floor={self.min_seconds}s "
                     f"verdict={verdict}")
        return "\n".join(lines)


def _times_by_name(document: dict[str, Any]) -> dict[str, float]:
    return {
        record["name"]: float(record["seconds"])
        for record in document.get("experiments", [])
    }


def _x7_ratios_by_pair(document: dict[str, Any]) -> dict[str, float]:
    """``x7:{scenario}/{strategy}`` -> measured/predicted load ratio."""
    return {
        f"x7:{record['name']}/{record['strategy']}": float(record["ratio"])
        for record in document.get("x7", [])
    }


def _x8_throughputs_by_arm(document: dict[str, Any]) -> dict[str, float]:
    """``x8:{arm}`` -> queries per second (higher is better)."""
    return {
        f"x8:{record['name']}": float(record["queries_per_second"])
        for record in document.get("x8", [])
    }


def _x9_ratios_by_workload(document: dict[str, Any]) -> dict[str, float]:
    """``x9:{workload}/{quantity}`` -> snapshot/resident savings ratio.

    Both arm records of a workload carry the same pair ratios; reading
    the ``resident`` arm picks each exactly once.
    """
    ratios: dict[str, float] = {}
    for record in document.get("x9", []):
        if record.get("protocol") != "resident":
            continue
        ratios[f"x9:{record['name']}/dispatch"] = float(record["dispatch_ratio"])
        ratios[f"x9:{record['name']}/pickle"] = float(record["pickle_ratio"])
    return ratios


def _x10_ratios_by_scenario(document: dict[str, Any]) -> dict[str, float]:
    """``x10:{scenario}/{quantity}`` -> memo-off over memo-on ratio.

    ``hash_ops`` entries are only emitted for scenarios that hash at all
    (ratio > 0): a scenario with splitter-based routing legitimately
    records 0, which is not comparable — but a scenario whose ratio
    *drops* to 0 against a positive baseline shows up as ``missing``,
    which is the regression it is.
    """
    ratios: dict[str, float] = {}
    for record in document.get("x10", []):
        ratios[f"x10:{record['name']}/speedup"] = float(record["speedup"])
        if record.get("hash_ops_ratio", 0) > 0:
            ratios[f"x10:{record['name']}/hash_ops"] = float(
                record["hash_ops_ratio"]
            )
    return ratios


def _backend_fingerprint(document: dict[str, Any]) -> tuple[str, int]:
    """(backend, workers) a BENCH file was measured under.

    Files written before the backend layer carry no ``machine.backend``;
    they were necessarily measured inline, so that is the default.
    """
    machine = document.get("machine") or {}
    return (machine.get("backend", "inline"), machine.get("workers", 1))


def compare_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = 0.20,
    min_seconds: float = 0.05,
    force: bool = False,
) -> BenchComparison:
    """Classify every experiment of ``baseline``/``current`` (see module doc)."""
    if baseline.get("quick") != current.get("quick"):
        raise ValueError(
            "refusing to compare BENCH files at different sizes: "
            f"baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}"
        )
    base_backend = _backend_fingerprint(baseline)
    cur_backend = _backend_fingerprint(current)
    if base_backend != cur_backend and not force:
        raise ValueError(
            "refusing to compare BENCH files from different execution "
            f"backends: baseline {base_backend[0]} (workers="
            f"{base_backend[1]}), current {cur_backend[0]} (workers="
            f"{cur_backend[1]}); pass --force to diff anyway"
        )
    base_times = _times_by_name(baseline)
    cur_times = _times_by_name(current)
    comparison = BenchComparison(threshold=threshold, min_seconds=min_seconds)
    for name, base_s in base_times.items():
        if name not in cur_times:
            comparison.entries.append(
                ComparisonEntry(name, base_s, None, "missing")
            )
            continue
        cur_s = cur_times[name]
        if base_s < min_seconds and cur_s < min_seconds:
            status = "ok"  # both under the noise floor
        elif base_s <= 0 or cur_s <= 0:
            # No ratio can be formed: a genuine measurement is never
            # exactly zero (and negative means a corrupt file), while the
            # other side is above the noise floor. Flag it instead of
            # letting it fall through as "ok".
            status = "incomparable"
        elif cur_s > base_s * (1 + threshold):
            status = "regressed"
        elif cur_s < base_s / (1 + threshold):
            status = "improved"
        else:
            status = "ok"
        comparison.entries.append(ComparisonEntry(name, base_s, cur_s, status))
    for name, cur_s in cur_times.items():
        if name not in base_times:
            comparison.entries.append(ComparisonEntry(name, None, cur_s, "new"))
    # x7 planner entries: compare the measured/predicted load ratio per
    # (scenario, strategy) pair. The quantity is dimensionless and
    # deterministic at the committed seeds — no noise floor applies; a
    # drift beyond the threshold means the cost model's predictions
    # genuinely moved against the executors (or vice versa).
    base_x7 = _x7_ratios_by_pair(baseline)
    cur_x7 = _x7_ratios_by_pair(current)
    for name, base_r in base_x7.items():
        if name not in cur_x7:
            comparison.entries.append(
                ComparisonEntry(name, base_r, None, "missing", unit="x")
            )
            continue
        cur_r = cur_x7[name]
        if base_r <= 0 or cur_r <= 0:
            # A genuine ratio is strictly positive (predicted and
            # measured loads both are); zero or negative means a corrupt
            # or hand-edited file and must not pass silently.
            status = "incomparable"
        elif cur_r > base_r * (1 + threshold):
            status = "regressed"
        elif cur_r < base_r / (1 + threshold):
            status = "improved"
        else:
            status = "ok"
        comparison.entries.append(
            ComparisonEntry(name, base_r, cur_r, status, unit="x")
        )
    for name, cur_r in cur_x7.items():
        if name not in base_x7:
            comparison.entries.append(
                ComparisonEntry(name, None, cur_r, "new", unit="x")
            )
    # x8 throughput and x9 protocol-savings entries: higher is better,
    # so the classification flips — a drop beyond the threshold is the
    # regression. Both quantities are strictly positive in a genuine
    # file; zero or negative on either side is flagged, not skipped.
    for higher_better, unit in (
        (( _x8_throughputs_by_arm(baseline), _x8_throughputs_by_arm(current)),
         "q/s"),
        ((_x9_ratios_by_workload(baseline), _x9_ratios_by_workload(current)),
         "x"),
        ((_x10_ratios_by_scenario(baseline), _x10_ratios_by_scenario(current)),
         "x"),
    ):
        base_values, cur_values = higher_better
        for name, base_v in base_values.items():
            if name not in cur_values:
                comparison.entries.append(
                    ComparisonEntry(name, base_v, None, "missing", unit=unit)
                )
                continue
            cur_v = cur_values[name]
            if base_v <= 0 or cur_v <= 0:
                status = "incomparable"
            elif cur_v < base_v / (1 + threshold):
                status = "regressed"
            elif cur_v > base_v * (1 + threshold):
                status = "improved"
            else:
                status = "ok"
            comparison.entries.append(
                ComparisonEntry(name, base_v, cur_v, status, unit=unit)
            )
        for name, cur_v in cur_values.items():
            if name not in base_values:
                comparison.entries.append(
                    ComparisonEntry(name, None, cur_v, "new", unit=unit)
                )
    return comparison
