"""Curated measured benchmarks: fixed seeds, fixed sizes, real wall time.

Each :class:`Experiment` separates *preparation* (input generation and
columnar ingest — untimed, as loading data into a columnar store happens
before a query arrives) from *execution* (the distributed run — timed).
Executions return ``(load, rounds, output_rows)`` so the runner can
record the model-measured cost next to the wall time and verify that
kernels change neither.

Sizes come in a full and a ``--quick`` variant; both use the same seeds,
so two BENCH files at the same size are comparable run-to-run.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.data.generators import skewed_relation, uniform_relation
from repro.data.relation import Relation
from repro.joins.hash_join import parallel_hash_join
from repro.multiway.base import shuffle_multi_semijoin
from repro.multiway.hypercube import triangle_hypercube
from repro.sorting.psrs import psrs_sort

Row = tuple[Any, ...]
ExecResult = tuple[int, int, list[Any]]  # (L_max, rounds, output items)

__all__ = ["EXPERIMENTS", "Experiment", "experiment", "triangle_oracle_rows"]


@dataclass(frozen=True)
class Experiment:
    """One named benchmark: prepare inputs once, time the execution."""

    name: str
    n: int
    quick_n: int
    p: int
    seed: int
    prepare: Callable[[int, int], Any]
    execute: Callable[[Any, int, int], ExecResult]
    speedup_pair: bool = False
    oracle: Callable[[Any], list[Row]] | None = None

    def size(self, quick: bool) -> int:
        return self.quick_n if quick else self.n


def _warm(*relations: Relation) -> None:
    # Columnar ingest: building the column arrays — and, for
    # column-primary relations, the derived tuple view the simulator's
    # scatter charges by — is part of loading, not of query execution.
    for rel in relations:
        rel.columns()
        rel.rows_readonly()


def _prepare_join_uniform(n: int, seed: int) -> tuple[Relation, Relation]:
    # Domain 10n keeps the output ≈ n/10: the benchmark measures the
    # shuffle + probe cost, not output materialization.
    r = uniform_relation("R", ["x", "y"], n, 10 * n, seed=seed)
    s = uniform_relation("S", ["y", "z"], n, 10 * n, seed=seed + 1)
    _warm(r, s)
    return r, s


def _execute_join(inputs: tuple[Relation, Relation], p: int, seed: int) -> ExecResult:
    run = parallel_hash_join(inputs[0], inputs[1], p=p, seed=seed)
    return run.load, run.rounds, run.output.rows()


def _dict_join_rows(r: Relation, s: Relation) -> list[Row]:
    """Single-node dict-index natural join — the bench-scale oracle.

    The exhaustive nested-loop ``repro.testing.oracle`` references are
    quadratic and infeasible at bench sizes; this reference shares no
    code with the kernels (plain dicts and tuples) and is itself
    differentially validated against those oracles by the selftest.
    """
    shared = r.schema.common(s.schema)
    r_idx = r.schema.indices(shared)
    s_idx = s.schema.indices(shared)
    extra_idx = s.schema.indices(
        [a for a in s.schema.attributes if a not in r.schema]
    )
    index: dict[Row, list[Row]] = {}
    for row in s.rows_readonly():
        index.setdefault(tuple(row[i] for i in s_idx), []).append(row)
    return [
        r_row + tuple(s_row[i] for i in extra_idx)
        for r_row in r.rows_readonly()
        for s_row in index.get(tuple(r_row[i] for i in r_idx), ())
    ]


def _oracle_join(inputs: tuple[Relation, Relation]) -> list[Row]:
    return _dict_join_rows(inputs[0], inputs[1])


def _prepare_join_zipf(n: int, seed: int) -> tuple[Relation, Relation]:
    r = skewed_relation("R", ["x", "y"], n, "y", n, s=1.1, seed=seed)
    s = uniform_relation("S", ["y", "z"], n, n, seed=seed + 1)
    _warm(r, s)
    return r, s


def _prepare_triangle(n: int, seed: int) -> tuple[Relation, Relation, Relation]:
    r = uniform_relation("R", ["x", "y"], n, n, seed=seed)
    s = uniform_relation("S", ["y", "z"], n, n, seed=seed + 1)
    t = uniform_relation("T", ["z", "x"], n, n, seed=seed + 2)
    _warm(r, s, t)
    return r, s, t


def _execute_triangle(
    inputs: tuple[Relation, Relation, Relation], p: int, seed: int
) -> ExecResult:
    run = triangle_hypercube(*inputs, p=p, seed=seed)
    return run.load, run.rounds, run.output.rows()


def triangle_oracle_rows(
    inputs: tuple[Relation, Relation, Relation]
) -> list[Row]:
    """Single-node triangle reference: two independent dict-index joins."""
    r, s, t = inputs
    rs = Relation.wrap("RS", ["x", "y", "z"], _dict_join_rows(r, s))
    return _dict_join_rows(rs, t)


def _prepare_semijoin(n: int, seed: int) -> tuple[Relation, list[Relation]]:
    universe = max(n // 4, 16)
    target = uniform_relation("T", ["x", "y"], n, universe, seed=seed)
    reducers = [
        Relation("K1", ["y"], [(v,) for v in range(0, universe, 2)]),
        Relation("K2", ["y"], [(v,) for v in range(0, universe, 3)]),
    ]
    _warm(target, *reducers)
    return target, reducers


def _execute_semijoin(
    inputs: tuple[Relation, list[Relation]], p: int, seed: int
) -> ExecResult:
    result, stats = shuffle_multi_semijoin(inputs[0], inputs[1], p=p, seed=seed)
    return stats.max_load, stats.num_rounds, result.rows()


def _prepare_sort(n: int, seed: int) -> list[int]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return rng.integers(0, 10 * n, size=n).tolist()


def _execute_sort(items: list[int], p: int, seed: int) -> ExecResult:
    ordered, stats = psrs_sort(items, p=p, seed=seed)
    return stats.max_load, stats.num_rounds, ordered


def _prepare_matmul(n: int, seed: int) -> tuple[Any, Any]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return rng.random((n, n)), rng.random((n, n))


def _execute_matmul(inputs: tuple[Any, Any], p: int, seed: int) -> ExecResult:
    from repro.matmul.sql import sql_matmul

    c, stats = sql_matmul(inputs[0], inputs[1], p=p, seed=seed)
    return stats.max_load, stats.num_rounds, c.ravel().tolist()


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="hash_join_uniform",
        n=200_000,
        quick_n=20_000,
        p=64,
        seed=3,
        prepare=_prepare_join_uniform,
        execute=_execute_join,
        speedup_pair=True,
        oracle=_oracle_join,
    ),
    Experiment(
        name="hash_join_zipf",
        n=100_000,
        quick_n=10_000,
        p=64,
        seed=4,
        prepare=_prepare_join_zipf,
        execute=_execute_join,
    ),
    Experiment(
        name="hypercube_triangle",
        n=100_000,
        quick_n=10_000,
        p=64,
        seed=5,
        prepare=_prepare_triangle,
        execute=_execute_triangle,
        speedup_pair=True,
        oracle=triangle_oracle_rows,
    ),
    Experiment(
        name="multi_semijoin",
        n=200_000,
        quick_n=20_000,
        p=64,
        seed=6,
        prepare=_prepare_semijoin,
        execute=_execute_semijoin,
    ),
    Experiment(
        name="psrs_sort",
        n=300_000,
        quick_n=30_000,
        p=64,
        seed=7,
        prepare=_prepare_sort,
        execute=_execute_sort,
    ),
    Experiment(
        name="sql_matmul",
        n=96,
        quick_n=32,
        p=16,
        seed=8,
        prepare=_prepare_matmul,
        execute=_execute_matmul,
    ),
)


def experiment(name: str) -> Experiment:
    """Look an experiment up by name."""
    for exp in EXPERIMENTS:
        if exp.name == name:
            return exp
    raise KeyError(f"unknown experiment {name!r}; have "
                   f"{[e.name for e in EXPERIMENTS]}")
