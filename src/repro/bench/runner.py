"""``python -m repro bench`` — run the measured benchmarks, write BENCH JSON.

The runner executes every curated experiment (untimed preparation, timed
execution), then runs the kernels on/off *speedup pairs*: the same
experiment under both modes, verifying that the measured ``L_max`` and
round count are identical and that the outputs agree with each other and
with the single-node oracle — the wall clock is the only thing the
kernels are allowed to change.

The resulting document (schema ``repro-bench/1``, see
:mod:`repro.bench.schema`) is validated before it is written. A second
BENCH file can be diffed against it with ``--baseline`` (or standalone
via ``--diff A B``); regressions beyond the threshold fail the run
unless ``--warn-only``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.bench.compare import compare_bench
from repro.bench.experiments import EXPERIMENTS, Experiment
from repro.bench.schema import SCHEMA_VERSION, validate_bench
from repro.exec.config import backend_name, transport_name, use_backend, worker_count
from repro.kernels.config import kernels_enabled, use_kernels

__all__ = [
    "machine_info",
    "main",
    "run_bench",
    "run_bench_x4",
    "run_bench_x7",
    "run_bench_x8",
    "run_bench_x9",
    "run_bench_x10",
    "run_experiment",
    "run_scaling",
    "run_speedup",
    "run_transport_ab",
]

# Backend scaling (the x4 bench): pool sizes swept per experiment, and
# the experiments whose local phase is heavy enough to be worth timing
# across transports (≥ 2 by design — the criterion is per-experiment).
SCALING_WORKERS = (1, 2, 4, 8)
SCALING_EXPERIMENTS = (
    "hash_join_uniform",
    "hypercube_triangle",
    "psrs_sort",
    "sql_matmul",
)

# Transport A/B (REPRO_SHM_ROWS on vs off): the two experiments whose
# deliveries are dominated by integer tuple lists, so row packing moves
# the most bytes out of the queues' pickle stream.
TRANSPORT_EXPERIMENTS = ("hash_join_uniform", "hypercube_triangle")


def machine_info() -> dict[str, Any]:
    """The environment fields recorded in every BENCH file.

    ``backend``/``workers``/``transport`` pin down the execution backend
    the run was measured under — two BENCH files from different backends
    are not comparable (the comparator refuses without ``--force``).
    """
    import numpy

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "backend": backend_name(),
        "workers": worker_count() if backend_name() == "process" else 1,
        "transport": transport_name() if backend_name() == "process" else "none",
    }


def _timed(
    experiment: Experiment, inputs: Any, repeats: int
) -> tuple[float, int, int, list[Any]]:
    """Best wall time over ``repeats`` runs, plus the run's results."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        load, rounds, output = experiment.execute(inputs, experiment.p, experiment.seed)
        best = min(best, time.perf_counter() - start)
    return best, load, rounds, output


def run_experiment(
    experiment: Experiment, quick: bool = False, repeats: int = 1
) -> dict[str, Any]:
    """One experiment record: ``{name, n, p, seconds, L_max, rounds, out_size}``."""
    n = experiment.size(quick)
    inputs = experiment.prepare(n, experiment.seed)
    seconds, load, rounds, output = _timed(experiment, inputs, repeats)
    return {
        "name": experiment.name,
        "n": n,
        "p": experiment.p,
        "seconds": seconds,
        "L_max": load,
        "rounds": rounds,
        "out_size": len(output),
    }


def run_speedup(
    experiment: Experiment, quick: bool = False, repeats: int = 2
) -> dict[str, Any]:
    """Kernels on-vs-off record for one experiment (same inputs, same seed)."""
    from repro.testing.oracle import multiset_diff

    n = experiment.size(quick)
    inputs = experiment.prepare(n, experiment.seed)
    with use_kernels(True):
        on_s, on_load, on_rounds, on_out = _timed(experiment, inputs, repeats)
    with use_kernels(False):
        off_s, off_load, off_rounds, off_out = _timed(experiment, inputs, repeats)
    identical = (
        on_load == off_load
        and on_rounds == off_rounds
        and not multiset_diff(off_out, on_out)
    )
    oracle_ok = True
    if experiment.oracle is not None:
        oracle_ok = not multiset_diff(experiment.oracle(inputs), on_out)
    return {
        "name": experiment.name,
        "n": n,
        "p": experiment.p,
        "seconds_on": on_s,
        "seconds_off": off_s,
        "speedup": off_s / on_s if on_s > 0 else 0.0,
        "L_max": on_load,
        "rounds": on_rounds,
        "identical": identical,
        "oracle_ok": oracle_ok,
    }


def run_scaling(
    experiment: Experiment,
    quick: bool = False,
    repeats: int = 2,
    workers: Sequence[int] = SCALING_WORKERS,
    transports: Sequence[str] = ("shm", "pickle"),
) -> list[dict[str, Any]]:
    """Backend-scaling records for one experiment (the x4 sweep).

    Times the inline backend once as the reference, then the process
    backend at every (worker count, transport) combination on the same
    inputs. ``speedup`` is inline-time / process-time (> 1 means the
    pool wins); ``identical`` certifies the process run reproduced the
    inline L_max, round count, and output exactly — the determinism
    contract the backend layer guarantees by construction.
    """
    n = experiment.size(quick)
    inputs = experiment.prepare(n, experiment.seed)
    with use_backend("inline"):
        base_s, base_load, base_rounds, base_out = _timed(
            experiment, inputs, repeats
        )
    records = [{
        "name": experiment.name,
        "n": n,
        "p": experiment.p,
        "backend": "inline",
        "workers": 1,
        "transport": "none",
        "seconds": base_s,
        "speedup": 1.0,
        "L_max": base_load,
        "rounds": base_rounds,
        "out_size": len(base_out),
        "identical": True,
    }]
    for transport in transports:
        for count in workers:
            with use_backend("process", workers=count, transport=transport):
                run_s, load, rounds, output = _timed(experiment, inputs, repeats)
            records.append({
                "name": experiment.name,
                "n": n,
                "p": experiment.p,
                "backend": "process",
                "workers": count,
                "transport": transport,
                "seconds": run_s,
                "speedup": base_s / run_s if run_s > 0 else 0.0,
                "L_max": load,
                "rounds": rounds,
                "out_size": len(output),
                "identical": (
                    load == base_load
                    and rounds == base_rounds
                    and output == base_out
                ),
            })
    return records


def run_transport_ab(
    quick: bool = False, workers: int = 2, echo: bool = True
) -> list[dict[str, Any]]:
    """Shm row-packing on vs off: where the transported bytes actually go.

    Runs each :data:`TRANSPORT_EXPERIMENTS` entry twice on the process
    backend with the ``shm`` transport — once with integer row-block
    packing enabled (the default) and once forced off — and records the
    :class:`~repro.mpc.stats.ExecStats` byte counters of each run.
    ``identical`` certifies the two modes produced the same output,
    L_max, and round count; the interesting delta is ``pickle_bytes``
    (packing moves tuple lists out of the queue stream) against
    ``shm_bytes`` (where those bytes reappear as one block per list).
    """
    from repro.bench.experiments import experiment as experiment_by_name
    from repro.exec.config import use_shm_rows
    from repro.joins.hash_join import parallel_hash_join
    from repro.multiway.hypercube import triangle_hypercube

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    runners = {
        "hash_join_uniform": lambda inputs, p, seed: parallel_hash_join(
            inputs[0], inputs[1], p=p, seed=seed
        ),
        "hypercube_triangle": lambda inputs, p, seed: triangle_hypercube(
            *inputs, p=p, seed=seed
        ),
    }
    records: list[dict[str, Any]] = []
    for name in TRANSPORT_EXPERIMENTS:
        exp = experiment_by_name(name)
        n = exp.size(quick)
        inputs = exp.prepare(n, exp.seed)
        runs: dict[bool, Any] = {}
        for rows_packing in (True, False):
            with use_backend("process", workers=workers, transport="shm"), \
                    use_shm_rows(rows_packing):
                start = time.perf_counter()
                run = runners[name](inputs, exp.p, exp.seed)
                seconds = time.perf_counter() - start
            runs[rows_packing] = run
            ex = run.stats.exec
            records.append({
                "name": name,
                "n": n,
                "p": exp.p,
                "workers": workers,
                "rows_packing": rows_packing,
                "seconds": seconds,
                "shm_bytes": ex.shm_bytes_out + ex.shm_bytes_in,
                "pickle_bytes": ex.pickle_bytes_out + ex.pickle_bytes_in,
                "L_max": run.load,
                "rounds": run.rounds,
                "out_size": len(run.output),
                "identical": True,  # filled in below against the pair
            })
        on, off = runs[True], runs[False]
        identical = (
            on.load == off.load
            and on.rounds == off.rounds
            and on.output.rows_readonly() == off.output.rows_readonly()
        )
        records[-1]["identical"] = identical
        records[-2]["identical"] = identical
        for record in records[-2:]:
            say(
                f"  {record['name']:<22} rows_packing="
                f"{str(record['rows_packing']):<5} "
                f"shm={record['shm_bytes']:>12,}B "
                f"pickle={record['pickle_bytes']:>12,}B "
                f"identical={record['identical']}"
            )
    return records


def run_bench(
    quick: bool = False,
    include_speedups: bool = True,
    echo: bool = True,
) -> dict[str, Any]:
    """Run everything and assemble the BENCH document."""

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    repeats = 3 if quick else 1
    records = []
    for experiment in EXPERIMENTS:
        record = run_experiment(experiment, quick=quick, repeats=repeats)
        say(
            f"  {record['name']:<22} n={record['n']:<8} p={record['p']:<3} "
            f"{record['seconds']:.3f}s  L_max={record['L_max']} "
            f"rounds={record['rounds']} out={record['out_size']}"
        )
        records.append(record)
    speedups = []
    if include_speedups:
        say("kernel speedup pairs (on vs off):")
        for experiment in EXPERIMENTS:
            if not experiment.speedup_pair:
                continue
            record = run_speedup(
                experiment, quick=quick, repeats=3 if quick else 2
            )
            say(
                f"  {record['name']:<22} on={record['seconds_on']:.3f}s "
                f"off={record['seconds_off']:.3f}s "
                f"speedup={record['speedup']:.1f}x "
                f"identical={record['identical']} oracle={record['oracle_ok']}"
            )
            speedups.append(record)
    say("transport A/B (shm row packing on vs off, process backend):")
    transport_ab = run_transport_ab(quick=quick, echo=echo)
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": records,
        "speedups": speedups,
        "transport_ab": transport_ab,
    }


def run_bench_x4(quick: bool = False, echo: bool = True) -> dict[str, Any]:
    """The x4 document: backend scaling over worker counts and transports.

    The ``experiments`` section holds the inline reference runs (so the
    file diffs against any other BENCH with the standard comparator);
    the ``scaling`` section holds the full (workers × transport) sweep.
    """
    from repro.bench.experiments import experiment as experiment_by_name

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    repeats = 2 if quick else 1
    baselines: list[dict[str, Any]] = []
    scaling: list[dict[str, Any]] = []
    for name in SCALING_EXPERIMENTS:
        exp = experiment_by_name(name)
        records = run_scaling(exp, quick=quick, repeats=repeats)
        for record in records:
            say(
                f"  {record['name']:<22} {record['backend']:<7} "
                f"w={record['workers']} {record['transport']:<6} "
                f"{record['seconds']:.3f}s speedup={record['speedup']:.2f}x "
                f"identical={record['identical']}"
            )
        inline = records[0]
        baselines.append({
            "name": inline["name"],
            "n": inline["n"],
            "p": inline["p"],
            "seconds": inline["seconds"],
            "L_max": inline["L_max"],
            "rounds": inline["rounds"],
            "out_size": inline["out_size"],
        })
        scaling.extend(records)
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": baselines,
        "speedups": [],
        "scaling": scaling,
    }


# The x7 acceptance ceiling: no recorded strategy's measured L_max may
# exceed this multiple of its prediction at the committed seeds.
X7_RATIO_CEILING = 2.0


def run_bench_x7(quick: bool = False, echo: bool = True) -> dict[str, Any]:
    """The x7 document: planner predicted-vs-measured load per strategy.

    Plans every :func:`~repro.bench.planner_scenarios.planner_scenarios`
    workload once, then times *every* applicable candidate — the chosen
    strategy and the rejected ones alike — recording predicted load,
    measured L_max, round counts, and the measured/predicted ratio. The
    ``experiments`` section holds the chosen strategy's wall time per
    scenario (so the file diffs against any BENCH with the standard
    comparator); the ``x7`` section holds the full per-strategy sweep
    that :func:`~repro.bench.compare.compare_bench` checks for ratio
    drift.
    """
    from repro.bench.planner_scenarios import planner_scenarios
    from repro.planner.optimizer import execute_strategy, plan_query
    from repro.query.parser import parse_query

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    experiments: list[dict[str, Any]] = []
    x7: list[dict[str, Any]] = []
    for scenario in planner_scenarios(quick):
        cq = parse_query(scenario.query)
        explain = plan_query(
            cq, scenario.relations, scenario.p, seed=scenario.seed
        )
        say(f"  {scenario.name}: chose {explain.chosen} "
            f"(expected {scenario.expect})")
        for candidate in explain.candidates:
            if not candidate.applicable:
                continue
            start = time.perf_counter()
            output, stats = execute_strategy(
                cq, scenario.relations, scenario.p, candidate.strategy,
                seed=scenario.seed,
            )
            seconds = time.perf_counter() - start
            predicted = float(candidate.predicted_load or 0.0)
            ratio = stats.max_load / predicted if predicted > 0 else 0.0
            chosen = candidate.strategy == explain.chosen
            record = {
                "name": scenario.name,
                "strategy": candidate.strategy,
                "n": scenario.n,
                "p": scenario.p,
                "chosen": chosen,
                "predicted_load": predicted,
                "measured_load": stats.max_load,
                "predicted_rounds": int(candidate.predicted_rounds or 0),
                "measured_rounds": stats.num_rounds,
                "ratio": ratio,
                "seconds": seconds,
                "out_size": len(output),
            }
            x7.append(record)
            say(
                f"    {candidate.strategy:<10} pred={predicted:>10.1f} "
                f"meas={stats.max_load:>8} ratio={ratio:.2f} "
                f"r={stats.num_rounds} {seconds:.3f}s"
                f"{'  <- chosen' if chosen else ''}"
            )
            if chosen:
                experiments.append({
                    "name": f"x7_{scenario.name}",
                    "n": scenario.n,
                    "p": scenario.p,
                    "seconds": seconds,
                    "L_max": stats.max_load,
                    "rounds": stats.num_rounds,
                    "out_size": len(output),
                })
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": experiments,
        "speedups": [],
        "x7": x7,
    }


def run_bench_x8(quick: bool = False, echo: bool = True) -> dict[str, Any]:
    """The x8 document: concurrent service throughput and byte-identity.

    Stands up a :class:`~repro.service.QueryService` over the generated
    star-schema warehouse and plays the built-in workload mix against it
    at increasing client counts (barrier-started threads, each its own
    tenant), plus one query-splitting arm. Every arm records throughput,
    admission counts, and cache counters, and asserts every concurrent
    result **byte-identical** (canonical row order) to a serial baseline
    captured before any contention; repeated workloads must show a
    non-zero cache hit rate. The ``experiments`` section carries one
    chosen record per arm so the file diffs with the standard comparator.
    """
    import threading

    from repro.data.warehouse import make_warehouse
    from repro.service.cli import WORKLOAD
    from repro.service.service import QueryService, TenantQuota
    from repro.service.splitter import canonical

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    orders = 800 if quick else 3000
    client_counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    queries_per_client = 4 if quick else 10
    p = 8
    workers = 4
    warehouse = make_warehouse(
        n_orders=orders, n_customers=max(50, orders // 10), seed=0
    )

    # Serial baselines: one uncontended, cache-free pass per workload
    # query — the byte-identity reference and the L_max/rounds source
    # for the experiments section.
    baselines: dict[str, tuple[list, int, int, int]] = {}
    with QueryService(warehouse, p=p, workers=1, cache_size=0, seed=0) as svc:
        for query in WORKLOAD:
            result = svc.query(query)
            baselines[query] = (
                canonical(result.output).rows_readonly(),
                result.max_load, result.rounds, len(result.output),
            )

    def run_arm(name: str, clients: int, split: int) -> dict[str, Any]:
        service = QueryService(
            warehouse, p=p, workers=workers, queue_size=max(64, clients * 16),
            default_quota=TenantQuota(max_in_flight=queries_per_client + 1),
            cache_size=256, seed=0,
        )
        mismatches = [0]
        rejected = [0]
        failures: list[BaseException] = []
        lock = threading.Lock()
        barrier = threading.Barrier(clients + 1)

        def client(index: int) -> None:
            barrier.wait(timeout=60)
            for j in range(queries_per_client):
                query = WORKLOAD[(index + j) % len(WORKLOAD)]
                use_split = split if query.count("(") > 2 else 1
                try:
                    result = service.query(
                        query, tenant=f"client-{index}", split=use_split
                    )
                except Exception as exc:  # noqa: BLE001 - reported per arm
                    from repro.errors import AdmissionError

                    with lock:
                        if isinstance(exc, AdmissionError):
                            rejected[0] += 1
                        else:
                            failures.append(exc)
                    continue
                rows = canonical(result.output).rows_readonly()
                if rows != baselines[query][0]:
                    with lock:
                        mismatches[0] += 1

        threads = [
            threading.Thread(target=client, args=(i,), name=f"x8-client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=60)
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        stats = service.stats()
        service.close()
        if failures:
            raise failures[0]
        completed = stats.completed
        return {
            "name": name,
            "clients": clients,
            "workers": workers,
            "split": split,
            "queries": clients * queries_per_client,
            "completed": completed,
            "rejected": rejected[0],
            "seconds": seconds,
            "queries_per_second": completed / seconds if seconds > 0 else 0.0,
            "cache_hits": stats.cache.hits,
            "cache_misses": stats.cache.misses,
            "cache_hit_rate": stats.cache.hit_rate,
            "identical": mismatches[0] == 0,
        }

    x8: list[dict[str, Any]] = []
    experiments: list[dict[str, Any]] = []
    arms = [(f"clients{c}", c, 1) for c in client_counts]
    arms.append((f"split2_clients{client_counts[-1]}", client_counts[-1], 2))
    reference_query = WORKLOAD[0]
    ref_rows, ref_load, ref_rounds, ref_out = baselines[reference_query]
    for name, clients, split in arms:
        record = run_arm(name, clients, split)
        x8.append(record)
        say(
            f"  x8_{name}: {record['completed']}/{record['queries']} done, "
            f"{record['queries_per_second']:.1f} q/s, "
            f"cache {record['cache_hits']}/{record['cache_hits'] + record['cache_misses']}"
            f" hits, identical={record['identical']}"
        )
        experiments.append({
            "name": f"x8_{name}",
            "n": orders,
            "p": p,
            "seconds": record["seconds"],
            "L_max": ref_load,
            "rounds": ref_rounds,
            "out_size": ref_out,
        })
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": experiments,
        "speedups": [],
        "x8": x8,
    }


# The x9 protocol bench: each workload re-runs the same query this many
# times through one persistent pool. The resident protocol pays its
# block shipments on the first run only, so its full-snapshot dispatch
# count stays near the cold-start floor while the snapshot arm re-ships
# everything every run — the acceptance floor below is the minimum
# factor by which snapshot-protocol overhead must exceed resident.
X9_QUERIES = 8
X9_RATIO_FLOOR = 5.0
X9_EXPERIMENTS = ("hash_join_uniform", "hypercube_triangle")


def run_bench_x9(
    quick: bool = False, workers: int = 2, echo: bool = True
) -> dict[str, Any]:
    """The x9 document: resident vs snapshot dispatch-protocol overhead.

    Each workload runs the same query :data:`X9_QUERIES` times against
    one persistent process pool under both dispatch protocols:

    - ``snapshot`` with row packing forced off — the PR 5 wire protocol,
      where every dispatch re-pickles the full payload onto the queue;
    - ``resident`` with row packing on (today's defaults), after an
      explicit :func:`~repro.exec.pool.invalidate_resident` so the arm
      pays its own cold start inside the measurement.

    Recorded per arm: wall time, queue messages, full-snapshot dispatch
    count, and the byte split between shm segments and queue pickle.
    ``identical`` certifies every run of both arms reproduced the inline
    reference output, L_max, and round count byte-for-byte. The
    ``dispatch_ratio``/``pickle_ratio`` fields (snapshot over resident)
    are the acceptance quantities: both must be ≥
    :data:`X9_RATIO_FLOOR`.
    """
    from repro.bench.experiments import experiment as experiment_by_name
    from repro.exec.config import use_protocol, use_shm_rows
    from repro.exec.pool import invalidate_resident
    from repro.joins.hash_join import parallel_hash_join
    from repro.mpc.stats import ExecStats
    from repro.multiway.hypercube import triangle_hypercube

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    runners = {
        "hash_join_uniform": lambda inputs, p, seed: parallel_hash_join(
            inputs[0], inputs[1], p=p, seed=seed
        ),
        "hypercube_triangle": lambda inputs, p, seed: triangle_hypercube(
            *inputs, p=p, seed=seed
        ),
    }
    records: list[dict[str, Any]] = []
    experiments: list[dict[str, Any]] = []
    for name in X9_EXPERIMENTS:
        exp = experiment_by_name(name)
        n = exp.size(quick)
        inputs = exp.prepare(n, exp.seed)
        with use_backend("inline"):
            reference = runners[name](inputs, exp.p, exp.seed)
        ref_rows = reference.output.rows_readonly()
        arm_records: dict[str, dict[str, Any]] = {}
        for protocol, rows_packing in (("snapshot", False), ("resident", True)):
            if protocol == "resident":
                # Cold start: the resident arm must pay its own block
                # shipments inside the measurement, not inherit a cache
                # warmed by an earlier workload.
                invalidate_resident()
            per_run_stats: list[Any] = []
            identical = True
            with use_backend("process", workers=workers, transport="shm"), \
                    use_protocol(protocol), use_shm_rows(rows_packing):
                start = time.perf_counter()
                for _ in range(X9_QUERIES):
                    run = runners[name](inputs, exp.p, exp.seed)
                    per_run_stats.append(run.stats.exec)
                    identical = identical and (
                        run.load == reference.load
                        and run.rounds == reference.rounds
                        and run.output.rows_readonly() == ref_rows
                    )
                seconds = time.perf_counter() - start
            ex = ExecStats.merged(per_run_stats)
            record = {
                "name": name,
                "n": n,
                "p": exp.p,
                "workers": workers,
                "queries": X9_QUERIES,
                "protocol": protocol,
                "seconds": seconds,
                "queue_messages": ex.queue_messages,
                "snapshot_dispatches": ex.snapshot_dispatches,
                "shm_bytes_out": ex.shm_bytes_out,
                "pickle_bytes_out": ex.pickle_bytes_out,
                "dispatch_bytes_out": ex.dispatch_bytes_out,
                "resident_hits": ex.resident_hits,
                "resident_bytes_saved": ex.resident_bytes_saved,
                "fallback_dispatches": ex.fallback_dispatches,
                "bytes_per_message": ex.bytes_per_message,
                "dispatch_ratio": 0.0,  # filled in from the pair below
                "pickle_ratio": 0.0,
                "identical": identical,
            }
            arm_records[protocol] = record
            records.append(record)
        snap, res = arm_records["snapshot"], arm_records["resident"]
        dispatch_ratio = (
            snap["snapshot_dispatches"] / res["snapshot_dispatches"]
            if res["snapshot_dispatches"] else float(snap["snapshot_dispatches"])
        )
        pickle_ratio = (
            snap["pickle_bytes_out"] / res["pickle_bytes_out"]
            if res["pickle_bytes_out"] else float(snap["pickle_bytes_out"])
        )
        for record in (snap, res):
            record["dispatch_ratio"] = dispatch_ratio
            record["pickle_ratio"] = pickle_ratio
            say(
                f"  {record['name']:<22} {record['protocol']:<9} "
                f"snapshots={record['snapshot_dispatches']:>4} "
                f"pickle={record['pickle_bytes_out']:>12,}B "
                f"msgs={record['queue_messages']:>4} "
                f"identical={record['identical']}"
            )
        say(
            f"  {name:<22} dispatch_ratio={dispatch_ratio:.1f}x "
            f"pickle_ratio={pickle_ratio:.1f}x"
        )
        # One standard experiment record per workload (the resident-arm
        # wall time) so the file diffs with the plain comparator too.
        experiments.append({
            "name": f"x9_{name}",
            "n": n,
            "p": exp.p,
            "seconds": res["seconds"],
            "L_max": reference.load,
            "rounds": reference.rounds,
            "out_size": len(reference.output),
        })
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": experiments,
        "speedups": [],
        "x9": records,
    }


# The x10 memoization bench: each scenario runs the same multi-round
# query this many times per arm, so the memo-on arm pays its hashing and
# partitioning on the first run only while the memo-off arm repeats it
# every run. The floors below are the acceptance bar: at least
# X10_SCENARIO_FLOOR scenarios must clear both.
X10_QUERIES = 8
X10_SPEEDUP_FLOOR = 1.5
X10_HASH_FLOOR = 5.0
X10_SCENARIO_FLOOR = 2


def run_bench_x10(quick: bool = False, echo: bool = True) -> dict[str, Any]:
    """The x10 document: intra-query memoization on vs off.

    Each scenario — GYM, the multi-reducer semijoin, multiround sort,
    SkewHC, and a ``split=4`` service query — runs :data:`X10_QUERIES`
    times per arm on the inline backend: once with the memo layer forced
    off and once (after an explicit :func:`~repro.kernels.memo.clear_memo`
    so the arm pays its own cold start) with it on. Both the contextvar
    gate and ``REPRO_MEMO`` are set, because the service arm executes on
    worker threads that only see the environment.

    Recorded per scenario: wall time and bucket-kernel hash ops of both
    arms, the on-arm's partition/view hit counters and bytes saved, and
    ``identical`` — every run of both arms must reproduce the same
    output rows, L_max, and round count. ``speedup``
    (``seconds_off / seconds_on``) and ``hash_ops_ratio``
    (``hash_ops_off / hash_ops_on``) are the acceptance quantities.
    Multiround sort is the honest control: its routing is splitter-based
    (no hash partitioning), so the memo layer has nothing to replay
    there and both ratios sit near 1x/0x by design.
    """
    from contextlib import contextmanager

    from repro.data.generators import skewed_relation, uniform_relation
    from repro.data.warehouse import make_warehouse
    from repro.kernels.memo import GLOBAL, clear_memo, use_memo
    from repro.multiway.base import shuffle_multi_semijoin
    from repro.multiway.gym import gym
    from repro.multiway.skewhc import skewhc_join
    from repro.query.parser import parse_query
    from repro.service.cli import WORKLOAD
    from repro.service.service import QueryService
    from repro.sorting.multiround import multiround_sort

    def say(message: str) -> None:
        if echo:
            print(message, flush=True)

    @contextmanager
    def memo_everywhere(enabled: bool):
        # The contextvar covers inline execution in this thread; the env
        # var covers service worker threads, which start with no forced
        # value and fall back to REPRO_MEMO.
        saved = os.environ.get("REPRO_MEMO")
        os.environ["REPRO_MEMO"] = "on" if enabled else "off"
        try:
            with use_memo(enabled):
                yield
        finally:
            if saved is None:
                os.environ.pop("REPRO_MEMO", None)
            else:
                os.environ["REPRO_MEMO"] = saved

    p = 8
    n_gym = 3_000 if quick else 30_000
    n_semi = 6_000 if quick else 60_000
    n_sort = 10_000 if quick else 120_000
    n_skew = 1_500 if quick else 8_000
    n_orders = 800 if quick else 3_000

    gym_query = parse_query(
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e)"
    )
    gym_rels = {
        f"R{i}": uniform_relation(
            f"R{i}", [chr(ord("a") + i - 1), chr(ord("a") + i)],
            n_gym, n_gym, seed=i,
        )
        for i in range(1, 5)
    }

    semi_target = uniform_relation("T", ["x", "y"], n_semi, n_semi // 4, seed=1)
    semi_reducers = [
        uniform_relation(f"K{i}", ["x"], n_semi // 3, n_semi // 4, seed=10 + i)
        for i in range(3)
    ]

    sort_items = uniform_relation(
        "S", ["v"], n_sort, n_sort * 4, seed=2
    ).column("v")

    skew_query = parse_query("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    skew_rels = {
        "R": skewed_relation("R", ["x", "y"], n_skew, "y", n_skew // 2, 1.2,
                             seed=3),
        "S": uniform_relation("S", ["y", "z"], n_skew, n_skew // 2, seed=4),
        "T": uniform_relation("T", ["z", "x"], n_skew, n_skew // 2, seed=5),
    }

    warehouse = make_warehouse(
        n_orders=n_orders, n_customers=max(50, n_orders // 10), seed=0
    )
    service_query = WORKLOAD[2]  # Orders x Lineitems: splitter-eligible

    def run_gym():
        run = gym(gym_query, gym_rels, p=p, seed=0)
        return run.output.rows_readonly(), run.stats.max_load, run.stats.num_rounds

    def run_semijoin():
        out, stats = shuffle_multi_semijoin(
            semi_target, semi_reducers, p=p, seed=0
        )
        return out.rows_readonly(), stats.max_load, stats.num_rounds

    def run_sort():
        out, stats = multiround_sort(
            sort_items, p=p, load_cap=max(64, n_sort // (2 * p)), seed=0
        )
        return tuple(out), stats.max_load, stats.num_rounds

    def run_skewhc():
        run = skewhc_join(skew_query, skew_rels, p=p, seed=0)
        return run.output.rows_readonly(), run.stats.max_load, run.stats.num_rounds

    scenarios = [
        ("gym_path", n_gym, run_gym, None),
        ("semijoin_multi", n_semi, run_semijoin, None),
        ("multiround_sort", n_sort, run_sort, None),
        ("skewhc_triangle", n_skew, run_skewhc, None),
        ("service_split4", n_orders, None, "service"),
    ]

    records: list[dict[str, Any]] = []
    experiments: list[dict[str, Any]] = []
    with use_backend("inline"):
        for name, n, runner, special in scenarios:
            arm_results: dict[bool, tuple[float, Any, list]] = {}
            for enabled in (False, True):
                clear_memo()
                before = GLOBAL.snapshot()
                outcomes: list[Any] = []
                with memo_everywhere(enabled):
                    if special == "service":
                        # cache_size=0: the result cache must not
                        # shortcut the repeats the memo layer is
                        # being measured on.
                        with QueryService(
                            warehouse, p=p, workers=1, cache_size=0, seed=0
                        ) as svc:
                            start = time.perf_counter()
                            for _ in range(X10_QUERIES):
                                result = svc.query(service_query, split=4)
                                outcomes.append((
                                    result.output.rows_readonly(),
                                    result.max_load, result.rounds,
                                ))
                            seconds = time.perf_counter() - start
                    else:
                        start = time.perf_counter()
                        for _ in range(X10_QUERIES):
                            outcomes.append(runner())
                        seconds = time.perf_counter() - start
                arm_results[enabled] = (
                    seconds, GLOBAL.delta(before), outcomes
                )
            off_s, off_memo, off_outcomes = arm_results[False]
            on_s, on_memo, on_outcomes = arm_results[True]
            identical = all(
                outcome == off_outcomes[0]
                for outcome in off_outcomes + on_outcomes
            )
            record = {
                "name": name,
                "n": n,
                "p": p,
                "queries": X10_QUERIES,
                "seconds_on": on_s,
                "seconds_off": off_s,
                "speedup": off_s / on_s if on_s > 0 else 0.0,
                "hash_ops_on": on_memo.hash_ops,
                "hash_ops_off": off_memo.hash_ops,
                "hash_ops_ratio": (
                    off_memo.hash_ops / on_memo.hash_ops
                    if on_memo.hash_ops else 0.0
                ),
                "partition_hits": on_memo.partition_hits,
                "view_hits": on_memo.view_hits,
                "bytes_saved": on_memo.bytes_saved,
                "identical": identical,
            }
            records.append(record)
            say(
                f"  {name:<18} on={on_s:.3f}s off={off_s:.3f}s "
                f"speedup={record['speedup']:.2f}x "
                f"hash_ops={off_memo.hash_ops}->{on_memo.hash_ops} "
                f"({record['hash_ops_ratio']:.1f}x) "
                f"hits={on_memo.partition_hits}p/{on_memo.view_hits}v "
                f"identical={identical}"
            )
            # One standard experiment record per scenario (memo-on wall
            # time) so the file diffs with the plain comparator too.
            _, ref_load, ref_rounds = on_outcomes[0]
            experiments.append({
                "name": f"x10_{name}",
                "n": n,
                "p": p,
                "seconds": on_s,
                "L_max": ref_load,
                "rounds": ref_rounds,
                "out_size": len(on_outcomes[0][0]),
            })
    clear_memo()
    return {
        "schema": SCHEMA_VERSION,
        "machine": machine_info(),
        "kernels": kernels_enabled(),
        "quick": quick,
        "experiments": experiments,
        "speedups": [],
        "x10": records,
    }


def _load(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _diff(
    baseline_path: str, current_path: str, threshold: float, force: bool = False
) -> Any:
    baseline, current = _load(baseline_path), _load(current_path)
    for name, doc in (("baseline", baseline), ("current", current)):
        errors = validate_bench(doc)
        if errors:
            raise ValueError(f"{name} file is not a valid BENCH document: {errors}")
    return compare_bench(baseline, current, threshold=threshold, force=force)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for ``python -m repro bench`` (see ``--help``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the measured benchmarks and write a BENCH JSON file.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sizes (CI smoke; ~seconds instead of minutes)")
    parser.add_argument("--out", default="BENCH_3.json",
                        help="output path (default BENCH_3.json)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH file to diff the fresh run against")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions without failing")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="regression threshold as a fraction (default 0.20)")
    parser.add_argument("--no-speedups", action="store_true",
                        help="skip the kernels on/off pairs")
    parser.add_argument("--x4", action="store_true",
                        help="run the backend-scaling sweep (worker counts "
                             "1/2/4/8 × shm/pickle transports) instead of the "
                             "standard experiment set; default out BENCH_5.json")
    parser.add_argument("--x7", action="store_true",
                        help="run the planner predicted-vs-measured sweep "
                             "(every applicable strategy per scenario) instead "
                             "of the standard experiment set; default out "
                             "BENCH_7.json")
    parser.add_argument("--x8", action="store_true",
                        help="run the concurrent service throughput sweep "
                             "(client scaling + query splitting, with "
                             "byte-identity checks against a serial "
                             "baseline) instead of the standard experiment "
                             "set; default out BENCH_8.json")
    parser.add_argument("--x9", action="store_true",
                        help="run the dispatch-protocol sweep (resident vs "
                             "snapshot over repeated queries, with "
                             "byte-identity checks against an inline "
                             "reference) instead of the standard experiment "
                             "set; default out BENCH_9.json")
    parser.add_argument("--x10", action="store_true",
                        help="run the memoization sweep (memo on vs off over "
                             "repeated multi-round queries, with byte-"
                             "identity checks between the arms) instead of "
                             "the standard experiment set; default out "
                             "BENCH_10.json")
    parser.add_argument("--force", action="store_true",
                        help="allow diffing BENCH files measured under "
                             "different execution backends")
    parser.add_argument("--diff", nargs=2, metavar=("BASELINE", "CURRENT"),
                        default=None,
                        help="compare two existing BENCH files and exit")
    args = parser.parse_args(argv)

    if sum((args.x4, args.x7, args.x8, args.x9, args.x10)) > 1:
        print("--x4, --x7, --x8, --x9, and --x10 are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.x4 and args.out == parser.get_default("out"):
        args.out = "BENCH_5.json"
    if args.x7 and args.out == parser.get_default("out"):
        args.out = "BENCH_7.json"
    if args.x8 and args.out == parser.get_default("out"):
        args.out = "BENCH_8.json"
    if args.x9 and args.out == parser.get_default("out"):
        args.out = "BENCH_9.json"
    if args.x10 and args.out == parser.get_default("out"):
        args.out = "BENCH_10.json"

    if args.diff is not None:
        try:
            comparison = _diff(
                args.diff[0], args.diff[1], args.threshold, force=args.force
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"diff failed: {exc}", file=sys.stderr)
            return 2
        print(comparison.format_table())
        return 0 if (comparison.ok or args.warn_only) else 1

    if args.x4:
        print(f"running {'quick' if args.quick else 'full'} backend-scaling "
              f"sweep (kernels={'on' if kernels_enabled() else 'off'}):")
        document = run_bench_x4(quick=args.quick)
        errors = validate_bench(document)
        if errors:
            print("generated document violates the BENCH schema:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 2
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
        broken = [
            f"{r['name']} (workers={r['workers']}, {r['transport']})"
            for r in document["scaling"]
            if not r["identical"]
        ]
        if broken:
            print(f"backend determinism FAILED for: {broken}", file=sys.stderr)
            return 1
        return 0

    if args.x7:
        print(f"running {'quick' if args.quick else 'full'} planner "
              f"predicted-vs-measured sweep "
              f"(kernels={'on' if kernels_enabled() else 'off'}):")
        document = run_bench_x7(quick=args.quick)
        errors = validate_bench(document)
        if errors:
            print("generated document violates the BENCH schema:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 2
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
        mispredicted = [
            f"{r['name']}/{r['strategy']} (ratio={r['ratio']:.2f})"
            for r in document["x7"]
            if r["ratio"] > X7_RATIO_CEILING
        ]
        if mispredicted:
            print(
                f"planner predictions exceeded {X7_RATIO_CEILING}x measured "
                f"for: {mispredicted}",
                file=sys.stderr,
            )
            return 1
        chosen_scenarios = {r["name"] for r in document["experiments"]}
        all_scenarios = {f"x7_{r['name']}" for r in document["x7"]}
        if chosen_scenarios != all_scenarios:
            print(
                "some scenario produced no chosen-strategy record: "
                f"{sorted(all_scenarios - chosen_scenarios)}",
                file=sys.stderr,
            )
            return 1
        if args.baseline:
            try:
                baseline = _load(args.baseline)
                comparison = compare_bench(
                    baseline, document, threshold=args.threshold,
                    force=args.force,
                )
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"baseline comparison failed: {exc}", file=sys.stderr)
                return 0 if args.warn_only else 2
            print(comparison.format_table())
            if not comparison.ok and not args.warn_only:
                return 1
        return 0

    if args.x8:
        print(f"running {'quick' if args.quick else 'full'} concurrent "
              f"service sweep "
              f"(kernels={'on' if kernels_enabled() else 'off'}):")
        document = run_bench_x8(quick=args.quick)
        errors = validate_bench(document)
        if errors:
            print("generated document violates the BENCH schema:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 2
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
        status = 0
        broken = [r["name"] for r in document["x8"] if not r["identical"]]
        if broken:
            print(f"concurrent results diverged from the serial baseline "
                  f"for: {broken}", file=sys.stderr)
            status = 1
        dropped = [
            r["name"] for r in document["x8"]
            if r["completed"] + r["rejected"] != r["queries"]
        ]
        if dropped:
            print(f"queries lost (neither completed nor rejected) in: "
                  f"{dropped}", file=sys.stderr)
            status = 1
        repeated = [r for r in document["x8"] if r["clients"] > 1]
        if repeated and all(r["cache_hits"] == 0 for r in repeated):
            print("result cache never hit on a repeated workload",
                  file=sys.stderr)
            status = 1
        return status

    if args.x9:
        print(f"running {'quick' if args.quick else 'full'} dispatch-"
              f"protocol sweep "
              f"(kernels={'on' if kernels_enabled() else 'off'}):")
        document = run_bench_x9(quick=args.quick)
        errors = validate_bench(document)
        if errors:
            print("generated document violates the BENCH schema:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 2
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
        status = 0
        broken = sorted({
            r["name"] for r in document["x9"] if not r["identical"]
        })
        if broken:
            print(f"protocol outputs diverged from the inline reference "
                  f"for: {broken}", file=sys.stderr)
            status = 1
        weak = sorted({
            f"{r['name']} (dispatch={r['dispatch_ratio']:.1f}x, "
            f"pickle={r['pickle_ratio']:.1f}x)"
            for r in document["x9"]
            if r["dispatch_ratio"] < X9_RATIO_FLOOR
            or r["pickle_ratio"] < X9_RATIO_FLOOR
        })
        if weak:
            print(f"resident protocol saved less than {X9_RATIO_FLOOR}x "
                  f"over snapshot for: {weak}", file=sys.stderr)
            status = 1
        if args.baseline:
            try:
                baseline = _load(args.baseline)
                comparison = compare_bench(
                    baseline, document, threshold=args.threshold,
                    force=args.force,
                )
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"baseline comparison failed: {exc}", file=sys.stderr)
                return 0 if args.warn_only else 2
            print(comparison.format_table())
            if not comparison.ok and not args.warn_only:
                return 1
        return status

    if args.x10:
        print(f"running {'quick' if args.quick else 'full'} memoization "
              f"sweep "
              f"(kernels={'on' if kernels_enabled() else 'off'}):")
        document = run_bench_x10(quick=args.quick)
        errors = validate_bench(document)
        if errors:
            print("generated document violates the BENCH schema:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 2
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
        status = 0
        broken = [r["name"] for r in document["x10"] if not r["identical"]]
        if broken:
            print(f"memo on/off outputs diverged for: {broken}",
                  file=sys.stderr)
            status = 1
        strong = [
            r["name"] for r in document["x10"]
            if r["speedup"] >= X10_SPEEDUP_FLOOR
            and r["hash_ops_ratio"] >= X10_HASH_FLOOR
        ]
        if len(strong) < X10_SCENARIO_FLOOR:
            print(
                f"only {len(strong)} scenario(s) cleared both memo floors "
                f"(>= {X10_SPEEDUP_FLOOR}x wall, >= {X10_HASH_FLOOR}x hash "
                f"ops); need {X10_SCENARIO_FLOOR}: {strong}",
                file=sys.stderr,
            )
            status = 1
        if args.baseline:
            try:
                baseline = _load(args.baseline)
                comparison = compare_bench(
                    baseline, document, threshold=args.threshold,
                    force=args.force,
                )
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"baseline comparison failed: {exc}", file=sys.stderr)
                return 0 if args.warn_only else 2
            print(comparison.format_table())
            if not comparison.ok and not args.warn_only:
                return 1
        return status

    print(f"running {'quick' if args.quick else 'full'} benchmarks "
          f"(kernels={'on' if kernels_enabled() else 'off'}):")
    document = run_bench(quick=args.quick, include_speedups=not args.no_speedups)
    errors = validate_bench(document)
    if errors:
        print("generated document violates the BENCH schema:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 2
    Path(args.out).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")

    bad_pairs = [
        record["name"]
        for record in document["speedups"]
        if not (record["identical"] and record["oracle_ok"])
    ]
    if bad_pairs:
        print(f"kernel equivalence FAILED for: {bad_pairs}", file=sys.stderr)
        return 1

    drifted = sorted({
        record["name"]
        for record in document.get("transport_ab", [])
        if not record["identical"]
    })
    if drifted:
        print(f"transport row-packing equivalence FAILED for: {drifted}",
              file=sys.stderr)
        return 1

    if args.baseline:
        try:
            baseline = _load(args.baseline)
            comparison = compare_bench(
                baseline, document, threshold=args.threshold, force=args.force
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"baseline comparison failed: {exc}", file=sys.stderr)
            return 0 if args.warn_only else 2
        print(comparison.format_table())
        if not comparison.ok and not args.warn_only:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
