"""A simulated shared-nothing server.

Each server owns a private key-value store mapping *fragment names* to
lists of tuples. Algorithms address fragments by name (e.g. ``"R"`` for
the locally stored part of relation R, or ``"R@shuffled"`` for tuples
received in a shuffle round). Servers never touch each other's storage;
all movement goes through :class:`repro.mpc.cluster.Cluster` rounds.
"""

from __future__ import annotations

from typing import Any

Row = tuple[Any, ...]


class ChunkedColumns:
    """A column side-car kept as the delivered per-send blocks.

    Delivery appends blocks in O(1); the concatenation the eager path
    would have done at the barrier is deferred to the first consumer
    that actually asks for whole columns (:meth:`arrays`).  ``length``
    reads block lengths without copying, so side-car validation stays
    zero-copy too.
    """

    __slots__ = ("chunks", "length")

    def __init__(self, chunks: list[list]) -> None:
        self.chunks = chunks  # chunks[i] = list of blocks of column i
        self.length = sum(len(block) for block in chunks[0]) if chunks else 0

    def arrays(self) -> list:
        import numpy as np

        return [
            blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            for blocks in self.chunks
        ]


class Server:
    """One MPC server: an id and a private fragment store.

    Besides the row store, a server keeps an optional *column side-car*
    per fragment: key-column arrays that travelled with a batched
    (kernel-routed) shuffle, letting the local computation skip
    re-extracting columns from the tuples. The side-car is a pure cache —
    it is dropped whenever the fragment is replaced or removed, and
    consumers must validate it against the row count (mutating the row
    list in place leaves a stale side-car behind, which the length check
    catches because every mutation path appends or removes rows).
    """

    __slots__ = ("sid", "storage", "column_cache")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.storage: dict[str, list[Row]] = {}
        # column_cache[name] = (key_positions, [one array per key position])
        self.column_cache: dict[str, tuple[tuple[int, ...], list]] = {}

    def fragment(self, name: str) -> list[Row]:
        """The local fragment ``name``, created empty if absent."""
        return self.storage.setdefault(name, [])

    def get(self, name: str) -> list[Row]:
        """The local fragment ``name``, or an empty list (not stored).

        Returns the *live* storage list — callers must not mutate it.
        Anything handed outside the simulator must copy first
        (:meth:`repro.mpc.cluster.Cluster.gather` does, by contract).
        """
        return self.storage.get(name, [])

    def take(self, name: str) -> list[Row]:
        """Remove and return the local fragment ``name`` (empty if absent)."""
        self.column_cache.pop(name, None)
        return self.storage.pop(name, [])

    def put(self, name: str, rows: list[Row]) -> None:
        """Replace fragment ``name`` with ``rows``."""
        self.column_cache.pop(name, None)
        self.storage[name] = rows

    def put_columns(self, name: str, key_idx: tuple[int, ...], columns: list) -> None:
        """Attach a column side-car for fragment ``name``.

        ``columns[i]`` holds column ``key_idx[i]`` of every stored row,
        in row order.
        """
        self.column_cache[name] = (key_idx, columns)

    def put_column_chunks(
        self, name: str, key_idx: tuple[int, ...], chunk_lists: list[list]
    ) -> None:
        """Attach a *chunked* side-car (delivered blocks, not whole arrays).

        ``chunk_lists[i]`` is the ordered list of blocks making up column
        ``key_idx[i]``; concatenation is deferred until a consumer asks
        (:meth:`take_with_columns` materializes on demand).
        """
        self.column_cache[name] = (key_idx, ChunkedColumns(chunk_lists))

    def take_with_columns(
        self, name: str, key_idx: tuple[int, ...]
    ) -> tuple[list[Row], list | None]:
        """:meth:`take` plus the side-car columns at ``key_idx``, if valid.

        The second element is one array per requested position (``None``
        when the side-car is missing, covers different positions, or does
        not match the row count — consumers then fall back to extracting
        columns from the tuples).
        """
        rows = self.storage.pop(name, [])
        cached = self.column_cache.pop(name, None)
        if cached is None:
            return rows, None
        stored_idx, columns = cached
        if isinstance(columns, ChunkedColumns):
            if columns.length != len(rows):
                return rows, None
            columns = columns.arrays()
        try:
            selected = [columns[stored_idx.index(i)] for i in key_idx]
        except ValueError:
            return rows, None
        if any(len(c) != len(rows) for c in selected):
            return rows, None
        return rows, selected

    def drop(self, name: str) -> None:
        """Delete fragment ``name`` if present."""
        self.column_cache.pop(name, None)
        self.storage.pop(name, None)

    def local_size(self) -> int:
        """Total tuples currently stored on this server."""
        return sum(len(rows) for rows in self.storage.values())

    def __repr__(self) -> str:
        frags = {k: len(v) for k, v in self.storage.items()}
        return f"Server({self.sid}, {frags})"
