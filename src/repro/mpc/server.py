"""A simulated shared-nothing server.

Each server owns a private key-value store mapping *fragment names* to
lists of tuples. Algorithms address fragments by name (e.g. ``"R"`` for
the locally stored part of relation R, or ``"R@shuffled"`` for tuples
received in a shuffle round). Servers never touch each other's storage;
all movement goes through :class:`repro.mpc.cluster.Cluster` rounds.
"""

from __future__ import annotations

from typing import Any

Row = tuple[Any, ...]


class Server:
    """One MPC server: an id and a private fragment store."""

    __slots__ = ("sid", "storage")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.storage: dict[str, list[Row]] = {}

    def fragment(self, name: str) -> list[Row]:
        """The local fragment ``name``, created empty if absent."""
        return self.storage.setdefault(name, [])

    def get(self, name: str) -> list[Row]:
        """The local fragment ``name``, or an empty list (not stored)."""
        return self.storage.get(name, [])

    def take(self, name: str) -> list[Row]:
        """Remove and return the local fragment ``name`` (empty if absent)."""
        return self.storage.pop(name, [])

    def put(self, name: str, rows: list[Row]) -> None:
        """Replace fragment ``name`` with ``rows``."""
        self.storage[name] = rows

    def drop(self, name: str) -> None:
        """Delete fragment ``name`` if present."""
        self.storage.pop(name, None)

    def local_size(self) -> int:
        """Total tuples currently stored on this server."""
        return sum(len(rows) for rows in self.storage.values())

    def __repr__(self) -> str:
        frags = {k: len(v) for k, v in self.storage.items()}
        return f"Server({self.sid}, {frags})"
