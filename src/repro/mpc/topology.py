"""Hypercube (grid) addressing of servers.

The HyperCube algorithm organizes ``p`` servers in a ``p1 × p2 × … × pk``
grid (slide 37). A :class:`Grid` converts between flat server ids and
grid coordinates, and enumerates the servers matching a *partial*
coordinate — exactly the destinations a tuple with some unbound
dimensions must be replicated to.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from repro.errors import ClusterError


class Grid:
    """A mixed-radix grid of server coordinates.

    >>> g = Grid([2, 3])
    >>> g.size
    6
    >>> g.flat((1, 2))
    5
    >>> g.coordinate(5)
    (1, 2)
    >>> list(g.matching((None, 1)))
    [1, 4]
    """

    def __init__(self, extents: Sequence[int]) -> None:
        if not extents:
            raise ClusterError("a grid needs at least one dimension")
        for e in extents:
            if e <= 0:
                raise ClusterError(f"grid extents must be positive, got {extents}")
        self.extents = tuple(int(e) for e in extents)
        self.size = math.prod(self.extents)
        # Row-major strides: the last dimension varies fastest.
        strides = []
        acc = 1
        for e in reversed(self.extents):
            strides.append(acc)
            acc *= e
        self._strides = tuple(reversed(strides))

    @property
    def dimensions(self) -> int:
        return len(self.extents)

    @property
    def strides(self) -> tuple[int, ...]:
        """Row-major strides (the last dimension varies fastest)."""
        return self._strides

    def flat(self, coordinate: Sequence[int]) -> int:
        """Flat server id of a full coordinate."""
        if len(coordinate) != self.dimensions:
            raise ClusterError(
                f"coordinate {coordinate} has {len(coordinate)} dims, grid has "
                f"{self.dimensions}"
            )
        flat = 0
        for c, e, s in zip(coordinate, self.extents, self._strides):
            if not 0 <= c < e:
                raise ClusterError(f"coordinate {coordinate} outside grid {self.extents}")
            flat += c * s
        return flat

    def coordinate(self, flat: int) -> tuple[int, ...]:
        """Grid coordinate of a flat server id."""
        if not 0 <= flat < self.size:
            raise ClusterError(f"server id {flat} outside grid of size {self.size}")
        coordinate = []
        for e, s in zip(self.extents, self._strides):
            coordinate.append((flat // s) % e)
        return tuple(coordinate)

    def matching(self, partial: Sequence[int | None]) -> Iterator[int]:
        """Flat ids of all servers agreeing with the bound positions.

        ``None`` entries are wildcards: a tuple that fixes only some hash
        coordinates is replicated to every server matching the rest —
        the HyperCube replication rule (slide 35's ``T(c,a) -> (hx(a), *, hz(c))``).
        """
        if len(partial) != self.dimensions:
            raise ClusterError(
                f"partial coordinate {partial} has {len(partial)} dims, grid has "
                f"{self.dimensions}"
            )
        ranges = [
            range(e) if c is None else (c,)
            for c, e in zip(partial, self.extents)
        ]
        for full in itertools.product(*ranges):
            yield self.flat(full)
