"""Conservation-invariant auditing for the MPC simulator.

Every figure in the reproduction rests on the cluster's load accounting:
``L`` (max per-server per-round load) and ``r`` (rounds) are exactly what
:class:`~repro.mpc.stats.RunStats` measures. This module makes that
accounting *self-verifying*: a :class:`ClusterAuditor` attached to a
cluster re-checks, at every round barrier, that

- **delivery** — each destination fragment grew by exactly the number of
  tuples buffered for it (no tuple lost or duplicated in transit);
- **conservation** — the total fragment growth across the cluster equals
  the total number of tuples sent in the round;
- **charged-units** — a charged round's recorded loads equal the units
  accumulated by ``send``;
- **free-uncharged** — a free round records zero load everywhere and
  leaves ``C`` unchanged;
- **c-delta** — the run's total communication ``C`` advanced by exactly
  the round's total.

Enable it per cluster with ``Cluster(p, audit=True)`` or for a whole
code region (including clusters created deep inside algorithms) with the
:func:`audited` context manager::

    with audited():
        run = parallel_hash_join(r, s, p=8)   # every round is checked
    print(run.stats.audit.summary())

A violation raises :class:`~repro.errors.AuditError` (set
``cluster.auditor.strict = False`` to record violations without
raising). The report is surfaced on :attr:`RunStats.audit
<repro.mpc.stats.RunStats>` and in :func:`repro.mpc.trace.trace`.

For combined runs, :func:`verify_partition` checks that sub-cluster
server counts fit the combined budget (``combine_parallel`` sub-clusters
must partition ``p_total``) and :func:`verify_combined` re-checks the
combination arithmetic itself.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import AuditError
from repro.mpc.stats import RoundStats, RunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpc.cluster import Cluster, RoundContext

__all__ = [
    "AuditReport",
    "AuditViolation",
    "ClusterAuditor",
    "audit_enabled_by_default",
    "audited",
    "verify_combined",
    "verify_partition",
]

_default_audit = False


def audit_enabled_by_default() -> bool:
    """Whether clusters created right now default to auditing themselves."""
    return _default_audit


@contextmanager
def audited(enabled: bool = True) -> Iterator[None]:
    """Audit every :class:`~repro.mpc.cluster.Cluster` created in the block.

    Algorithms build their clusters internally, so this is the way to run
    an existing algorithm end-to-end under invariant checks without
    threading a flag through every call::

        with audited():
            run = skew_join(r, s, p=16)

    Nests and restores the previous default on exit (exception-safe).
    """
    global _default_audit
    previous = _default_audit
    _default_audit = enabled
    try:
        yield
    finally:
        _default_audit = previous


@dataclass
class AuditViolation:
    """One failed invariant check."""

    round_label: str
    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.round_label}] {self.check}: {self.detail}"


@dataclass
class AuditReport:
    """Accumulated result of a cluster's (or combined run's) audits."""

    rounds_audited: int = 0
    checks_run: int = 0
    violations: list[AuditViolation] = field(default_factory=list)
    aborted_rounds: list[str] = field(default_factory=list)
    rejected_rounds: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check so far passed."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable audit summary."""
        text = (
            f"audit: {self.rounds_audited} rounds, {self.checks_run} checks, "
            f"{len(self.violations)} violations"
        )
        if self.aborted_rounds:
            text += f", {len(self.aborted_rounds)} aborted"
        if self.rejected_rounds:
            text += f", {len(self.rejected_rounds)} rejected"
        return text

    @classmethod
    def merged(cls, reports: Iterable["AuditReport"]) -> "AuditReport | None":
        """Union of several reports (for combined runs); None if none given."""
        merged: AuditReport | None = None
        for report in reports:
            if merged is None:
                merged = cls()
            merged.rounds_audited += report.rounds_audited
            merged.checks_run += report.checks_run
            merged.violations.extend(report.violations)
            merged.aborted_rounds.extend(report.aborted_rounds)
            merged.rejected_rounds.extend(report.rejected_rounds)
        return merged


class ClusterAuditor:
    """Re-checks conservation invariants at every round barrier.

    Attached by ``Cluster(p, audit=True)``; the cluster calls
    :meth:`snapshot` immediately before delivery and :meth:`after_delivery`
    immediately after, so the checks observe exactly the barrier's effect
    (local computation inside the round block is free to mutate fragments
    and is not — cannot be — audited).
    """

    def __init__(self, cluster: "Cluster", strict: bool = True) -> None:
        self.cluster = cluster
        self.strict = strict
        self.report = AuditReport()

    # ------------------------------------------------------------- hooks

    def snapshot(self) -> list[dict[str, int]]:
        """Per-server fragment sizes, taken at the barrier pre-delivery."""
        return [
            {name: len(rows) for name, rows in server.storage.items()}
            for server in self.cluster.servers
        ]

    def after_delivery(
        self,
        rnd: "RoundContext",
        stats: RoundStats,
        before: list[dict[str, int]],
        c_before: int,
    ) -> None:
        """Audit one delivered round against the pre-delivery snapshot."""
        self.report.rounds_audited += 1
        label = rnd.label
        servers = self.cluster.servers

        total_sent = 0
        for dest, fragments in enumerate(rnd._buffers):
            storage = servers[dest].storage
            for fragment, rows in fragments.items():
                total_sent += len(rows)
                grew = len(storage.get(fragment, ())) - before[dest].get(fragment, 0)
                self._check(
                    "delivery",
                    grew == len(rows),
                    f"server {dest} fragment {fragment!r} grew by {grew}, "
                    f"expected {len(rows)}",
                    label,
                )

        total_after = sum(
            len(rows) for server in servers for rows in server.storage.values()
        )
        total_before = sum(sum(sizes.values()) for sizes in before)
        self._check(
            "conservation",
            total_after - total_before == total_sent,
            f"cluster grew by {total_after - total_before} tuples, "
            f"{total_sent} were sent",
            label,
        )

        if rnd.charged:
            self._check(
                "charged-units",
                stats.received == rnd._units,
                f"recorded loads {stats.received} differ from sent units "
                f"{rnd._units}",
                label,
            )
        else:
            self._check(
                "free-uncharged",
                not any(stats.received),
                f"free round recorded nonzero loads {stats.received}",
                label,
            )

        c_delta = self.cluster.stats.total_communication - c_before
        self._check(
            "c-delta",
            c_delta == stats.total,
            f"C advanced by {c_delta}, round total is {stats.total}",
            label,
        )

    def record_abort(self, rnd: "RoundContext") -> None:
        """Note a round abandoned by an exception inside its block."""
        self.report.aborted_rounds.append(rnd.label)

    def record_rejected(self, rnd: "RoundContext", stats: RoundStats) -> None:
        """Note a round rejected by the load cap at the barrier."""
        self.report.rejected_rounds.append(rnd.label)

    # ----------------------------------------------------------- internal

    def _check(self, check: str, ok: bool, detail: str, label: str) -> None:
        self.report.checks_run += 1
        if ok:
            return
        self.report.violations.append(AuditViolation(label, check, detail))
        if self.strict:
            raise AuditError(check, f"round {label!r}: {detail}")


def verify_partition(p_total: int, runs: Sequence[RunStats]) -> None:
    """Check that parallel sub-runs' servers fit into ``p_total``.

    ``combine_parallel`` models sub-algorithms on *disjoint* server
    pools, so their sizes must partition the budget: ``Σ pᵢ ≤ p_total``.
    Raises :class:`~repro.errors.AuditError` otherwise.
    """
    used = sum(run.p for run in runs)
    if any(run.p <= 0 for run in runs):
        raise AuditError("partition", "a sub-run reports a non-positive p")
    if used > p_total:
        raise AuditError(
            "partition",
            f"sub-clusters use {used} servers, budget is {p_total}",
        )


def verify_combined(
    combined: RunStats, runs: Sequence[RunStats], parallel: bool
) -> None:
    """Re-check the arithmetic of a combined run against its parts.

    Total communication must be conserved in both combination modes; a
    parallel combination must additionally have ``r = max rᵢ`` and
    per-round ``L = max`` over the aligned sub-rounds. Raises
    :class:`~repro.errors.AuditError` on mismatch.
    """
    expected_c = sum(run.total_communication for run in runs)
    if combined.total_communication != expected_c:
        raise AuditError(
            "combine",
            f"combined C={combined.total_communication}, parts sum to {expected_c}",
        )
    if parallel:
        delivered = [
            [rd for rd in run.rounds if rd.delivered] for run in runs
        ]
        expected_depth = max((len(seq) for seq in delivered), default=0)
        actual_depth = sum(1 for rd in combined.rounds if rd.delivered)
        if actual_depth != expected_depth:
            raise AuditError(
                "combine",
                f"combined depth {actual_depth}, expected max {expected_depth}",
            )
        for i, rd in enumerate(combined.rounds):
            expected_l = max(
                (seq[i].max_load for seq in delivered if i < len(seq)),
                default=0,
            )
            if rd.max_load != expected_l:
                raise AuditError(
                    "combine",
                    f"round {i} combined L={rd.max_load}, expected {expected_l}",
                )
