"""Human-readable traces of MPC executions.

Debugging a distributed algorithm usually starts with *where did the
load go*. This module renders :class:`~repro.mpc.stats.RunStats` as
text: a per-round table and an ASCII histogram of per-server loads, so
skew is visible at a glance::

    round        L      total  imbalance
    hash-shuffle 1154   8000   1.15
    server loads [hash-shuffle]
      s00 ████████████████████ 1154
      s01 █████████████▌        812
      ...

Labels longer than the 24-character column are truncated with an
ellipsis so the table stays aligned; a round rejected by the load cap
(recorded but undelivered) is marked with a trailing ``!``. When the run
was audited (``Cluster(p, audit=True)``), :func:`trace` appends the
audit summary line; when it ran under fault injection
(:mod:`repro.mpc.faults`), the fault/recovery summary follows.
"""

from __future__ import annotations

from repro.mpc.stats import RoundStats, RunStats

_BAR_WIDTH = 24
_LABEL_WIDTH = 24
_FULL_BLOCK = "█"
_HALF_BLOCK = "▌"
_MIN_TICK = "▏"


def _fit_label(label: str, width: int = _LABEL_WIDTH) -> str:
    """Truncate a label to the table's column width with an ellipsis."""
    if len(label) <= width:
        return label
    return label[: width - 1] + "…"


def round_table(stats: RunStats) -> str:
    """A per-round summary table (label, L, total, imbalance).

    Undelivered rounds (rejected by the load cap at the barrier) are
    flagged with ``!`` after the label and excluded from the totals, as
    in :class:`~repro.mpc.stats.RunStats`.
    """
    lines = [f"{'round':<{_LABEL_WIDTH}} {'L':>8} {'total':>10} {'imbalance':>10}"]
    for rd in stats.rounds:
        # Truncate before flagging so the "!" survives long labels.
        if rd.delivered:
            label = _fit_label(rd.label)
        else:
            label = _fit_label(rd.label, _LABEL_WIDTH - 2) + " !"
        lines.append(
            f"{label:<{_LABEL_WIDTH}} {rd.max_load:>8} {rd.total:>10} "
            f"{rd.imbalance:>10.2f}"
        )
    lines.append(
        f"{'TOTAL':<{_LABEL_WIDTH}} {stats.max_load:>8} "
        f"{stats.total_communication:>10} {'r=' + str(stats.num_rounds):>10}"
    )
    return "\n".join(lines)


def load_histogram(round_stats: RoundStats, width: int = _BAR_WIDTH) -> str:
    """A bar per server for one round's received loads.

    Bars use the block characters promised by the module docstring: full
    blocks ``█`` with a half block ``▌`` for the fractional remainder; a
    tiny-but-nonzero load always shows at least a ``▏`` tick.
    """
    peak = max(round_stats.max_load, 1)
    lines = [f"server loads [{_fit_label(round_stats.label)}]"]
    for sid, load in enumerate(round_stats.received):
        scaled = load / peak * width
        bar = _FULL_BLOCK * int(scaled)
        if scaled - int(scaled) >= 0.5:
            bar += _HALF_BLOCK
        if load and not bar:
            bar = _MIN_TICK
        lines.append(f"  s{sid:02d} {bar:<{width}} {load}")
    return "\n".join(lines)


def trace(stats: RunStats, histograms: bool = False) -> str:
    """Full trace: the round table, optionally with per-round histograms.

    Audited runs (see :mod:`repro.mpc.audit`) get their audit summary
    appended; fault-injected runs (see :mod:`repro.mpc.faults`) get the
    fault/recovery summary as the last line.
    """
    parts = [round_table(stats)]
    if histograms:
        for rd in stats.rounds:
            if rd.total and rd.delivered:
                parts.append(load_histogram(rd))
    if stats.audit is not None:
        parts.append(stats.audit.summary())
    if stats.faults is not None:
        parts.append(stats.faults.summary())
    if stats.exec is not None and stats.exec.backend != "inline":
        bpm = stats.exec.bytes_per_message
        parts.append(
            f"exec: backend={stats.exec.backend}x{stats.exec.workers} "
            f"chunks={stats.exec.chunks} "
            f"queue_messages={stats.exec.queue_messages} "
            f"bytes/msg={'n/a' if bpm is None else format(bpm, '.0f')}"
        )
    if stats.memo is not None and stats.memo.any_activity:
        parts.append(stats.memo.summary())
    return "\n\n".join(parts)


def busiest_server(stats: RunStats) -> tuple[int, int]:
    """(server id, total received) of the run's most loaded server."""
    if not stats.rounds:
        return (0, 0)
    totals = [0] * stats.p
    for rd in stats.rounds:
        if not rd.delivered:
            continue
        for sid, load in enumerate(rd.received):
            totals[sid] += load
    sid = max(range(stats.p), key=lambda i: totals[i])
    return sid, totals[sid]
