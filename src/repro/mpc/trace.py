"""Human-readable traces of MPC executions.

Debugging a distributed algorithm usually starts with *where did the
load go*. This module renders :class:`~repro.mpc.stats.RunStats` as
text: a per-round table and an ASCII histogram of per-server loads, so
skew is visible at a glance::

    round        L      total  imbalance
    hash-shuffle 1154   8000   1.15
    server loads [hash-shuffle]
      s00 ████████████████████ 1154
      s01 █████████████▌        812
      ...
"""

from __future__ import annotations

from repro.mpc.stats import RoundStats, RunStats

_BAR_WIDTH = 24


def round_table(stats: RunStats) -> str:
    """A per-round summary table (label, L, total, imbalance)."""
    lines = [f"{'round':<24} {'L':>8} {'total':>10} {'imbalance':>10}"]
    for rd in stats.rounds:
        lines.append(
            f"{rd.label:<24} {rd.max_load:>8} {rd.total:>10} {rd.imbalance:>10.2f}"
        )
    lines.append(
        f"{'TOTAL':<24} {stats.max_load:>8} {stats.total_communication:>10} "
        f"{'r=' + str(stats.num_rounds):>10}"
    )
    return "\n".join(lines)


def load_histogram(round_stats: RoundStats, width: int = _BAR_WIDTH) -> str:
    """An ASCII bar per server for one round's received loads."""
    peak = max(round_stats.max_load, 1)
    lines = [f"server loads [{round_stats.label}]"]
    for sid, load in enumerate(round_stats.received):
        bar = "#" * max(1 if load else 0, round(load / peak * width))
        lines.append(f"  s{sid:02d} {bar:<{width}} {load}")
    return "\n".join(lines)


def trace(stats: RunStats, histograms: bool = False) -> str:
    """Full trace: the round table, optionally with per-round histograms."""
    parts = [round_table(stats)]
    if histograms:
        for rd in stats.rounds:
            if rd.total:
                parts.append(load_histogram(rd))
    return "\n\n".join(parts)


def busiest_server(stats: RunStats) -> tuple[int, int]:
    """(server id, total received) of the run's most loaded server."""
    if not stats.rounds:
        return (0, 0)
    totals = [0] * stats.p
    for rd in stats.rounds:
        for sid, load in enumerate(rd.received):
            totals[sid] += load
    sid = max(range(stats.p), key=lambda i: totals[i])
    return sid, totals[sid]
