"""Cost accounting for MPC runs.

The tutorial measures exactly two quantities (slide 20):

- ``L`` — the maximum communication load of any server in any round
  (tuples *received* per server per round);
- ``r`` — the number of rounds.

We additionally track total communication ``C = Σ loads`` (used in the
matrix-multiplication section, where ``C = p · r · L`` up to balance) and
the per-round load distribution, so experiments can report realized skew.

Lifecycle bookkeeping
---------------------

A :class:`RoundStats` entry is recorded for every round that reached the
barrier, including one rejected by the load cap: such an entry carries
``delivered=False`` and is *excluded* from the ``L``/``r``/``C``
aggregates (nothing was communicated) while staying inspectable in
``rounds``. Rounds aborted by an exception inside the ``with`` block
never reach the barrier; they only bump :attr:`RunStats.aborted`.

When the owning cluster was created with ``audit=True``, the
:attr:`RunStats.audit` field holds the live
:class:`~repro.mpc.audit.AuditReport` of invariant checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernels.memo import MemoStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpc.audit import AuditReport
    from repro.mpc.faults import FaultStats


@dataclass
class RoundStats:
    """Loads of one communication round.

    ``delivered`` is ``False`` for a round rejected by the load cap at
    the barrier: its attempted loads are recorded for post-mortem
    inspection but nothing actually moved.
    """

    label: str
    received: list[int]
    delivered: bool = True

    @property
    def max_load(self) -> int:
        """L of this round: maximum tuples received by any server."""
        return max(self.received) if self.received else 0

    @property
    def total(self) -> int:
        """Total tuples communicated in this round."""
        return sum(self.received)

    @property
    def mean_load(self) -> float:
        return self.total / len(self.received) if self.received else 0.0

    @property
    def imbalance(self) -> float:
        """max / mean load — 1.0 means perfectly balanced."""
        mean = self.mean_load
        return self.max_load / mean if mean else 0.0

    def __repr__(self) -> str:
        flag = "" if self.delivered else ", undelivered"
        return (
            f"RoundStats({self.label!r}, L={self.max_load}, "
            f"total={self.total}, imbalance={self.imbalance:.2f}{flag})"
        )


@dataclass
class ExecStats:
    """Execution-backend accounting, mergeable across workers and runs.

    Counters cover only work dispatched through the backend layer
    (:meth:`repro.mpc.cluster.Cluster.map_servers`); purely inline loops
    that never cross it cost nothing and appear nowhere. ``worker_seconds``
    is the summed in-worker wall time of all chunks — with w workers
    running concurrently it can legitimately exceed the coordinator's
    elapsed time, which is exactly the parallelism being measured.
    """

    backend: str = "inline"
    workers: int = 1
    transport: str = "none"
    protocol: str = "none"  # dispatch protocol label: resident | snapshot
    dispatches: int = 0  # map_servers / batch calls routed through the backend
    chunks: int = 0  # worker jobs (== dispatches for inline)
    items: int = 0  # per-server payloads processed
    shm_bytes_out: int = 0  # array bytes shipped coordinator -> workers
    shm_bytes_in: int = 0  # array bytes shipped workers -> coordinator
    pickle_bytes_out: int = 0  # queue pickle bytes coordinator -> workers
    pickle_bytes_in: int = 0  # queue pickle bytes workers -> coordinator
    worker_seconds: float = 0.0
    fallbacks: int = 0  # process dispatches run inline (unpicklable payload)
    queue_messages: int = 0  # queue round-trips (batching collapses these)
    snapshot_dispatches: int = 0  # messages shipping a full payload snapshot
    resident_hits: int = 0  # blocks that traveled as tokens, not bytes
    resident_misses: int = 0  # cacheable blocks that had to ship
    resident_bytes_saved: int = 0  # bytes the resident hits did not re-ship
    fallback_dispatches: int = 0  # encodes where hot rows fell back to pickle

    # Every additive counter, in declaration order; merged()/delta() walk
    # this list so a new field cannot be silently dropped from either.
    _COUNTERS = (
        "dispatches", "chunks", "items",
        "shm_bytes_out", "shm_bytes_in",
        "pickle_bytes_out", "pickle_bytes_in",
        "worker_seconds", "fallbacks",
        "queue_messages", "snapshot_dispatches",
        "resident_hits", "resident_misses", "resident_bytes_saved",
        "fallback_dispatches",
    )

    @property
    def dispatch_bytes_out(self) -> int:
        """Total bytes a dispatch shipped coordinator -> workers."""
        return self.shm_bytes_out + self.pickle_bytes_out

    @property
    def dispatch_bytes_in(self) -> int:
        """Total bytes shipped workers -> coordinator."""
        return self.shm_bytes_in + self.pickle_bytes_in

    @property
    def bytes_per_message(self) -> "float | None":
        """Mean outbound bytes per queue message (bytes-per-round proxy).

        ``None`` when no queue message was ever sent (the inline backend,
        or a process run that never dispatched): a mean over zero
        messages is undefined, and the former ``0.0`` read as "messages
        were free" in traces and reports.
        """
        if not self.queue_messages:
            return None
        return self.dispatch_bytes_out / self.queue_messages

    @classmethod
    def merged(cls, parts: "list[ExecStats]") -> "ExecStats | None":
        """Combine per-run stats; labels come from the first part."""
        parts = [part for part in parts if part is not None]
        if not parts:
            return None
        total = cls(
            backend=parts[0].backend,
            workers=parts[0].workers,
            transport=parts[0].transport,
            protocol=parts[0].protocol,
        )
        for part in parts:
            for name in cls._COUNTERS:
                setattr(total, name, getattr(total, name) + getattr(part, name))
        return total

    def snapshot(self) -> "ExecStats":
        """A frozen copy of the current counters (for later delta())."""
        copied = ExecStats(
            backend=self.backend,
            workers=self.workers,
            transport=self.transport,
            protocol=self.protocol,
        )
        for name in self._COUNTERS:
            setattr(copied, name, getattr(self, name))
        return copied

    def delta(self, since: "ExecStats") -> "ExecStats":
        """Counters accumulated after ``since`` was snapshotted.

        The per-query accounting primitive: a long-lived service takes a
        snapshot before each query and reports the difference, so one
        query's report never includes bytes another query moved.
        """
        diff = ExecStats(
            backend=self.backend,
            workers=self.workers,
            transport=self.transport,
            protocol=self.protocol,
        )
        for name in self._COUNTERS:
            setattr(diff, name, getattr(self, name) - getattr(since, name))
        return diff


@dataclass
class RunStats:
    """Accumulated cost of a full MPC algorithm execution."""

    p: int
    rounds: list[RoundStats] = field(default_factory=list)
    aborted: int = 0
    audit: "AuditReport | None" = None
    faults: "FaultStats | None" = None
    exec: "ExecStats | None" = None
    memo: MemoStats = field(default_factory=MemoStats)

    @property
    def num_rounds(self) -> int:
        """r: rounds that actually communicated at least one tuple."""
        return sum(1 for r in self.rounds if r.delivered and r.total > 0)

    @property
    def max_load(self) -> int:
        """L: the max per-server per-round load over the whole run."""
        return max((r.max_load for r in self.rounds if r.delivered), default=0)

    @property
    def total_communication(self) -> int:
        """C: total tuples communicated over all rounds and servers."""
        return sum(r.total for r in self.rounds if r.delivered)

    def load_of(self, label: str) -> int:
        """Max load of the *delivered* round(s) with the given label.

        Cap-rejected rounds are excluded, consistent with every other
        aggregate: their attempted loads never moved a tuple, so counting
        them would report a load the algorithm did not realize.
        """
        loads = [
            r.max_load for r in self.rounds if r.label == label and r.delivered
        ]
        if not loads:
            raise KeyError(f"no delivered round labelled {label!r}")
        return max(loads)

    def summary(self) -> str:
        """One-line human-readable cost summary."""
        text = (
            f"p={self.p} r={self.num_rounds} L={self.max_load} "
            f"C={self.total_communication}"
        )
        if self.aborted:
            text += f" aborted={self.aborted}"
        rejected = sum(1 for r in self.rounds if not r.delivered)
        if rejected:
            text += f" rejected={rejected}"
        if self.faults is not None and self.faults.injected:
            text += f" faults={self.faults.injected}"
            if self.faults.unrecovered:
                text += f" unrecovered={self.faults.unrecovered}"
        if self.exec is not None and self.exec.backend != "inline":
            text += (
                f" backend={self.exec.backend}x{self.exec.workers}"
                f" chunks={self.exec.chunks}"
            )
            # None (no queue message ever sent) is reported as n/a, never
            # as a free-looking 0.
            bpm = self.exec.bytes_per_message
            text += f" bytes/msg={'n/a' if bpm is None else format(bpm, '.0f')}"
        if self.memo is not None:
            hits = self.memo.partition_hits + self.memo.view_hits
            if hits:
                text += f" memo_hits={hits}"
        return text

    def __repr__(self) -> str:
        return f"RunStats({self.summary()})"
