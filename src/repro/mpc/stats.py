"""Cost accounting for MPC runs.

The tutorial measures exactly two quantities (slide 20):

- ``L`` — the maximum communication load of any server in any round
  (tuples *received* per server per round);
- ``r`` — the number of rounds.

We additionally track total communication ``C = Σ loads`` (used in the
matrix-multiplication section, where ``C = p · r · L`` up to balance) and
the per-round load distribution, so experiments can report realized skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundStats:
    """Loads of one communication round."""

    label: str
    received: list[int]

    @property
    def max_load(self) -> int:
        """L of this round: maximum tuples received by any server."""
        return max(self.received) if self.received else 0

    @property
    def total(self) -> int:
        """Total tuples communicated in this round."""
        return sum(self.received)

    @property
    def mean_load(self) -> float:
        return self.total / len(self.received) if self.received else 0.0

    @property
    def imbalance(self) -> float:
        """max / mean load — 1.0 means perfectly balanced."""
        mean = self.mean_load
        return self.max_load / mean if mean else 0.0

    def __repr__(self) -> str:
        return (
            f"RoundStats({self.label!r}, L={self.max_load}, "
            f"total={self.total}, imbalance={self.imbalance:.2f})"
        )


@dataclass
class RunStats:
    """Accumulated cost of a full MPC algorithm execution."""

    p: int
    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """r: rounds that actually communicated at least one tuple."""
        return sum(1 for r in self.rounds if r.total > 0)

    @property
    def max_load(self) -> int:
        """L: the max per-server per-round load over the whole run."""
        return max((r.max_load for r in self.rounds), default=0)

    @property
    def total_communication(self) -> int:
        """C: total tuples communicated over all rounds and servers."""
        return sum(r.total for r in self.rounds)

    def load_of(self, label: str) -> int:
        """Max load of the round(s) with the given label."""
        loads = [r.max_load for r in self.rounds if r.label == label]
        if not loads:
            raise KeyError(f"no round labelled {label!r}")
        return max(loads)

    def summary(self) -> str:
        """One-line human-readable cost summary."""
        return (
            f"p={self.p} r={self.num_rounds} L={self.max_load} "
            f"C={self.total_communication}"
        )

    def __repr__(self) -> str:
        return f"RunStats({self.summary()})"
