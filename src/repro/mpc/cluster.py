"""The MPC cluster simulator.

Implements the Massively Parallel Communication model of the tutorial:
``p`` shared-nothing servers computing in synchronous rounds. One round =
local computation + all-to-all communication delivered at a barrier.

Usage pattern (a shuffle round)::

    cluster = Cluster(p=8)
    cluster.scatter(r, "R")
    h = cluster.hash_function(index=0, buckets=cluster.p)
    with cluster.round("shuffle") as rnd:
        for server in cluster.servers:
            for row in server.take("R"):
                rnd.send(h(row[0]), "R@h", row)
    # after the `with` block every destination fragment is populated and
    # cluster.stats has a RoundStats entry for the round.

Costs follow the tutorial's conventions: the *load* of a server in a
round is the number of tuples it receives; ``L`` is the max over servers
and rounds; the initial ``scatter`` placement is free (the model grants
an O(IN/p) initial distribution), though it can optionally be recorded.

Lifecycle guarantees
--------------------

The round lifecycle is exception-safe:

- An exception raised *inside* the ``with`` block aborts the round: the
  pending sends are discarded, nothing is delivered or charged, the
  round is closed, and the cluster can immediately open a new round
  (``RunStats.aborted`` counts such aborts).
- The ``load_cap`` is enforced at the barrier *before* any tuple is
  delivered: a violating round raises
  :class:`~repro.errors.LoadExceededError`, mutates no server fragment,
  and is recorded in the statistics with ``delivered=False`` so the
  failure is inspectable — and the cluster remains usable.

With ``Cluster(p, audit=True)`` (or inside
:func:`repro.mpc.audit.audited`) every delivered round is additionally
checked against the conservation invariants of
:mod:`repro.mpc.audit`; the report is surfaced on ``cluster.stats.audit``.

With ``Cluster(p, faults=plan)`` (or inside
:func:`repro.mpc.faults.faulty`) a deterministic
:class:`~repro.mpc.faults.FaultPlan` injects crashes, stragglers, and
channel faults at the barriers; recovery runs before the audit snapshot,
so a recovered round satisfies the same invariants as a fault-free one.
The fault counters are surfaced on ``cluster.stats.faults``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.data.relation import Relation
from repro.errors import ClusterError, LoadExceededError
from repro.exec.base import ExecutionBackend, chunk_bounds, get_backend
from repro.kernels.config import kernels_enabled
from repro.kernels.memo import MemoStats, memo_enabled
from repro.mpc.audit import AuditReport, ClusterAuditor, audit_enabled_by_default
from repro.mpc.faults import (
    FaultController,
    FaultPlan,
    FaultStats,
    fault_plan_by_default,
)
from repro.mpc.hashing import HashFamily, HashFunction
from repro.mpc.server import Row, Server
from repro.mpc.stats import ExecStats, RoundStats, RunStats


class RoundContext:
    """Collects sends during one round; delivers them at the barrier."""

    def __init__(self, cluster: "Cluster", label: str, charged: bool = True) -> None:
        self._cluster = cluster
        self.label = label
        self.charged = charged
        # _buffers[dest][fragment] = list of rows
        self._buffers: list[dict[str, list[Row]]] = [{} for _ in range(cluster.p)]
        # Column side-cars accompanying batched sends:
        # _column_buffers[dest][fragment] = [key_idx, per-column chunk lists,
        # number of rows covered]. Installed on the destination server at
        # delivery only when every row of the fragment's buffer arrived
        # with matching columns.
        self._column_buffers: list[dict[str, list]] = [{} for _ in range(cluster.p)]
        self._units: list[int] = [0] * cluster.p
        self._closed = False
        self.aborted = False
        # Round ordinal (0-based, counts every opened round, charged and
        # free) — the coordinate fault plans schedule against. Assigned
        # by Cluster._open_round.
        self.ordinal = -1

    # ------------------------------------------------------------- sending

    def send(self, dest: int, fragment: str, row: Row, units: int = 1) -> None:
        """Send one tuple to server ``dest``, to be stored under ``fragment``.

        ``units`` is the communication cost of the tuple (default one, per
        the tutorial's tuple-counting convention). It must be
        non-negative: a negative cost would silently offset other
        senders' units and could mask a load-cap violation.
        """
        if self._closed:
            raise ClusterError("round already closed")
        if not 0 <= dest < self._cluster.p:
            raise ClusterError(f"destination {dest} out of range [0, {self._cluster.p})")
        if units < 0:
            raise ClusterError(f"units must be non-negative, got {units}")
        self._buffers[dest].setdefault(fragment, []).append(row)
        self._units[dest] += units

    def send_many(self, dest: int, fragment: str, rows: Iterable[Row]) -> None:
        """Send several tuples to one destination fragment."""
        for row in rows:
            self.send(dest, fragment, row)

    def send_rows(
        self,
        dest: int,
        fragment: str,
        rows: Sequence[Row],
        key_idx: tuple[int, ...] | None = None,
        columns: Sequence[np.ndarray] | None = None,
    ) -> None:
        """Batched :meth:`send`: one call charges ``len(rows)`` units.

        Buffer contents and charged units end up exactly as if each row
        had been sent individually (the kernels' batched shuffles rely on
        this to keep loads identical to the tuple-at-a-time path).

        ``columns`` optionally carries the rows' key columns
        (``columns[i]`` = column ``key_idx[i]``, aligned with ``rows``);
        when the whole fragment arrives this way the destination server
        gets the concatenated arrays as a column side-car, so local
        computation can skip re-extracting columns from the tuples.
        """
        if self._closed:
            raise ClusterError("round already closed")
        if not 0 <= dest < self._cluster.p:
            raise ClusterError(f"destination {dest} out of range [0, {self._cluster.p})")
        self._buffers[dest].setdefault(fragment, []).extend(rows)
        self._units[dest] += len(rows)
        if columns is not None:
            entry = self._column_buffers[dest].setdefault(
                fragment, [key_idx, [[] for _ in columns], 0]
            )
            if entry[0] == key_idx and len(entry[1]) == len(columns):
                for chunks, chunk in zip(entry[1], columns):
                    chunks.append(chunk)
                entry[2] += len(rows)

    def broadcast(self, fragment: str, row: Row, servers: Sequence[int] | None = None) -> None:
        """Send one tuple to every server (or each listed server)."""
        targets = range(self._cluster.p) if servers is None else servers
        for dest in targets:
            self.send(dest, fragment, row)

    # ------------------------------------------------------------- barrier

    def _make_stats(self) -> RoundStats:
        """The round's load record (zeros when the round is uncharged)."""
        units = list(self._units) if self.charged else [0] * self._cluster.p
        return RoundStats(self.label, units)

    def _cap_violation(self) -> tuple[int, int] | None:
        """(server, load) of the worst cap violation, or None when within cap."""
        cap = self._cluster.load_cap
        if cap is None or not self.charged:
            return None
        worst: tuple[int, int] | None = None
        for sid, got in enumerate(self._units):
            if got > cap and (worst is None or got > worst[1]):
                worst = (sid, got)
        return worst

    def _deliver_buffers(self) -> None:
        """Move every buffered tuple into its destination fragment."""
        servers = self._cluster.servers
        origins = self._cluster._scatter_origin
        lazy = memo_enabled()
        for dest, fragments in enumerate(self._buffers):
            server = servers[dest]
            side_cars = self._column_buffers[dest]
            for fragment, rows in fragments.items():
                # Delivered rows supersede any scatter provenance for the
                # fragment: a cached routing plan may no longer replay it.
                origins.pop(fragment, None)
                target = server.fragment(fragment)
                had_rows = bool(target)
                target.extend(rows)
                # Delivering rows invalidates any previous side-car; a new
                # one is installed only when this round's columns cover the
                # fragment's entire (freshly created) row list.
                server.column_cache.pop(fragment, None)
                entry = side_cars.get(fragment)
                if entry is not None and not had_rows and entry[2] == len(rows):
                    key_idx, per_column, _covered = entry
                    if lazy and any(len(chunks) > 1 for chunks in per_column):
                        # Zero-copy chunked delivery: hand the blocks over
                        # as-is; the concat happens only if a consumer asks
                        # for whole columns (Server.take_with_columns).
                        server.put_column_chunks(fragment, key_idx, per_column)
                    else:
                        server.put_columns(
                            fragment,
                            key_idx,
                            [
                                chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                                for chunks in per_column
                            ],
                        )

    def __enter__(self) -> "RoundContext":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # Exception-safe: the cluster's round state is released on every
        # exit path. A clean exit runs the barrier (which may itself raise
        # LoadExceededError or AuditError); an exceptional exit aborts the
        # round without delivering and lets the exception propagate.
        if exc_type is None:
            self._cluster._finish_round(self)
        else:
            self._cluster._abort_round(self)


class Cluster:
    """A simulated MPC cluster of ``p`` servers.

    Parameters
    ----------
    p:
        Number of servers.
    seed:
        Seed of the cluster's hash-function family (all algorithms draw
        their hash functions from here, so runs are reproducible).
    load_cap:
        Optional *maximum permitted* per-server per-round load,
        inclusive: a round delivering exactly ``load_cap`` units to a
        server is within budget; the first unit beyond it (``load_cap +
        1``) raises :class:`LoadExceededError` at the barrier *before
        delivering anything* — the round is recorded with
        ``delivered=False`` and the cluster stays usable. Used to
        *verify* that an algorithm stays within a promised load L.
    audit:
        ``True`` attaches a :class:`~repro.mpc.audit.ClusterAuditor`
        that re-checks conservation invariants after every round (see
        :mod:`repro.mpc.audit`); ``None`` (default) follows
        :func:`repro.mpc.audit.audited`'s ambient setting.
    faults:
        A :class:`~repro.mpc.faults.FaultPlan` to inject into this
        cluster's lifecycle (see :mod:`repro.mpc.faults`); ``None``
        (default) follows :func:`repro.mpc.faults.faulty`'s ambient
        setting. The plan's counters appear on ``stats.faults``.
    backend:
        Who executes per-round local computation routed through
        :meth:`map_servers`: ``"inline"`` (this process), ``"process"``
        (the persistent worker pool of :mod:`repro.exec`), an
        :class:`~repro.exec.base.ExecutionBackend` instance, or ``None``
        (default) to follow the ambient :func:`repro.exec.use_backend`
        / ``REPRO_BACKEND`` setting. Outputs, loads, rounds, audits, and
        fault replay are byte-identical across backends.
    """

    def __init__(
        self,
        p: int,
        seed: int = 0,
        load_cap: int | None = None,
        audit: bool | None = None,
        faults: FaultPlan | None = None,
        backend: "str | ExecutionBackend | None" = None,
    ) -> None:
        if p <= 0:
            raise ClusterError("a cluster needs at least one server")
        self.p = p
        self.servers = [Server(sid) for sid in range(p)]
        self.stats = RunStats(p)
        # fragment name -> (relation, mutation token at scatter time).
        # Proof that a fragment still holds exactly rel[s::p], letting the
        # memo layer replay a cached routing plan (repro.kernels.memo).
        # Any delivery to, raw re-scatter of, or drop of the fragment
        # invalidates the claim; a mutated relation is caught by its token.
        self._scatter_origin: dict[str, tuple[Relation, int]] = {}
        self.backend = get_backend(backend)
        self.stats.exec = self.backend.new_stats()
        self.load_cap = load_cap
        self._hash_family = HashFamily(seed)
        self._in_round = False
        self._round_ordinal = 0
        if audit is None:
            audit = audit_enabled_by_default()
        self.auditor: ClusterAuditor | None = ClusterAuditor(self) if audit else None
        if self.auditor is not None:
            self.stats.audit = self.auditor.report
        if faults is None:
            faults = fault_plan_by_default()
        self.fault_controller: FaultController | None = (
            FaultController(self, faults) if faults is not None else None
        )
        if self.fault_controller is not None:
            self.stats.faults = self.fault_controller.stats

    # ----------------------------------------------------------- utilities

    def hash_function(self, index: int, buckets: int | None = None) -> HashFunction:
        """The ``index``-th hash function of the cluster's family."""
        return self._hash_family.function(index, buckets if buckets is not None else self.p)

    def map_servers(self, task: str, payloads: Sequence[object], common: object = None) -> list:
        """Run a registered task over per-server payloads via the backend.

        ``payloads[i]`` is server i's input (usually built from fragments
        the caller just took); the result list is index-aligned with the
        payloads regardless of backend. The ``process`` backend splits
        the list into one contiguous chunk per worker — worker w computes
        for the servers of its range — and merges in chunk order, so the
        result is byte-identical to the inline single-chunk run.
        """
        return self.backend.map_payloads(task, list(payloads), common, stats=self.stats.exec)

    def map_servers_batch(
        self, calls: Sequence[tuple[str, Sequence[object], object]]
    ) -> list[list]:
        """Run several *independent* task maps as one backend dispatch.

        ``calls[k] = (task, payloads, common)``; the result is
        call-aligned, each entry what :meth:`map_servers` would have
        returned for that call alone. The calls must not read each
        other's results — the process backend ships the whole batch as a
        single queue message per worker, collapsing k round-trips into
        one (visible as ``ExecStats.queue_messages`` growing by at most
        the worker count instead of k × worker count).
        """
        return self.backend.map_payload_batch(
            [(task, list(payloads), common) for task, payloads, common in calls],
            stats=self.stats.exec,
        )

    def owning_worker(self, sid: int) -> int:
        """The backend worker whose contiguous server range contains ``sid``.

        Always 0 for the inline backend (one chunk). Used by the fault
        layer to attribute fault events to the worker that computes for
        the struck server.
        """
        if not 0 <= sid < self.p:
            raise ClusterError(f"server {sid} out of range [0, {self.p})")
        workers = getattr(self.backend, "workers", 1)
        for index, (start, stop) in enumerate(chunk_bounds(self.p, workers)):
            if start <= sid < stop:
                return index
        return 0  # pragma: no cover - bounds always cover [0, p)

    def round(self, label: str) -> RoundContext:
        """Open a communication round. Use as a context manager."""
        return self._open_round(label, charged=True)

    def free_round(self, label: str) -> RoundContext:
        """A round whose communication is *not* charged (initial placement).

        The MPC model grants the initial O(IN/p) distribution for free;
        this provides the same mechanics as :meth:`round` but records a
        zero-load entry in the statistics (and ignores ``load_cap``).
        """
        return self._open_round(label, charged=False)

    def _open_round(self, label: str, charged: bool) -> RoundContext:
        if self._in_round:
            raise ClusterError("rounds cannot be nested")
        self._in_round = True
        rnd = RoundContext(self, label, charged=charged)
        rnd.ordinal = self._round_ordinal
        self._round_ordinal += 1
        return rnd

    def _finish_round(self, rnd: RoundContext) -> None:
        """The barrier: enforce the cap, deliver, record, audit.

        The cap is checked *before* delivery so a rejected round cannot
        corrupt server state; its stats are still recorded (marked
        undelivered) for post-mortem inspection. ``_in_round`` is
        released on every path so a failure never wedges the cluster.
        """
        try:
            rnd._closed = True
            stats = rnd._make_stats()
            violation = rnd._cap_violation()
            if violation is not None:
                sid, got = violation
                stats.delivered = False
                self.stats.rounds.append(stats)
                if self.auditor is not None:
                    self.auditor.record_rejected(rnd, stats)
                assert self.load_cap is not None
                raise LoadExceededError(sid, got, self.load_cap)
            # Faults strike after the cap admitted the round and before
            # the audit snapshot: recovery completes within the barrier,
            # so the auditor sees a state satisfying every invariant.
            if self.fault_controller is not None:
                self.fault_controller.before_delivery(rnd, rnd.ordinal)
            before = c_before = None
            if self.auditor is not None:
                before = self.auditor.snapshot()
                c_before = self.stats.total_communication
            rnd._deliver_buffers()
            self.stats.rounds.append(stats)
            if self.auditor is not None:
                assert before is not None and c_before is not None
                self.auditor.after_delivery(rnd, stats, before, c_before)
            if self.fault_controller is not None:
                self.fault_controller.after_delivery(rnd, rnd.ordinal)
        finally:
            self._in_round = False

    def _abort_round(self, rnd: RoundContext) -> None:
        """Abandon a round after an exception inside its block.

        Pending sends are discarded — nothing is delivered or charged.
        Local fragment mutations made inside the block (``take``/``put``)
        are *not* rolled back; the guarantee is that the cluster's round
        lifecycle and accounting stay consistent and usable.
        """
        rnd._closed = True
        rnd.aborted = True
        rnd._buffers = [{} for _ in range(self.p)]
        rnd._column_buffers = [{} for _ in range(self.p)]
        self.stats.aborted += 1
        if self.auditor is not None:
            self.auditor.record_abort(rnd)
        self._in_round = False

    # ------------------------------------------------------- data placement

    def scatter(self, relation: Relation, name: str | None = None) -> str:
        """Place a relation round-robin across servers (free, per the model).

        Returns the fragment name used (``relation.name`` by default).
        """
        fragment = name if name is not None else relation.name
        columns = relation.columns() if kernels_enabled() else None
        self.scatter_rows(relation.rows_readonly(), fragment, columns=columns)
        if not relation.is_borrowed:
            self._scatter_origin[fragment] = (relation, relation.mutation_token())
        return fragment

    def scatter_rows(
        self,
        rows: Sequence[Row],
        name: str,
        columns: Sequence[np.ndarray] | None = None,
    ) -> str:
        """Place raw rows round-robin across servers (free).

        Sliced placement (``rows[s::p]`` to server ``s``) — identical
        assignment to the ``i % p`` loop, p list slices instead of n
        Python-level appends. When a columnar view of ``rows`` is
        available its matching slices are attached as a column side-car
        (only on servers whose fragment was empty, so the side-car always
        covers the full stored row list).
        """
        self._scatter_origin.pop(name, None)
        for s in range(self.p):
            chunk = rows[s :: self.p]
            if chunk:
                target = self.servers[s].fragment(name)
                fresh = not target
                target.extend(chunk)
                if columns is not None and fresh:
                    self.servers[s].put_columns(
                        name,
                        tuple(range(len(columns))),
                        [c[s :: self.p] for c in columns],
                    )
                if self.fault_controller is not None:
                    self.fault_controller.on_scatter_chunk(s, name, chunk)
        return name

    def gather(self, fragment: str) -> list[Row]:
        """All rows of a fragment across servers, in server order.

        Gathering is an *inspection* helper for tests and result
        collection; it is not charged as communication (the model's output
        convention: results may stay distributed).

        The returned list is always a *fresh copy*, never a live server
        storage list — callers may append to, sort, or clear it without
        corrupting any fragment, even when a single server holds the
        whole fragment. (Mirrors the ``Relation.rows()`` contract; the
        mutation-guard regression suite pins this down.)
        """
        out: list[Row] = []
        for server in self.servers:
            out.extend(server.get(fragment))
        return out

    def gather_relation(self, fragment: str, name: str, attributes: Sequence[str]) -> Relation:
        """Gather a fragment into a :class:`Relation`.

        The gathered list is adopted without re-checking arities: every
        row in a fragment store was arity-checked when its relation was
        built (delivery only moves tuples between fragments).
        """
        return Relation.wrap(name, attributes, self.gather(fragment))

    def drop(self, fragment: str) -> None:
        """Delete a fragment on every server."""
        self._scatter_origin.pop(fragment, None)
        for server in self.servers:
            server.drop(fragment)

    def fragment_sizes(self, fragment: str) -> list[int]:
        """Per-server sizes of one fragment."""
        return [len(server.get(fragment)) for server in self.servers]

    def __repr__(self) -> str:
        return f"Cluster(p={self.p}, {self.stats.summary()})"


def combine_sequential(
    p_total: int, runs: Sequence[RunStats], audit: bool = False
) -> RunStats:
    """Combine stats of algorithm phases run *one after another*.

    Multi-round plans (iterative binary joins, GYM) execute phases in
    sequence on the same servers: rounds concatenate, ``L`` is the max
    over phases, ``C`` the sum. With ``audit=True`` the combination
    arithmetic is re-checked (:func:`repro.mpc.audit.verify_combined`).
    """
    combined = RunStats(p_total)
    for run in runs:
        combined.rounds.extend(run.rounds)
        combined.aborted += run.aborted
    combined.audit = AuditReport.merged(
        run.audit for run in runs if run.audit is not None
    )
    combined.faults = FaultStats.merged(
        run.faults for run in runs if run.faults is not None
    )
    combined.exec = ExecStats.merged([run.exec for run in runs])
    combined.memo = MemoStats.merged([run.memo for run in runs])
    if audit:
        from repro.mpc.audit import verify_combined

        verify_combined(combined, runs, parallel=False)
    return combined


def combine_parallel(
    p_total: int, runs: Sequence[RunStats], audit: bool = False
) -> RunStats:
    """Combine stats of algorithms run *in parallel on disjoint servers*.

    SkewHC runs each residual query on its own exclusive sub-cluster; in
    the MPC model those executions happen simultaneously. The combined
    cost has ``r = max rounds``, per-round ``L = max over sub-runs`` and
    ``C = Σ``. Rounds are aligned by index (undelivered — cap-rejected —
    sub-rounds are excluded: they moved nothing).

    With ``audit=True`` the sub-cluster sizes must partition ``p_total``
    (:func:`repro.mpc.audit.verify_partition`) and the combination
    arithmetic is re-checked. This is opt-in rather than tied to the
    ambient audit default because some callers (the parallel sort join)
    intentionally account heavy-value fallback servers on top of ``p``.
    """
    if audit:
        from repro.mpc.audit import verify_partition

        verify_partition(p_total, runs)
    combined = RunStats(p_total)
    combined.aborted = sum(run.aborted for run in runs)
    sequences = [[rd for rd in run.rounds if rd.delivered] for run in runs]
    depth = max((len(seq) for seq in sequences), default=0)
    for i in range(depth):
        received: list[int] = []
        labels: list[str] = []
        for seq in sequences:
            if i < len(seq):
                received.extend(seq[i].received)
                labels.append(seq[i].label)
        combined.rounds.append(RoundStats("+".join(dict.fromkeys(labels)), received))
    combined.audit = AuditReport.merged(
        run.audit for run in runs if run.audit is not None
    )
    combined.faults = FaultStats.merged(
        run.faults for run in runs if run.faults is not None
    )
    combined.exec = ExecStats.merged([run.exec for run in runs])
    combined.memo = MemoStats.merged([run.memo for run in runs])
    if audit:
        from repro.mpc.audit import verify_combined

        verify_combined(combined, runs, parallel=True)
    return combined
