"""The MPC cluster simulator.

Implements the Massively Parallel Communication model of the tutorial:
``p`` shared-nothing servers computing in synchronous rounds. One round =
local computation + all-to-all communication delivered at a barrier.

Usage pattern (a shuffle round)::

    cluster = Cluster(p=8)
    cluster.scatter(r, "R")
    h = cluster.hash_function(index=0, buckets=cluster.p)
    with cluster.round("shuffle") as rnd:
        for server in cluster.servers:
            for row in server.take("R"):
                rnd.send(h(row[0]), "R@h", row)
    # after the `with` block every destination fragment is populated and
    # cluster.stats has a RoundStats entry for the round.

Costs follow the tutorial's conventions: the *load* of a server in a
round is the number of tuples it receives; ``L`` is the max over servers
and rounds; the initial ``scatter`` placement is free (the model grants
an O(IN/p) initial distribution), though it can optionally be recorded.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.data.relation import Relation
from repro.errors import ClusterError, LoadExceededError
from repro.mpc.hashing import HashFamily, HashFunction
from repro.mpc.server import Row, Server
from repro.mpc.stats import RoundStats, RunStats


class RoundContext:
    """Collects sends during one round; delivers them at the barrier."""

    def __init__(self, cluster: "Cluster", label: str, charged: bool = True) -> None:
        self._cluster = cluster
        self.label = label
        self.charged = charged
        # _buffers[dest][fragment] = list of rows
        self._buffers: list[dict[str, list[Row]]] = [{} for _ in range(cluster.p)]
        self._units: list[int] = [0] * cluster.p
        self._closed = False

    # ------------------------------------------------------------- sending

    def send(self, dest: int, fragment: str, row: Row, units: int = 1) -> None:
        """Send one tuple to server ``dest``, to be stored under ``fragment``.

        ``units`` is the communication cost of the tuple (default one, per
        the tutorial's tuple-counting convention).
        """
        if self._closed:
            raise ClusterError("round already closed")
        if not 0 <= dest < self._cluster.p:
            raise ClusterError(f"destination {dest} out of range [0, {self._cluster.p})")
        self._buffers[dest].setdefault(fragment, []).append(row)
        self._units[dest] += units

    def send_many(self, dest: int, fragment: str, rows: Iterable[Row]) -> None:
        """Send several tuples to one destination fragment."""
        for row in rows:
            self.send(dest, fragment, row)

    def broadcast(self, fragment: str, row: Row, servers: Sequence[int] | None = None) -> None:
        """Send one tuple to every server (or each listed server)."""
        targets = range(self._cluster.p) if servers is None else servers
        for dest in targets:
            self.send(dest, fragment, row)

    # ------------------------------------------------------------- barrier

    def _deliver(self) -> RoundStats:
        self._closed = True
        cluster = self._cluster
        for dest, fragments in enumerate(self._buffers):
            server = cluster.servers[dest]
            for fragment, rows in fragments.items():
                server.fragment(fragment).extend(rows)
        units = list(self._units) if self.charged else [0] * cluster.p
        stats = RoundStats(self.label, units)
        if cluster.load_cap is not None and self.charged:
            for sid, got in enumerate(self._units):
                if got > cluster.load_cap:
                    raise LoadExceededError(sid, got, cluster.load_cap)
        return stats

    def __enter__(self) -> "RoundContext":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self._cluster._finish_round(self)


class Cluster:
    """A simulated MPC cluster of ``p`` servers.

    Parameters
    ----------
    p:
        Number of servers.
    seed:
        Seed of the cluster's hash-function family (all algorithms draw
        their hash functions from here, so runs are reproducible).
    load_cap:
        Optional hard cap on per-server per-round load; exceeding it
        raises :class:`LoadExceededError`. Used to *verify* that an
        algorithm stays within a promised load L.
    """

    def __init__(self, p: int, seed: int = 0, load_cap: int | None = None) -> None:
        if p <= 0:
            raise ClusterError("a cluster needs at least one server")
        self.p = p
        self.servers = [Server(sid) for sid in range(p)]
        self.stats = RunStats(p)
        self.load_cap = load_cap
        self._hash_family = HashFamily(seed)
        self._in_round = False

    # ----------------------------------------------------------- utilities

    def hash_function(self, index: int, buckets: int | None = None) -> HashFunction:
        """The ``index``-th hash function of the cluster's family."""
        return self._hash_family.function(index, buckets if buckets is not None else self.p)

    def round(self, label: str) -> RoundContext:
        """Open a communication round. Use as a context manager."""
        if self._in_round:
            raise ClusterError("rounds cannot be nested")
        self._in_round = True
        return RoundContext(self, label)

    def _finish_round(self, rnd: RoundContext) -> None:
        stats = rnd._deliver()
        self.stats.rounds.append(stats)
        self._in_round = False

    def free_round(self, label: str) -> RoundContext:
        """A round whose communication is *not* charged (initial placement).

        The MPC model grants the initial O(IN/p) distribution for free;
        this provides the same mechanics as :meth:`round` but records a
        zero-load entry in the statistics.
        """
        if self._in_round:
            raise ClusterError("rounds cannot be nested")
        self._in_round = True
        return RoundContext(self, label, charged=False)

    # ------------------------------------------------------- data placement

    def scatter(self, relation: Relation, name: str | None = None) -> str:
        """Place a relation round-robin across servers (free, per the model).

        Returns the fragment name used (``relation.name`` by default).
        """
        fragment = name if name is not None else relation.name
        for i, row in enumerate(relation):
            self.servers[i % self.p].fragment(fragment).append(row)
        return fragment

    def scatter_rows(self, rows: Sequence[Row], name: str) -> str:
        """Place raw rows round-robin across servers (free)."""
        for i, row in enumerate(rows):
            self.servers[i % self.p].fragment(name).append(row)
        return name

    def gather(self, fragment: str) -> list[Row]:
        """All rows of a fragment across servers, in server order.

        Gathering is an *inspection* helper for tests and result
        collection; it is not charged as communication (the model's output
        convention: results may stay distributed).
        """
        out: list[Row] = []
        for server in self.servers:
            out.extend(server.get(fragment))
        return out

    def gather_relation(self, fragment: str, name: str, attributes: Sequence[str]) -> Relation:
        """Gather a fragment into a :class:`Relation`."""
        return Relation(name, attributes, self.gather(fragment))

    def drop(self, fragment: str) -> None:
        """Delete a fragment on every server."""
        for server in self.servers:
            server.drop(fragment)

    def fragment_sizes(self, fragment: str) -> list[int]:
        """Per-server sizes of one fragment."""
        return [len(server.get(fragment)) for server in self.servers]

    def __repr__(self) -> str:
        return f"Cluster(p={self.p}, {self.stats.summary()})"


def combine_sequential(p_total: int, runs: Sequence[RunStats]) -> RunStats:
    """Combine stats of algorithm phases run *one after another*.

    Multi-round plans (iterative binary joins, GYM) execute phases in
    sequence on the same servers: rounds concatenate, ``L`` is the max
    over phases, ``C`` the sum.
    """
    combined = RunStats(p_total)
    for run in runs:
        combined.rounds.extend(run.rounds)
    return combined


def combine_parallel(p_total: int, runs: Sequence[RunStats]) -> RunStats:
    """Combine stats of algorithms run *in parallel on disjoint servers*.

    SkewHC runs each residual query on its own exclusive sub-cluster; in
    the MPC model those executions happen simultaneously. The combined
    cost has ``r = max rounds``, per-round ``L = max over sub-runs`` and
    ``C = Σ``. Rounds are aligned by index.
    """
    combined = RunStats(p_total)
    depth = max((len(r.rounds) for r in runs), default=0)
    for i in range(depth):
        received: list[int] = []
        labels: list[str] = []
        for run in runs:
            if i < len(run.rounds):
                received.extend(run.rounds[i].received)
                labels.append(run.rounds[i].label)
        combined.rounds.append(RoundStats("+".join(dict.fromkeys(labels)), received))
    return combined
