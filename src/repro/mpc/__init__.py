"""The MPC (Massively Parallel Communication) simulator substrate.

The round lifecycle is exception-safe (a failed round leaves the cluster
usable — see :mod:`repro.mpc.cluster`), the ``load_cap`` is enforced
before delivery, and the whole subsystem can self-audit its conservation
invariants via ``Cluster(p, audit=True)`` or the
:func:`repro.mpc.audit.audited` context manager. Deterministic fault
injection and recovery (crashes, stragglers, channel faults) is
available via ``Cluster(p, faults=plan)`` or
:func:`repro.mpc.faults.faulty`.
"""

from repro.mpc.audit import (
    AuditReport,
    AuditViolation,
    ClusterAuditor,
    audited,
    verify_combined,
    verify_partition,
)
from repro.mpc.cluster import (
    Cluster,
    RoundContext,
    combine_parallel,
    combine_sequential,
)
from repro.mpc.faults import (
    ChannelFault,
    CrashFault,
    FaultController,
    FaultPlan,
    FaultStats,
    RecoveryPolicy,
    StragglerFault,
    faulty,
)
from repro.mpc.hashing import HashFamily, HashFunction, hash_int_tuple, splitmix64
from repro.mpc.server import Server
from repro.mpc.stats import RoundStats, RunStats
from repro.mpc.topology import Grid
from repro.mpc.trace import busiest_server, load_histogram, round_table, trace

__all__ = [
    "AuditReport",
    "AuditViolation",
    "ChannelFault",
    "Cluster",
    "ClusterAuditor",
    "CrashFault",
    "FaultController",
    "FaultPlan",
    "FaultStats",
    "Grid",
    "HashFamily",
    "HashFunction",
    "RecoveryPolicy",
    "RoundContext",
    "RoundStats",
    "RunStats",
    "Server",
    "StragglerFault",
    "audited",
    "faulty",
    "busiest_server",
    "combine_parallel",
    "combine_sequential",
    "hash_int_tuple",
    "load_histogram",
    "round_table",
    "splitmix64",
    "trace",
    "verify_combined",
    "verify_partition",
]
