"""The MPC (Massively Parallel Communication) simulator substrate."""

from repro.mpc.cluster import (
    Cluster,
    RoundContext,
    combine_parallel,
    combine_sequential,
)
from repro.mpc.hashing import HashFamily, HashFunction, splitmix64
from repro.mpc.server import Server
from repro.mpc.stats import RoundStats, RunStats
from repro.mpc.topology import Grid
from repro.mpc.trace import busiest_server, load_histogram, round_table, trace

__all__ = [
    "Cluster",
    "Grid",
    "HashFamily",
    "HashFunction",
    "RoundContext",
    "RoundStats",
    "RunStats",
    "Server",
    "busiest_server",
    "combine_parallel",
    "combine_sequential",
    "load_histogram",
    "round_table",
    "splitmix64",
    "trace",
]
