"""Deterministic fault injection and recovery for the MPC simulator.

The MPC model of the tutorial assumes ``p`` perfectly reliable
synchronous servers. Real shared-nothing clusters are not so polite:
servers crash mid-round, straggle on skewed partitions, and networks
drop or duplicate messages. This module stress-tests the simulator's
load/round guarantees under exactly those regimes while keeping every
run *reproducible*: a :class:`FaultPlan` is pure data, derived from a
seed, and the same plan injected into the same execution produces the
same faults, the same recovery actions, and the same
:class:`FaultStats` — with the columnar kernels on or off.

Fault model
-----------

Faults strike at the boundaries the simulator mediates:

- **crash** (:class:`CrashFault`) — server ``s`` fails at the barrier of
  round ``k`` (ordinals count every opened round, charged and free).
  Its volatile state is wiped; with recovery enabled it is restored from
  the latest barrier-entry checkpoint, logged deliveries are replayed,
  and the crashed round is re-executed from the senders' outboxes
  (speculative re-execution: the round's inputs are still buffered at
  the barrier).
- **straggler** (:class:`StragglerFault`) — server ``s`` is slow in
  round ``k``, modeled as extra per-server cost units recorded in the
  fault counters. Stragglers never change delivered data: a
  straggler-only plan leaves outputs byte-identical.
- **channel faults** (:class:`ChannelFault`) — the first ``count``
  messages buffered on a channel (destination server, fragment) in round
  ``k`` are dropped or duplicated in transit. With recovery the channel
  layer detects the loss (sequence numbers in a real system) and
  retransmits / de-duplicates at the same barrier; without recovery the
  corruption goes through and is tallied as ``unrecovered``.
- **scatter crash** — a server fails during initial data placement,
  losing the fragments scattered to it; recovery replays the scatter
  log (the model's inputs are durable and can always be re-read).

Recovery
--------

:class:`RecoveryPolicy` combines two mechanisms:

- **checkpoint/replay** — at the entry of every
  ``checkpoint_interval``-th barrier each server's fragment store is
  checkpointed; deliveries (and mid-run scatters) since the checkpoint
  are logged so a crashed server can be rolled forward. With the
  default ``checkpoint_interval=1`` the checkpoint is taken at the very
  barrier the crash strikes, so recovery is *exact for every
  algorithm*. Larger intervals trade checkpoint cost for replay cost
  and are exact for scatter/shuffle pipelines; local (in-block)
  computation between checkpoints is outside the log and cannot be
  replayed — the simulator cannot re-run one server's share of
  arbitrary Python code.
- **speculative re-execution** — the crashed server's current round is
  re-delivered from the senders' still-buffered outboxes, so the round
  completes with the correct result at a measured extra load.

Because recovery completes *within* the barrier, the conservation
invariants of :mod:`repro.mpc.audit` hold verbatim after replay: a
recovered run audits exactly like a fault-free one. Recovery overhead is
surfaced separately in :class:`FaultStats` (crashes injected, rounds
replayed, recovery load) on :attr:`RunStats.faults
<repro.mpc.stats.RunStats.faults>` and in :func:`repro.mpc.trace.trace`.

Usage
-----

Per cluster, or ambiently for algorithms that build clusters internally
(mirroring :func:`repro.mpc.audit.audited`)::

    plan = FaultPlan.random(seed=7, p=8)
    cluster = Cluster(8, faults=plan)            # explicit

    with faulty(plan):
        run = parallel_hash_join(r, s, p=8)      # ambient
    print(run.stats.faults.summary())

``python -m repro selftest --faults`` drives every algorithm entry point
under randomized plans and asserts oracle-identical outputs.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterator

from repro.errors import FaultPlanError
from repro.mpc.server import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpc.cluster import Cluster, RoundContext

__all__ = [
    "ChannelFault",
    "CrashFault",
    "FaultController",
    "FaultPlan",
    "FaultStats",
    "RecoveryPolicy",
    "StragglerFault",
    "fault_plan_by_default",
    "faulty",
]


# ------------------------------------------------------------------ plan data


@dataclass(frozen=True)
class CrashFault:
    """Server ``server`` crashes at the barrier of round ``round``.

    ``server`` is mapped modulo the cluster's ``p`` at injection time so
    one plan applies to every cluster an algorithm builds (sub-clusters
    of SkewHC and the skew join are smaller than the top-level ``p``).
    """

    round: int
    server: int


@dataclass(frozen=True)
class StragglerFault:
    """Server ``server`` is slow in round ``round``: ``extra_units`` of
    additional cost, recorded in the fault counters (data unchanged)."""

    round: int
    server: int
    extra_units: int = 1


@dataclass(frozen=True)
class ChannelFault:
    """Drop or duplicate messages on one channel in one round.

    A channel is ``(destination server, fragment)``; ``fragment=None``
    targets every fragment buffered for the destination (applied in
    sorted fragment order, so injection is deterministic regardless of
    send order). The first ``count`` buffered tuples are affected.
    """

    round: int
    dest: int
    kind: str  # "drop" | "duplicate"
    fragment: str | None = None
    count: int = 1


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a faulty cluster repairs itself.

    ``checkpoint_interval`` — barrier-entry state checkpoints are taken
    every this-many rounds (1 = every barrier, exact recovery for every
    algorithm; larger intervals are exact for scatter/shuffle pipelines
    and cheaper to maintain). ``enabled=False`` injects the faults but
    performs no repair — corruption is tallied as ``unrecovered``.
    """

    enabled: bool = True
    checkpoint_interval: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise FaultPlanError("checkpoint_interval must be at least 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults (pure data, seed-reproducible).

    Round numbers are *ordinals*: the n-th round a cluster opens
    (charged or free) has ordinal n-1. Faults scheduled at ordinals a
    run never reaches are silently unused, so one plan can be applied to
    algorithms with different round structures.
    """

    crashes: tuple[CrashFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    channel_faults: tuple[ChannelFault, ...] = ()
    scatter_crashes: tuple[int, ...] = ()
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    seed: int | None = None  # provenance when built by :meth:`random`

    def __post_init__(self) -> None:
        for crash in self.crashes:
            if crash.round < 0:
                raise FaultPlanError(f"crash round {crash.round} is negative")
        for straggler in self.stragglers:
            if straggler.round < 0:
                raise FaultPlanError("straggler round is negative")
            if straggler.extra_units < 0:
                raise FaultPlanError("straggler extra_units is negative")
        for fault in self.channel_faults:
            if fault.round < 0:
                raise FaultPlanError("channel fault round is negative")
            if fault.kind not in ("drop", "duplicate"):
                raise FaultPlanError(
                    f"channel fault kind must be 'drop' or 'duplicate', "
                    f"got {fault.kind!r}"
                )
            if fault.count < 1:
                raise FaultPlanError("channel fault count must be at least 1")

    @property
    def empty(self) -> bool:
        """True when the plan schedules no fault at all."""
        return not (
            self.crashes or self.stragglers or self.channel_faults
            or self.scatter_crashes
        )

    @classmethod
    def random(
        cls,
        seed: int,
        p: int,
        rounds: int = 4,
        crash_rate: float = 0.06,
        straggler_rate: float = 0.12,
        drop_rate: float = 0.06,
        duplicate_rate: float = 0.04,
        scatter_crash_rate: float = 0.05,
        max_extra_units: int = 16,
        max_count: int = 3,
        recovery: RecoveryPolicy | None = None,
    ) -> "FaultPlan":
        """A reproducible randomized plan over ``rounds`` × ``p`` slots.

        Every (round, server) slot independently draws each fault kind
        at its rate; the same ``(seed, p, rates)`` always produce the
        same plan. Rates are per-slot probabilities in ``[0, 1]``.
        """
        if p <= 0:
            raise FaultPlanError("a fault plan needs a positive p")
        rng = random.Random(seed)
        crashes: list[CrashFault] = []
        stragglers: list[StragglerFault] = []
        channel_faults: list[ChannelFault] = []
        for rnd in range(rounds):
            for server in range(p):
                if rng.random() < crash_rate:
                    crashes.append(CrashFault(rnd, server))
                if rng.random() < straggler_rate:
                    stragglers.append(
                        StragglerFault(rnd, server, rng.randrange(1, max_extra_units + 1))
                    )
                if rng.random() < drop_rate:
                    channel_faults.append(
                        ChannelFault(rnd, server, "drop",
                                     count=rng.randrange(1, max_count + 1))
                    )
                if rng.random() < duplicate_rate:
                    channel_faults.append(
                        ChannelFault(rnd, server, "duplicate",
                                     count=rng.randrange(1, max_count + 1))
                    )
        scatter_crashes = tuple(
            server for server in range(p) if rng.random() < scatter_crash_rate
        )
        return cls(
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            channel_faults=tuple(channel_faults),
            scatter_crashes=scatter_crashes,
            recovery=RecoveryPolicy() if recovery is None else recovery,
            seed=seed,
        )


# ------------------------------------------------------------ ambient default

_default_plan: FaultPlan | None = None


def fault_plan_by_default() -> FaultPlan | None:
    """The plan clusters created right now inherit (see :func:`faulty`)."""
    return _default_plan


@contextmanager
def faulty(plan: FaultPlan | None) -> Iterator[None]:
    """Inject ``plan`` into every :class:`Cluster` created in the block.

    Algorithms build their clusters internally, so this mirrors
    :func:`repro.mpc.audit.audited`: it is the way to run an existing
    entry point end-to-end under a fault schedule without threading a
    parameter through every call. ``faulty(None)`` disables injection
    inside the block. Nests and restores the previous plan on exit.
    """
    global _default_plan
    previous = _default_plan
    _default_plan = plan
    try:
        yield
    finally:
        _default_plan = previous


# ------------------------------------------------------------------- counters


@dataclass
class FaultStats:
    """Counters of injected faults and the recovery work they caused."""

    crashes: int = 0
    scatter_crashes: int = 0
    straggler_events: int = 0
    straggler_units: int = 0
    dropped: int = 0
    duplicated: int = 0
    retransmitted: int = 0
    deduplicated: int = 0
    checkpoints_taken: int = 0
    checkpoint_restores: int = 0
    rounds_replayed: int = 0
    recovery_load: int = 0
    unrecovered: int = 0
    # Fault events per owning exec-backend worker (the worker whose
    # contiguous server range contains the struck server) — shows where
    # in the pool the faults and their recovery work landed. Inline runs
    # attribute everything to worker 0; totals are backend-independent.
    by_worker: dict[int, int] = field(default_factory=dict)

    @property
    def injected(self) -> int:
        """Total fault events injected (crashes, stragglers, channel)."""
        return (
            self.crashes + self.scatter_crashes + self.straggler_events
            + self.dropped + self.duplicated
        )

    @property
    def clean(self) -> bool:
        """True when every injected fault was fully recovered."""
        return self.unrecovered == 0

    def summary(self) -> str:
        """One-line human-readable fault/recovery summary."""
        text = (
            f"faults: {self.crashes + self.scatter_crashes} crashes, "
            f"{self.straggler_events} stragglers (+{self.straggler_units}u), "
            f"{self.dropped} dropped, {self.duplicated} duplicated; "
            f"recovery: {self.rounds_replayed} rounds replayed, "
            f"load {self.recovery_load}"
        )
        if self.unrecovered:
            text += f", UNRECOVERED {self.unrecovered}"
        return text

    @classmethod
    def merged(cls, reports: Iterable["FaultStats"]) -> "FaultStats | None":
        """Field-wise sum of several reports; ``None`` if none given."""
        merged: FaultStats | None = None
        for report in reports:
            if merged is None:
                merged = cls()
            for spec in fields(cls):
                value = getattr(report, spec.name)
                if isinstance(value, dict):
                    target = getattr(merged, spec.name)
                    for key, count in value.items():
                        target[key] = target.get(key, 0) + count
                else:
                    setattr(
                        merged, spec.name, getattr(merged, spec.name) + value
                    )
        return merged


# ----------------------------------------------------------------- controller


class FaultController:
    """Applies a :class:`FaultPlan` to one cluster's lifecycle.

    Attached by ``Cluster(p, faults=plan)``; the cluster calls
    :meth:`on_scatter_chunk` during data placement and
    :meth:`before_delivery` / :meth:`after_delivery` at each barrier
    (after the load-cap check, before the audit snapshot — so recovery
    completes before the auditor looks, and a recovered round satisfies
    every conservation invariant).
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.stats = FaultStats()
        self._last_crash_round = max((c.round for c in plan.crashes), default=-1)
        self._keep_log = (
            plan.recovery.enabled and plan.recovery.checkpoint_interval > 1
        )
        # Barrier-entry checkpoints: server id -> {fragment: rows copy}.
        self._checkpoints: dict[int, dict[str, list[Row]]] = {}
        self._checkpoint_round = -1
        # Chronological event log since the last checkpoint refresh:
        # ("deliver", ordinal, sid, fragment, rows) and
        # ("scatter", sid, fragment, rows), in the order they happened.
        self._log: list[tuple] = []
        # Scatter log for scatter-crash replay: sid -> [(fragment, rows)].
        self._scatter_log: dict[int, list[tuple[str, Sequence[Row]]]] = {}
        self._scatter_fired: set[int] = set()
        self._scatter_targets = {s % cluster.p for s in plan.scatter_crashes}

    def _route_to_worker(self, sid: int) -> None:
        """Attribute a fault event on ``sid`` to its owning exec worker.

        The struck server's recovery output feeds the payload chunk of
        exactly one worker (the cluster's contiguous range assignment),
        so the tally shows where in the pool the fault's work landed.
        """
        worker = self.cluster.owning_worker(sid)
        self.stats.by_worker[worker] = self.stats.by_worker.get(worker, 0) + 1

    # ----------------------------------------------------------- scatter path

    def on_scatter_chunk(self, sid: int, fragment: str, rows: Sequence[Row]) -> None:
        """Record one placed chunk; fire a scheduled scatter crash."""
        if self._scatter_targets:
            self._scatter_log.setdefault(sid, []).append((fragment, rows))
        if self._keep_log:
            self._log.append(("scatter", sid, fragment, rows))
        if sid in self._scatter_targets and sid not in self._scatter_fired:
            self._scatter_fired.add(sid)
            self._crash_during_scatter(sid)

    def _crash_during_scatter(self, sid: int) -> None:
        """Lose the fragments scattered to ``sid`` so far; maybe replay."""
        server = self.cluster.servers[sid]
        scattered = self._scatter_log.get(sid, [])
        names = {fragment for fragment, _ in scattered}
        lost = 0
        for name in names:
            lost += len(server.storage.pop(name, ()))
            server.column_cache.pop(name, None)
        self.stats.scatter_crashes += 1
        self._route_to_worker(sid)
        if not self.plan.recovery.enabled:
            self.stats.unrecovered += lost
            return
        # Inputs are durable: replay every logged chunk in placement order.
        for fragment, rows in scattered:
            server.fragment(fragment).extend(rows)
            self.stats.recovery_load += len(rows)

    # ----------------------------------------------------------- barrier path

    def before_delivery(self, rnd: "RoundContext", ordinal: int) -> None:
        """Refresh checkpoints, then inject this round's faults."""
        self._maybe_checkpoint(ordinal)
        for fault in self.plan.channel_faults:
            if fault.round == ordinal:
                self._apply_channel_fault(rnd, fault)
        for straggler in self.plan.stragglers:
            if straggler.round == ordinal:
                self.stats.straggler_events += 1
                self.stats.straggler_units += straggler.extra_units
                self._route_to_worker(straggler.server % self.cluster.p)
        for crash in self.plan.crashes:
            if crash.round == ordinal:
                self._crash(rnd, ordinal, crash.server % self.cluster.p)

    def after_delivery(self, rnd: "RoundContext", ordinal: int) -> None:
        """Log the round's deliveries for checkpoint-gap replay."""
        if not self._keep_log or ordinal > self._last_crash_round:
            return
        for sid, fragments in enumerate(rnd._buffers):
            for fragment, rows in fragments.items():
                if rows:
                    self._log.append(("deliver", ordinal, sid, fragment, list(rows)))

    # ------------------------------------------------------------- internals

    def _maybe_checkpoint(self, ordinal: int) -> None:
        """Barrier-entry checkpoint refresh (skipped once no crash remains)."""
        if not self.plan.recovery.enabled or ordinal > self._last_crash_round:
            return
        if ordinal % self.plan.recovery.checkpoint_interval != 0:
            return
        self._checkpoints = {
            server.sid: {name: list(rows) for name, rows in server.storage.items()}
            for server in self.cluster.servers
        }
        self._checkpoint_round = ordinal
        self._log.clear()
        self.stats.checkpoints_taken += 1

    def _apply_channel_fault(self, rnd: "RoundContext", fault: ChannelFault) -> None:
        dest = fault.dest % self.cluster.p
        buffers = rnd._buffers[dest]
        if fault.fragment is None:
            fragments = sorted(buffers)
        else:
            fragments = [fault.fragment] if fault.fragment in buffers else []
        recovered = self.plan.recovery.enabled
        for fragment in fragments:
            rows = buffers[fragment]
            affected = min(fault.count, len(rows))
            if not affected:
                continue
            self._route_to_worker(dest)
            if fault.kind == "drop":
                self.stats.dropped += affected
                if recovered:
                    # Detected and retransmitted within the barrier: the
                    # buffer is already correct, only the overhead counts.
                    self.stats.retransmitted += affected
                    self.stats.recovery_load += affected
                else:
                    del rows[:affected]
                    rnd._column_buffers[dest].pop(fragment, None)
                    self.stats.unrecovered += affected
            else:  # duplicate
                self.stats.duplicated += affected
                if recovered:
                    self.stats.deduplicated += affected
                else:
                    rows.extend(rows[:affected])
                    rnd._column_buffers[dest].pop(fragment, None)
                    self.stats.unrecovered += affected

    def _crash(self, rnd: "RoundContext", ordinal: int, sid: int) -> None:
        """Wipe ``sid`` at the barrier; restore, roll forward, re-execute."""
        server = self.cluster.servers[sid]
        lost = server.local_size()
        server.storage.clear()
        server.column_cache.clear()
        self.stats.crashes += 1
        self._route_to_worker(sid)
        if not self.plan.recovery.enabled:
            # The server restarts empty; its round-k messages died with it.
            incoming = sum(len(rows) for rows in rnd._buffers[sid].values())
            for fragment in list(rnd._buffers[sid]):
                rnd._buffers[sid][fragment] = []
            rnd._column_buffers[sid].clear()
            self.stats.unrecovered += lost + incoming
            return
        # 1. Restore the latest barrier-entry checkpoint.
        snapshot = self._checkpoints.get(sid, {})
        restored = 0
        for fragment, rows in snapshot.items():
            server.storage[fragment] = list(rows)
            restored += len(rows)
        self.stats.checkpoint_restores += 1
        self.stats.recovery_load += restored
        # 2. Roll forward: replay logged deliveries/scatters since the
        #    checkpoint, in chronological order.
        replayed_rounds: set[int] = set()
        for event in self._log:
            if event[0] == "deliver":
                _, event_ordinal, event_sid, fragment, rows = event
                if event_sid != sid or event_ordinal >= ordinal:
                    continue
                server.fragment(fragment).extend(rows)
                self.stats.recovery_load += len(rows)
                replayed_rounds.add(event_ordinal)
            else:
                _, event_sid, fragment, rows = event
                if event_sid != sid:
                    continue
                server.fragment(fragment).extend(rows)
                self.stats.recovery_load += len(rows)
        # 3. Speculatively re-execute the crashed round: its inputs are
        #    still buffered at the barrier, so the ordinary delivery that
        #    follows completes the round; only the overhead is charged.
        incoming = sum(len(rows) for rows in rnd._buffers[sid].values())
        self.stats.recovery_load += incoming
        self.stats.rounds_replayed += len(replayed_rounds) + 1
