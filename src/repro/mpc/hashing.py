"""Seeded, deterministic hash-function families.

The HyperCube algorithm needs *k independent* hash functions, one per
query variable; the parallel hash join needs one. Python's built-in
``hash`` is salted per process for strings, so we provide a stable family
based on splitmix64 (for integers and tuples of integers) with a blake2b
fallback for arbitrary hashable values. All functions are deterministic
given ``(seed, index)``.

The integer paths — scalar and all-integer tuple — are the *hash spec*
shared with the vectorized kernels of :mod:`repro.kernels.hashing`: the
numpy implementation must reproduce them bit for bit so the columnar
fast path partitions data identically to this tuple-at-a-time code
(``REPRO_KERNELS=off`` must not change any destination).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

_MASK64 = (1 << 64) - 1

# Mixed into the accumulator seed of the tuple chain so that the hash of
# the 1-tuple ``(v,)`` differs from the hash of the bare integer ``v``.
_TUPLE_TAG = 0xA5B35705A3C9B6D1


def splitmix64(x: int) -> int:
    """One step of the splitmix64 mixer — a fast, high-quality 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def hash_int_tuple(values: tuple[int, ...], salt: int) -> int:
    """The tuple chain: fold splitmix64 over all-integer key tuples.

    This order-sensitive chain is the canonical spec for hashed composite
    join keys; :func:`repro.kernels.hashing.hash_tuple_columns` is its
    vectorized twin (one splitmix64 pass per key column).
    """
    acc = splitmix64((salt ^ _TUPLE_TAG ^ len(values)) & _MASK64)
    for v in values:
        acc = splitmix64((v & _MASK64) ^ acc)
    return acc


def _as_int(value: Any) -> int | None:
    """The value as a plain int when it hashes on the integer path."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    return None


def _hash_value(value: Any, salt: int) -> int:
    """64-bit hash of one value under a salt; int shapes take fast paths."""
    as_int = _as_int(value)
    if as_int is not None:
        return splitmix64((as_int & _MASK64) ^ splitmix64(salt))
    if isinstance(value, tuple):
        ints = []
        for element in value:
            element_int = _as_int(element)
            if element_int is None:
                break
            ints.append(element_int)
        else:
            return hash_int_tuple(tuple(ints), salt)
    data = repr(value).encode() + struct.pack("<Q", salt)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


class HashFunction:
    """One member of a family: maps any hashable value to ``[0, buckets)``."""

    __slots__ = ("buckets", "_salt")

    def __init__(self, buckets: int, salt: int) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.buckets = buckets
        self._salt = salt

    @property
    def salt(self) -> int:
        """The 64-bit salt (the vectorized kernels reuse it verbatim)."""
        return self._salt

    def __call__(self, value: Any) -> int:
        return _hash_value(value, self._salt) % self.buckets


class HashFamily:
    """A seeded family of independent hash functions.

    >>> fam = HashFamily(seed=7)
    >>> h = fam.function(index=0, buckets=10)
    >>> 0 <= h(12345) < 10
    True

    Functions with different ``index`` behave as independent hashes, which
    is what the HyperCube analysis assumes for distinct variables.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # The salt is splitmix64(seed-hash ^ (index + 1)) over 64-bit words,
    # so index -1 would alias seed-only hashing and index 2^64 - 1 would
    # alias index -1 (and generally i aliases i + 2^64). Independence
    # across indices only holds inside this window, so anything outside
    # it is rejected instead of silently colliding.
    _MAX_INDEX = _MASK64 - 1

    def function(self, index: int, buckets: int) -> HashFunction:
        """The ``index``-th function of the family, with ``buckets`` targets.

        ``index`` must lie in ``[0, 2**64 - 2]``: values outside that
        range would alias another index's salt (see above) and break the
        independence assumption the HyperCube analysis rests on.
        """
        if not 0 <= index <= self._MAX_INDEX:
            raise ValueError(
                f"hash-function index must be in [0, 2**64 - 2], got {index}"
            )
        salt = splitmix64(splitmix64(self.seed) ^ (index + 1))
        return HashFunction(buckets, salt)
