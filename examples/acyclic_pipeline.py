"""Yannakakis and GYM on the slide-64 acyclic query.

Evaluates the 5-relation acyclic query of slides 64–77 serially
(Yannakakis, O(IN+OUT)) and distributed (GYM vanilla vs optimized),
showing the semijoin reduction and the round counts of slides 80–94.

Run:  python examples/acyclic_pipeline.py
"""

from repro.data import uniform_relation
from repro.multiway import gym, yannakakis
from repro.query import Atom, ConjunctiveQuery


def slide64_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [
            Atom("R1", ["A0", "A1"]),
            Atom("R2", ["A0", "A2"]),
            Atom("R3", ["A1", "A3"]),
            Atom("R4", ["A2", "A4"]),
            Atom("R5", ["A2", "A5"]),
        ]
    )


def main() -> None:
    q = slide64_query()
    relations = {
        name: uniform_relation(name, list(q.atom(name).variables), 2000, 500, seed=i)
        for i, name in enumerate(["R1", "R2", "R3", "R4", "R5"])
    }
    in_size = sum(len(r) for r in relations.values())
    print(f"Query: {q}")
    print(f"IN = {in_size} tuples across {len(relations)} relations")
    print()

    serial = yannakakis(q, relations)
    print("Serial Yannakakis:")
    print(f"  OUT                 : {len(serial.output)}")
    print(f"  semijoin operations : {serial.semijoin_operations}")
    print(f"  join operations     : {serial.join_operations}")
    print(
        f"  max intermediate    : {serial.max_intermediate} "
        f"(≤ OUT = {len(serial.output)}, slide 77)"
    )
    print()

    p = 16
    for variant in ("vanilla", "optimized"):
        run = gym(q, relations, p=p, variant=variant)
        agree = sorted(run.output.rows()) == sorted(serial.output.rows())
        print(
            f"GYM {variant:<10} p={p}: rounds={run.rounds:<3} L={run.load:<7} "
            f"C={run.stats.total_communication:<8} correct={agree}"
        )
    print("\n(optimized GYM packs each tree level into one round — slides 90–94)")


if __name__ == "__main__":
    main()
