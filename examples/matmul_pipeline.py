"""Matrix multiplication three ways on the MPC simulator (slides 107–122).

Multiplies the same pair of matrices with:

- the SQL view (join on j + group-by (i,k)) — 2 rounds, n³ partials;
- the rectangle-block one-round algorithm — C = O(n⁴/L);
- the square-block multi-round algorithm — C = O(n³/√L).

All three produce the same product; the cost table shows the
round/communication trade-off of slide 126.

Run:  python examples/matmul_pipeline.py
"""

import numpy as np

from repro.matmul import rectangle_block_matmul, sql_matmul, square_block_matmul


def main() -> None:
    n = 24
    rng = np.random.default_rng(3)
    a = rng.random((n, n))
    b = rng.random((n, n))
    truth = a @ b

    print(f"C = A·B for n = {n} (loads count matrix elements)\n")
    rows = []

    c, stats = sql_matmul(a, b, p=16)
    rows.append(("SQL join+aggregate", stats, np.allclose(c, truth)))

    c, stats = rectangle_block_matmul(a, b, groups=4)
    rows.append(("rectangle-block 1-round", stats, np.allclose(c, truth)))

    c, stats = square_block_matmul(a, b, p=16, block_size=6)
    rows.append(("square-block multi-round", stats, np.allclose(c, truth)))

    print(f"  {'algorithm':<26} {'r':>3} {'L':>8} {'C':>10}  correct")
    for name, stats, ok in rows:
        print(
            f"  {name:<26} {stats.num_rounds:>3} {stats.max_load:>8} "
            f"{stats.total_communication:>10}  {ok}"
        )

    print("\ntheory (slide 126): one-round C = Θ(n⁴/L); multi-round C = Θ(n³/√L)")
    print(f"  n³ = {n**3},  n⁴ = {n**4}")


if __name__ == "__main__":
    main()
