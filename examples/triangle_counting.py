"""Triangle counting three ways: HyperCube vs binary plan vs HL+semijoin.

The tutorial's central multiway example (slides 34–59). On a random
graph all three algorithms return the same triangles; their costs differ:

- HyperCube: 1 round, load ~ N/p^(2/3);
- iterative binary plan: 2 rounds, intermediate R ⋈ S can dwarf IN;
- heavy-light + semijoin: 2 rounds, worst-case optimal even under skew.

Run:  python examples/triangle_counting.py
"""

from repro.data import count_triangles, power_law_edges, random_edges, triangle_relations
from repro.multiway import binary_join_plan, triangle_hl_semijoin, triangle_hypercube
from repro.query import triangle_query


def report(name: str, run, truth: int) -> None:
    ok = "ok" if len(run.output) == truth else "MISMATCH"
    print(
        f"  {name:<22} rounds={run.rounds:<3} L={run.load:<8} "
        f"C={run.stats.total_communication:<9} triangles={len(run.output)} [{ok}]"
    )


def main() -> None:
    p = 27
    for label, edges in [
        ("uniform graph", random_edges(3000, 400, seed=1)),
        ("power-law graph", power_law_edges(3000, 400, s=1.4, seed=2)),
    ]:
        truth = count_triangles(edges)
        r, s, t = triangle_relations(edges)
        print(f"{label}: {len(edges)} edges, {truth} closed triples, p={p}")

        report("HyperCube (1 round)", triangle_hypercube(r, s, t, p=p), truth)
        report(
            "binary plan",
            binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=p),
            truth,
        )
        report("HL + semijoin", triangle_hl_semijoin(r, s, t, p=p), truth)

        n = len(edges)
        print(f"  theory: one-round optimum N/p^(2/3) = {n / p ** (2 / 3):.0f}")
        print()


if __name__ == "__main__":
    main()
