"""Quickstart: a parallel hash join on the MPC simulator.

Builds two relations, joins them on an 8-server simulated cluster, and
compares the measured maximum load with the model's ideal IN/p.

Run:  python examples/quickstart.py
"""

from repro.data import uniform_relation
from repro.joins import parallel_hash_join


def main() -> None:
    p = 8
    r = uniform_relation("R", ["x", "y"], n=4000, universe=1000, seed=1)
    s = uniform_relation("S", ["y", "z"], n=4000, universe=1000, seed=2)
    in_size = len(r) + len(s)

    run = parallel_hash_join(r, s, p=p)

    print("Parallel hash join  R(x,y) ⋈ S(y,z)")
    print(f"  servers (p)          : {p}")
    print(f"  input tuples (IN)    : {in_size}")
    print(f"  output tuples (OUT)  : {len(run.output)}")
    print(f"  rounds (r)           : {run.rounds}")
    print(f"  max load (L)         : {run.load}")
    print(f"  ideal load IN/p      : {in_size / p:.0f}")
    print(f"  load / ideal         : {run.load / (in_size / p):.2f}x")
    print(f"  total communication  : {run.stats.total_communication}")

    sample = sorted(run.output.rows())[:5]
    print(f"  first output tuples  : {sample}")


if __name__ == "__main__":
    main()
