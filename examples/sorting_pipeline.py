"""Parallel sorting: PSRS vs the multi-round algorithm (slides 99–106).

Sorts the same keys two ways and shows the regimes: PSRS is optimal
while p ≪ N^(1/3) (one splitter exchange, one partition); when the
per-round load must shrink below that, the round count grows as
Θ(log_L N) — and no number of extra servers helps (slide 105).

Run:  python examples/sorting_pipeline.py
"""

import numpy as np

from repro.sorting import multiround_sort, psrs_sort
from repro.theory import sort_rounds_lower_bound


def main() -> None:
    n = 16384
    rng = np.random.default_rng(4)
    items = rng.integers(0, 10**9, size=n).tolist()
    print(f"Sorting N = {n} random keys\n")

    print("PSRS (coarse-grained parallelism, p << N^(1/3)):")
    print(f"  {'p':>4} {'partition L':>12} {'N/p':>8} {'sample L':>9} {'rounds':>7}")
    for p in (4, 8, 16):
        out, stats = psrs_sort(items, p=p)
        assert out == sorted(items)
        print(
            f"  {p:>4} {stats.load_of('psrs-partition'):>12} {n // p:>8} "
            f"{stats.load_of('psrs-sample-gather'):>9} {stats.num_rounds:>7}"
        )

    print("\nMulti-round sort (fine-grained: load capped, p = N/L):")
    print(f"  {'L cap':>6} {'p':>5} {'rounds':>7} {'lower bound':>12}")
    for load_cap in (32, 128, 512):
        p = max(4, n // (load_cap * 4))
        out, stats = multiround_sort(items, p=p, load_cap=load_cap)
        assert out == sorted(items)
        lb = sort_rounds_lower_bound(n, load_cap)
        print(f"  {load_cap:>6} {p:>5} {stats.num_rounds:>7} {lb:>12.2f}")

    print("\n(slide 105: rounds = Ω(log_L N), independent of the server count)")


if __name__ == "__main__":
    main()
