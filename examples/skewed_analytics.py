"""A skewed orders/customers join: naive hashing vs skew-aware algorithms.

Models the motivating analytics workload (slide 52): an Orders fact
table joined with Customers on a Zipf-skewed customer key. A handful of
"whale" customers hold a large share of the orders, so the plain
parallel hash join overloads whichever servers draw the whales; the
skew-aware join and the sort join keep the optimal
L = O(√(OUT/p) + IN/p).

Run:  python examples/skewed_analytics.py
"""

from repro.data import Relation, skewed_relation
from repro.joins import parallel_hash_join, skew_join, sort_join


def build_workload(n_orders: int, n_customers: int, skew: float):
    orders = skewed_relation(
        "Orders",
        ["order_id", "cust"],
        n_orders,
        key_attribute="cust",
        universe=n_customers,
        s=skew,
        seed=11,
    )
    customers = Relation(
        "Customers",
        ["cust", "segment"],
        [(c, c % 7) for c in range(n_customers)],
    )
    return orders, customers


def main() -> None:
    p = 16
    orders, customers = build_workload(n_orders=12_000, n_customers=2_000, skew=1.3)
    in_size = len(orders) + len(customers)

    top = orders.degrees("cust").most_common(3)
    print(f"Orders ⋈ Customers on `cust`, p={p}, IN={in_size}")
    print(f"  heaviest customers (key, #orders): {top}")
    print(f"  ideal load IN/p = {in_size / p:.0f}")
    print()

    runs = {
        "parallel hash join": parallel_hash_join(orders, customers, p=p),
        "skew-aware join": skew_join(orders, customers, p=p),
        "parallel sort join": sort_join(orders, customers, p=p),
    }
    reference = sorted(runs["parallel hash join"].output.rows())
    for name, run in runs.items():
        agree = sorted(run.output.rows()) == reference
        print(
            f"  {name:<20} rounds={run.rounds:<3} L={run.load:<7} "
            f"OUT={len(run.output)}  correct={agree}"
        )

    hash_load = runs["parallel hash join"].load
    best = min(run.load for name, run in runs.items() if name != "parallel hash join")
    print(f"\n  skew-aware improvement over naive hashing: {hash_load / best:.1f}x")


if __name__ == "__main__":
    main()
