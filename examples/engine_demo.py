"""The Engine facade: register relations, write datalog, get plans.

Shows the end-to-end path a downstream user takes: load data (CSV or
generators), register it, run conjunctive queries written in the
tutorial's own notation, and inspect which algorithm the planner chose
and what it cost.

Run:  python examples/engine_demo.py
"""

import tempfile
from pathlib import Path

from repro import Engine
from repro.data import (
    random_edges,
    read_csv,
    single_value_relation,
    triangle_relations,
    uniform_relation,
    write_csv,
)


def main() -> None:
    engine = Engine(p=16)

    # Relations from generators…
    engine.register(uniform_relation("Orders", ["oid", "cust"], 3000, 500, seed=1))
    # …from CSV round-trips…
    customers = uniform_relation("Customers", ["cust", "region"], 500, 500, seed=2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "customers.csv"
        write_csv(customers, path)
        engine.register(read_csv(path, name="Customers"))
    # …and from graph workloads.
    r, s, t = triangle_relations(random_edges(2000, 300, seed=3))
    for rel in (r, s, t):
        engine.register(rel)
    engine.register(single_value_relation("Hot", ["k", "v"], 400, "v"))
    engine.register(single_value_relation("Cold", ["v", "w"], 400, "v"))

    queries = [
        "Orders(oid, cust), Customers(cust, region)",
        "Δ(x,y,z) :- R(x,y), S(y,z), T(z,x)",
        "Hot(k, v), Cold(v, w)",
    ]
    for text in queries:
        result = engine.query(text)
        print(f"query : {text}")
        print(f"  plan : {result.plan.describe()}")
        print(
            f"  cost : r={result.rounds} L={result.load} "
            f"C={result.stats.total_communication}"
        )
        print(f"  out  : {len(result.output)} tuples\n")


if __name__ == "__main__":
    main()
