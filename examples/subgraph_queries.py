"""Subgraph queries with one-round HyperCube joins (slides 34–51, 97).

Counts directed triangles and 4-cycles in the same graph, exercising the
generic conjunctive-query machinery: the LPs compute each query's τ*, the
share optimizer picks the grid, and the planner switches to SkewHC when
hubs appear.

Run:  python examples/subgraph_queries.py
"""

from repro.data import power_law_edges, random_edges
from repro.planner import plan_multiway_join
from repro.multiway import hypercube_join, skewhc_join
from repro.query import cycle_query, tau_star, triangle_query


def bind_cycle(edges, n):
    """Bind one edge relation to every atom of the n-cycle query."""
    q = cycle_query(n)
    u, v = edges.schema.attributes
    rels = {}
    for atom in q.atoms:
        rels[atom.name] = edges.rename(
            {u: atom.variables[0], v: atom.variables[1]}, name=atom.name
        )
    return q, rels


def main() -> None:
    p = 16
    for label, edges in [
        ("uniform graph", random_edges(2000, 300, seed=1)),
        ("power-law graph", power_law_edges(2000, 300, s=1.4, seed=2)),
    ]:
        print(f"{label}: {len(edges)} edges, p={p}")
        for cycle_len in (3, 4):
            q, rels = bind_cycle(edges, cycle_len)
            tau = tau_star(q)
            plan = plan_multiway_join(q, rels, p=p)
            if plan.algorithm == "skewhc":
                run = skewhc_join(q, rels, p=p)
            else:
                run = hypercube_join(q, rels, p=p)
            expected = q.evaluate(rels)
            name = "triangles" if cycle_len == 3 else "4-cycles"
            ok = "ok" if len(run.output) == len(expected) else "MISMATCH"
            print(
                f"  {name:<10} τ*={tau:.1f}  plan={plan.algorithm:<9} "
                f"L={run.load:<7} count={len(run.output)} [{ok}]"
            )
        print()


if __name__ == "__main__":
    main()
