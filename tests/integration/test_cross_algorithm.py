"""Integration: every algorithm family agrees on randomized workloads.

These tests are the repository's strongest correctness net: for the same
randomized input, all implementations of a problem must produce exactly
the same (multi)set of results as the sequential reference.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import skewed_relation, uniform_relation
from repro.data.graphs import count_triangles, power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.joins import broadcast_join, parallel_hash_join, skew_join, sort_join
from repro.multiway import (
    binary_join_plan,
    gym,
    hypercube_join,
    skewhc_join,
    triangle_hl_semijoin,
    triangle_hypercube,
    yannakakis,
)
from repro.query.cq import path_query, star_query, triangle_query

pytestmark = pytest.mark.slow


class TestTwoWayAgreement:
    rows = st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40)

    @given(rows, rows, st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_all_two_way_joins_agree(self, r_rows, s_rows, p):
        r = Relation("R", ["x", "y"], r_rows)
        s = Relation("S", ["y", "z"], s_rows)
        reference = sorted(r.join(s).rows())
        for algorithm in (parallel_hash_join, broadcast_join, skew_join, sort_join):
            run = algorithm(r, s, p=p)
            assert sorted(run.output.rows()) == reference, algorithm.__name__

    def test_two_way_agreement_on_skewed_data(self):
        r = skewed_relation("R", ["x", "y"], 500, "y", universe=60, s=1.5, seed=1)
        s = skewed_relation("S", ["y", "z"], 500, "y", universe=60, s=1.5, seed=2)
        reference = sorted(r.join(s).rows())
        for algorithm in (parallel_hash_join, broadcast_join, skew_join, sort_join):
            assert sorted(algorithm(r, s, p=8).output.rows()) == reference


class TestTriangleAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_triangle_algorithms_agree(self, seed):
        edges = random_edges(250, 35, seed=seed)
        r, s, t = triangle_relations(edges)
        rels = {"R": r, "S": s, "T": t}
        q = triangle_query()
        reference = sorted(q.evaluate(rels).rows())
        assert len(reference) == count_triangles(edges)

        assert sorted(triangle_hypercube(r, s, t, p=8).output.rows()) == reference
        assert sorted(skewhc_join(q, rels, p=8).output.rows()) == reference
        assert sorted(binary_join_plan(q, rels, p=8).output.rows()) == reference
        assert sorted(triangle_hl_semijoin(r, s, t, p=8).output.rows()) == reference

    def test_agreement_on_power_law_graph(self):
        edges = power_law_edges(350, 90, s=1.5, seed=7)
        r, s, t = triangle_relations(edges)
        rels = {"R": r, "S": s, "T": t}
        q = triangle_query()
        reference = sorted(q.evaluate(rels).rows())
        assert sorted(triangle_hypercube(r, s, t, p=27).output.rows()) == reference
        assert sorted(skewhc_join(q, rels, p=27).output.rows()) == reference
        assert sorted(triangle_hl_semijoin(r, s, t, p=27).output.rows()) == reference


class TestAcyclicAgreement:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_path_yannakakis_gym_hypercube_binary(self, n):
        q = path_query(n)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 120, 40, seed=i)
            for i in range(1, n + 1)
        }
        reference = sorted(q.evaluate(rels).rows())
        assert sorted(yannakakis(q, rels).output.rows()) == reference
        assert sorted(gym(q, rels, p=8, variant="vanilla").output.rows()) == reference
        assert sorted(gym(q, rels, p=8, variant="optimized").output.rows()) == reference
        assert sorted(hypercube_join(q, rels, p=8).output.rows()) == reference
        assert sorted(binary_join_plan(q, rels, p=8).output.rows()) == reference

    def test_star_agreement(self):
        q = star_query(4)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 120, 50, seed=i)
            for i in range(1, 5)
        }
        reference = sorted(q.evaluate(rels).rows())
        assert sorted(yannakakis(q, rels).output.rows()) == reference
        assert sorted(gym(q, rels, p=8).output.rows()) == reference
        assert sorted(skewhc_join(q, rels, p=8).output.rows()) == reference


class TestSeedAndServerInvariance:
    """Results must not depend on hash seeds or the server count."""

    def test_hypercube_invariant_across_seeds(self):
        edges = random_edges(150, 25, seed=9)
        r, s, t = triangle_relations(edges)
        outs = [
            sorted(triangle_hypercube(r, s, t, p=8, seed=seed).output.rows())
            for seed in (0, 1, 42)
        ]
        assert outs[0] == outs[1] == outs[2]

    def test_hash_join_invariant_across_p(self):
        r = uniform_relation("R", ["x", "y"], 200, 50, seed=3)
        s = uniform_relation("S", ["y", "z"], 200, 50, seed=4)
        outs = [
            sorted(parallel_hash_join(r, s, p=p).output.rows()) for p in (1, 3, 8, 17)
        ]
        assert all(o == outs[0] for o in outs)

    def test_gym_invariant_across_p(self):
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 100, 30, seed=i)
            for i in range(1, 4)
        }
        outs = [sorted(gym(q, rels, p=p).output.rows()) for p in (2, 5, 16)]
        assert all(o == outs[0] for o in outs)
