"""Property tests over *random acyclic queries*.

Random join trees (each atom shares one variable with its parent) drive
Yannakakis, GYM and the reduce-then-HyperCube hybrid against the
sequential reference — a much broader net than the fixed path/star
shapes used elsewhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.multiway.gym import gym
from repro.multiway.reduced import reduced_hypercube
from repro.multiway.yannakakis import yannakakis
from repro.query.cq import Atom, ConjunctiveQuery
from repro.query.hypergraph import is_acyclic

pytestmark = pytest.mark.slow


@st.composite
def random_acyclic_instance(draw):
    """A random join tree of 2–5 binary atoms plus bound relations."""
    n_atoms = draw(st.integers(2, 5))
    atoms = [Atom("S0", ["v0", "v1"])]
    next_var = 2
    for i in range(1, n_atoms):
        parent = draw(st.integers(0, i - 1))
        shared = draw(st.sampled_from(atoms[parent].variables))
        fresh = f"v{next_var}"
        next_var += 1
        atoms.append(Atom(f"S{i}", [shared, fresh]))
    query = ConjunctiveQuery(atoms)

    relations = {}
    for atom in query.atoms:
        n_rows = draw(st.integers(0, 25))
        rows = draw(
            st.lists(
                st.tuples(st.integers(0, 6), st.integers(0, 6)),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        relations[atom.name] = Relation(atom.name, list(atom.variables), rows)
    return query, relations


class TestRandomAcyclicQueries:
    @given(random_acyclic_instance())
    @settings(max_examples=30, deadline=None)
    def test_construction_is_acyclic(self, instance):
        query, _ = instance
        assert is_acyclic(query)

    @given(random_acyclic_instance())
    @settings(max_examples=25, deadline=None)
    def test_yannakakis_matches_reference(self, instance):
        query, relations = instance
        reference = sorted(query.evaluate(relations).rows())
        result = yannakakis(query, relations)
        assert sorted(result.output.rows()) == reference
        # Full reduction: intermediates bounded by the output size.
        assert result.max_intermediate <= max(len(reference), 0) or not reference

    @given(random_acyclic_instance(), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_gym_matches_reference(self, instance, p):
        query, relations = instance
        reference = sorted(query.evaluate(relations).rows())
        run = gym(query, relations, p=p, variant="optimized")
        assert sorted(run.output.rows()) == reference

    @given(random_acyclic_instance(), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_reduced_hypercube_matches_reference(self, instance, p):
        query, relations = instance
        reference = sorted(query.evaluate(relations).rows())
        run = reduced_hypercube(query, relations, p=p)
        assert sorted(run.output.rows()) == reference
