"""Property tests on MPC-simulator invariants.

Conservation laws every algorithm must respect:

- tuples are neither created nor destroyed by a shuffle (the union of
  destination fragments equals the union of sources);
- the recorded total communication equals the number of sent units;
- loads are non-negative and RunStats aggregation is consistent;
- C ≤ p · r · L (the identity used throughout the matmul section).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.joins import parallel_hash_join, skew_join, sort_join
from repro.mpc.cluster import Cluster
from repro.multiway import triangle_hypercube
from repro.data.graphs import random_edges, triangle_relations

pytestmark = pytest.mark.slow


class TestShuffleConservation:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60),
        st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_shuffle_preserves_tuples(self, rows, p):
        cluster = Cluster(p)
        r = Relation("R", ["x", "y"], rows)
        cluster.scatter(r, "R")
        h = cluster.hash_function(0)
        with cluster.round("shuffle") as rnd:
            for server in cluster.servers:
                for row in server.take("R"):
                    rnd.send(h(row[0]), "R@j", row)
        assert sorted(cluster.gather("R@j")) == sorted(rows)
        assert cluster.stats.total_communication == len(rows)

    @given(st.integers(1, 10), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_broadcast_cost(self, p, n):
        cluster = Cluster(p)
        with cluster.round("b") as rnd:
            for i in range(n):
                rnd.broadcast("B", (i,))
        assert cluster.stats.total_communication == n * p
        assert all(len(s.get("B")) == n for s in cluster.servers)


class TestCostIdentities:
    def test_c_at_most_p_r_l(self):
        """C ≤ p·r·L for real runs (slide 107's cost identity)."""
        edges = random_edges(300, 50, seed=1)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=8)
        stats = run.stats
        assert (
            stats.total_communication
            <= stats.p * max(stats.num_rounds, 1) * stats.max_load
        )

    @pytest.mark.parametrize("algorithm", [parallel_hash_join, skew_join, sort_join])
    def test_join_costs_consistent(self, algorithm):
        r = uniform_relation("R", ["x", "y"], 300, 60, seed=5)
        s = uniform_relation("S", ["y", "z"], 300, 60, seed=6)
        run = algorithm(r, s, p=8)
        stats = run.stats
        assert stats.max_load >= 0
        assert stats.total_communication >= stats.max_load
        per_round_max = max((rd.max_load for rd in stats.rounds), default=0)
        assert per_round_max == stats.max_load

    def test_round_received_lengths_match_p(self):
        edges = random_edges(100, 30, seed=2)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=6)
        for rd in run.stats.rounds:
            assert len(rd.received) == 6


class TestHypercubeInvariants:
    def test_every_tuple_replicated_to_matching_servers_only(self):
        """Fragments on a server only hold tuples hashing to its coordinate."""
        from repro.mpc.topology import Grid
        from repro.query.cq import triangle_query
        from repro.query.shares import equal_size_shares

        edges = random_edges(120, 25, seed=3)
        r, s, t = triangle_relations(edges)
        p = 8
        cluster_seed = 0
        run = triangle_hypercube(r, s, t, p=p, seed=cluster_seed)
        shares = run.details["shares"]
        # Recompute the routing and confirm replication counts.
        grid_size = shares["x"] * shares["y"] * shares["z"]
        expected_repl = {
            "R": shares["z"],
            "S": shares["x"],
            "T": shares["y"],
        }
        total = run.stats.total_communication
        assert total == sum(
            len(rel) * expected_repl[name]
            for name, rel in (("R", r), ("S", s), ("T", t))
        )
        assert grid_size <= p
