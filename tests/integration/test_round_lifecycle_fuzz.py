"""Fuzz-style stress test of the round lifecycle and audit layer.

Runs randomized sequences of shuffles, broadcasts, free placements,
mid-round exceptions, and deliberate load-cap violations against one
long-lived audited cluster, asserting that the cluster survives every
failure mode with consistent accounting — the exception-safety guarantee
of :mod:`repro.mpc.cluster` under adversarial interleavings.
"""

import random

import numpy as np
import pytest

from repro.data.generators import skewed_relation, uniform_relation
from repro.errors import LoadExceededError
from repro.joins.broadcast_join import broadcast_join
from repro.joins.hash_join import parallel_hash_join
from repro.joins.skew_join import skew_join
from repro.joins.sort_join import sort_join
from repro.matmul.multi_round import square_block_matmul
from repro.matmul.sql import sql_matmul
from repro.mpc.audit import audited
from repro.mpc.cluster import Cluster
from repro.multiway.hypercube import triangle_hypercube
from repro.sorting.psrs import psrs_sort

pytestmark = [pytest.mark.fuzz, pytest.mark.slow]


class _Abort(Exception):
    """Deliberate mid-round failure injected by the fuzzer."""


def _fuzz_one_cluster(seed: int, steps: int = 60) -> None:
    rng = random.Random(seed)
    p = rng.randint(2, 6)
    cap = rng.randint(4, 8)
    c = Cluster(p, seed=seed, load_cap=cap, audit=True)

    delivered = 0
    aborted = 0
    rejected = 0
    for step in range(steps):
        action = rng.choice(["shuffle", "broadcast", "free", "abort", "overload"])
        label = f"{action}-{step}"
        if action == "shuffle":
            with c.round(label) as rnd:
                # Round-robin destinations keep each load under the cap.
                for i in range(rng.randint(0, (cap // 2) * p)):
                    rnd.send(i % p, "D", (step, i))
            delivered += 1
        elif action == "broadcast":
            with c.round(label) as rnd:
                for _ in range(rng.randint(1, max(1, cap // 2))):
                    rnd.broadcast("B", (step,))
            delivered += 1
        elif action == "free":
            with c.free_round(label) as rnd:
                for i in range(rng.randint(0, 3 * cap)):
                    rnd.send(i % p, "F", (step, i))
            delivered += 1
        elif action == "abort":
            with pytest.raises(_Abort):
                with c.round(label) as rnd:
                    rnd.send(rng.randrange(p), "X", (step,))
                    raise _Abort
            aborted += 1
        else:  # overload: guaranteed cap violation, rejected at the barrier
            victim = rng.randrange(p)
            with pytest.raises(LoadExceededError):
                with c.round(label) as rnd:
                    for i in range(cap + rng.randint(1, 3)):
                        rnd.send(victim, "X", (step, i))
            rejected += 1

    report = c.stats.audit
    assert report is not None and report.ok, report.summary()
    assert report.rounds_audited == delivered
    assert c.stats.aborted == aborted
    assert len(report.aborted_rounds) == aborted
    assert len(report.rejected_rounds) == rejected
    undelivered = [rd for rd in c.stats.rounds if not rd.delivered]
    assert len(undelivered) == rejected
    # Aggregates only see delivered rounds, and the cap held for them.
    assert c.stats.max_load <= cap
    # The injected "X" fragment never survived an abort or rejection.
    assert c.gather("X") == []
    # The cluster is still fully usable at the end.
    with c.round("final") as rnd:
        rnd.broadcast("done", (1,))
    assert all(s.get("done") == [(1,)] for s in c.servers)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_round_lifecycle(seed):
    _fuzz_one_cluster(seed)


class TestAlgorithmsUnderAudit:
    """End-to-end: real algorithms pass every conservation check."""

    def test_joins_audited(self):
        r = uniform_relation("R", ["x", "y"], 120, universe=40, seed=1)
        s = uniform_relation("S", ["y", "z"], 120, universe=40, seed=2)
        with audited():
            for algo in (parallel_hash_join, broadcast_join, sort_join):
                run = algo(r, s, p=4)
                assert run.stats.audit is not None
                assert run.stats.audit.ok, run.stats.audit.summary()
                assert run.stats.audit.rounds_audited > 0

    def test_skew_join_audited(self):
        r = skewed_relation("R", ["x", "y"], 200, key_attribute="y",
                            universe=50, s=1.2, seed=3)
        s = uniform_relation("S", ["y", "z"], 200, universe=50, seed=4)
        with audited():
            run = skew_join(r, s, p=4)
        assert run.stats.audit is not None and run.stats.audit.ok

    def test_multiway_audited(self):
        r = uniform_relation("R", ["x", "y"], 80, universe=15, seed=5)
        s = uniform_relation("S", ["y", "z"], 80, universe=15, seed=6)
        t = uniform_relation("T", ["z", "x"], 80, universe=15, seed=7)
        with audited():
            run = triangle_hypercube(r, s, t, p=8)
        assert run.stats.audit is not None and run.stats.audit.ok

    def test_sorting_audited(self):
        values = [((i * 37) % 101,) for i in range(150)]
        with audited():
            out, stats = psrs_sort(values, p=4)
        assert out == sorted(values)
        assert stats.audit is not None and stats.audit.ok

    def test_matmul_audited(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        with audited():
            c1, s1 = square_block_matmul(a, b, p=4, block_size=4)
            c2, s2 = sql_matmul(a, b, p=4)
        np.testing.assert_allclose(c1, a @ b, atol=1e-9)
        np.testing.assert_allclose(c2, a @ b, atol=1e-9)
        for stats in (s1, s2):
            assert stats.audit is not None and stats.audit.ok
