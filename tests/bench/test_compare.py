"""The BENCH comparator: regression classification on synthetic pairs."""

import pytest

from repro.bench.compare import compare_bench


def bench_doc(times, quick=False):
    return {
        "schema": "repro-bench/1",
        "quick": quick,
        "experiments": [
            {"name": name, "seconds": seconds} for name, seconds in times.items()
        ],
    }


def statuses(comparison):
    return {e.name: e.status for e in comparison.entries}


class TestClassification:
    def test_within_threshold_is_ok(self):
        cmp = compare_bench(bench_doc({"a": 1.0}), bench_doc({"a": 1.15}))
        assert statuses(cmp) == {"a": "ok"}
        assert cmp.ok

    def test_regression_flagged(self):
        cmp = compare_bench(bench_doc({"a": 1.0}), bench_doc({"a": 1.3}))
        assert statuses(cmp) == {"a": "regressed"}
        assert not cmp.ok
        assert [e.name for e in cmp.regressions] == ["a"]

    def test_improvement_flagged_but_passes(self):
        cmp = compare_bench(bench_doc({"a": 1.0}), bench_doc({"a": 0.5}))
        assert statuses(cmp) == {"a": "improved"}
        assert cmp.ok

    def test_missing_experiment_fails(self):
        cmp = compare_bench(bench_doc({"a": 1.0, "b": 1.0}), bench_doc({"a": 1.0}))
        assert statuses(cmp)["b"] == "missing"
        assert not cmp.ok

    def test_new_experiment_is_informational(self):
        cmp = compare_bench(bench_doc({"a": 1.0}), bench_doc({"a": 1.0, "b": 9.9}))
        assert statuses(cmp)["b"] == "new"
        assert cmp.ok

    def test_noise_floor_suppresses_tiny_regressions(self):
        # 0.004s -> 0.04s is a 10x "regression" entirely inside timer
        # jitter; both sides under the floor compare as ok.
        cmp = compare_bench(bench_doc({"a": 0.004}), bench_doc({"a": 0.04}))
        assert statuses(cmp) == {"a": "ok"}

    def test_crossing_noise_floor_still_counts(self):
        cmp = compare_bench(bench_doc({"a": 0.04}), bench_doc({"a": 0.3}))
        assert statuses(cmp) == {"a": "regressed"}

    def test_custom_threshold(self):
        base, cur = bench_doc({"a": 1.0}), bench_doc({"a": 1.4})
        assert statuses(compare_bench(base, cur, threshold=0.5)) == {"a": "ok"}
        assert statuses(compare_bench(base, cur, threshold=0.1)) == {"a": "regressed"}


class TestGuards:
    def test_quick_vs_full_refused(self):
        with pytest.raises(ValueError, match="different sizes"):
            compare_bench(bench_doc({"a": 1.0}, quick=True), bench_doc({"a": 1.0}))

    def test_ratio_and_table(self):
        cmp = compare_bench(
            bench_doc({"a": 1.0, "gone": 1.0}),
            bench_doc({"a": 2.0, "fresh": 0.1}),
        )
        by_name = {e.name: e for e in cmp.entries}
        assert by_name["a"].ratio == pytest.approx(2.0)
        assert by_name["gone"].ratio is None
        assert by_name["fresh"].ratio is None
        table = cmp.format_table()
        assert "FAIL" in table and "regressed" in table and "missing" in table


class TestIncomparableBaselines:
    """Regression: a zero-seconds baseline against a real measurement
    used to fall through the ratio branches and pass as "ok"."""

    def test_zero_baseline_flagged_and_fails(self):
        cmp = compare_bench(bench_doc({"a": 0.0}), bench_doc({"a": 10.0}))
        assert statuses(cmp) == {"a": "incomparable"}
        assert not cmp.ok
        assert [e.name for e in cmp.regressions] == ["a"]

    def test_zero_baseline_ratio_is_none(self):
        cmp = compare_bench(bench_doc({"a": 0.0}), bench_doc({"a": 10.0}))
        assert cmp.entries[0].ratio is None

    def test_negative_baseline_flagged(self):
        cmp = compare_bench(bench_doc({"a": -1.0}), bench_doc({"a": 10.0}))
        assert statuses(cmp) == {"a": "incomparable"}
        assert cmp.entries[0].ratio is None

    def test_zero_current_above_floor_baseline_flagged(self):
        cmp = compare_bench(bench_doc({"a": 10.0}), bench_doc({"a": 0.0}))
        assert statuses(cmp) == {"a": "incomparable"}
        assert not cmp.ok

    def test_both_zero_is_noise_floor_ok(self):
        cmp = compare_bench(bench_doc({"a": 0.0}), bench_doc({"a": 0.0}))
        assert statuses(cmp) == {"a": "ok"}
        assert cmp.ok

    def test_near_zero_baseline_still_compares(self):
        # 1e-9s is under the floor but positive; a 10s current is a real
        # regression, not an incomparable pair.
        cmp = compare_bench(bench_doc({"a": 1e-9}), bench_doc({"a": 10.0}))
        assert statuses(cmp) == {"a": "regressed"}
        assert not cmp.ok

    def test_missing_pair_still_reported_missing(self):
        cmp = compare_bench(
            bench_doc({"a": 0.0, "b": 1.0}), bench_doc({"b": 1.0})
        )
        assert statuses(cmp) == {"a": "missing", "b": "ok"}
        assert not cmp.ok

    def test_incomparable_rendered_in_table(self):
        cmp = compare_bench(bench_doc({"a": 0.0}), bench_doc({"a": 10.0}))
        table = cmp.format_table()
        assert "incomparable" in table
        assert "FAIL" in table


class TestBackendGuard:
    """Files measured under different backends must not diff silently."""

    def _doc(self, backend=None, workers=None, seconds=1.0):
        doc = bench_doc({"a": seconds})
        if backend is not None:
            doc["machine"] = {"backend": backend, "workers": workers or 1}
        return doc

    def test_same_backend_compares(self):
        cmp = compare_bench(
            self._doc("process", 4), self._doc("process", 4, seconds=1.1)
        )
        assert cmp.ok

    def test_different_backend_refused(self):
        with pytest.raises(ValueError, match="different execution backends"):
            compare_bench(self._doc("inline"), self._doc("process", 4))

    def test_different_worker_count_refused(self):
        with pytest.raises(ValueError, match="different execution backends"):
            compare_bench(self._doc("process", 2), self._doc("process", 4))

    def test_force_overrides(self):
        cmp = compare_bench(
            self._doc("inline"), self._doc("process", 4), force=True
        )
        assert statuses(cmp) == {"a": "ok"}

    def test_legacy_files_default_to_inline(self):
        # Pre-backend BENCH files have no machine.backend: both sides
        # default to inline and remain comparable with each other.
        cmp = compare_bench(self._doc(), self._doc(seconds=1.1))
        assert cmp.ok
        with pytest.raises(ValueError, match="different execution backends"):
            compare_bench(self._doc(), self._doc("process", 4))


def x7_doc(ratios, quick=False):
    """A BENCH doc whose x7 section holds the given {(name, strat): ratio}."""
    doc = bench_doc({"anchor": 1.0}, quick=quick)
    doc["x7"] = [
        {
            "name": name, "strategy": strategy, "n": 100, "p": 4,
            "chosen": True, "predicted_load": 10.0,
            "measured_load": int(10 * ratio), "predicted_rounds": 1,
            "measured_rounds": 1, "ratio": ratio, "seconds": 0.1,
            "out_size": 5,
        }
        for (name, strategy), ratio in ratios.items()
    ]
    return doc


class TestX7RatioDrift:
    """Predicted-vs-measured ratios diff as dimensionless 'x' entries."""

    KEY = ("zipf", "skew")

    def test_stable_ratio_is_ok(self):
        cmp = compare_bench(x7_doc({self.KEY: 1.50}), x7_doc({self.KEY: 1.55}))
        assert statuses(cmp)["x7:zipf/skew"] == "ok"
        assert cmp.ok

    def test_drift_beyond_threshold_regresses(self):
        # 1.2 -> 1.5 is a 25% ratio drift: the prediction got worse
        # relative to reality even if wall time improved.
        cmp = compare_bench(x7_doc({self.KEY: 1.2}), x7_doc({self.KEY: 1.5}))
        assert statuses(cmp)["x7:zipf/skew"] == "regressed"
        assert not cmp.ok

    def test_improved_ratio_flagged_but_passes(self):
        cmp = compare_bench(x7_doc({self.KEY: 2.0}), x7_doc({self.KEY: 1.2}))
        assert statuses(cmp)["x7:zipf/skew"] == "improved"
        assert cmp.ok

    def test_no_noise_floor_for_ratios(self):
        # Ratios are dimensionless; the seconds noise floor must not
        # suppress a genuine 25% drift at small absolute values.
        cmp = compare_bench(x7_doc({self.KEY: 0.04}), x7_doc({self.KEY: 0.05}))
        assert statuses(cmp)["x7:zipf/skew"] == "regressed"

    def test_zero_baseline_ratio_incomparable(self):
        cmp = compare_bench(x7_doc({self.KEY: 0.0}), x7_doc({self.KEY: 1.0}))
        assert statuses(cmp)["x7:zipf/skew"] == "incomparable"
        assert not cmp.ok

    def test_zero_current_ratio_incomparable(self):
        cmp = compare_bench(x7_doc({self.KEY: 1.0}), x7_doc({self.KEY: 0.0}))
        assert statuses(cmp)["x7:zipf/skew"] == "incomparable"
        assert not cmp.ok

    def test_missing_pair_fails(self):
        base = x7_doc({self.KEY: 1.0, ("zipf", "hash"): 1.1})
        cmp = compare_bench(base, x7_doc({self.KEY: 1.0}))
        assert statuses(cmp)["x7:zipf/hash"] == "missing"
        assert not cmp.ok

    def test_new_pair_is_informational(self):
        cmp = compare_bench(
            x7_doc({self.KEY: 1.0}),
            x7_doc({self.KEY: 1.0, ("zipf", "hash"): 1.1}),
        )
        assert statuses(cmp)["x7:zipf/hash"] == "new"
        assert cmp.ok

    def test_x7_only_in_one_side_still_compares_experiments(self):
        cmp = compare_bench(bench_doc({"anchor": 1.0}), x7_doc({self.KEY: 1.0}))
        assert statuses(cmp)["anchor"] == "ok"
        assert statuses(cmp)["x7:zipf/skew"] == "new"

    def test_ratio_entries_render_with_x_unit(self):
        cmp = compare_bench(x7_doc({self.KEY: 1.2}), x7_doc({self.KEY: 1.5}))
        table = cmp.format_table()
        assert "x7:zipf/skew" in table
        assert "1.500x" in table
        assert "1.200x" in table


def x8_doc(throughputs, quick=False):
    doc = bench_doc({"anchor": 1.0}, quick=quick)
    doc["x8"] = [
        {"name": name, "queries_per_second": qps}
        for name, qps in throughputs.items()
    ]
    return doc


def x9_doc(ratios, quick=False):
    """ratios: {workload: (dispatch_ratio, pickle_ratio)}."""
    doc = bench_doc({"anchor": 1.0}, quick=quick)
    doc["x9"] = []
    for name, (dispatch, pickle) in ratios.items():
        for protocol in ("snapshot", "resident"):
            doc["x9"].append({
                "name": name, "protocol": protocol,
                "dispatch_ratio": dispatch, "pickle_ratio": pickle,
            })
    return doc


class TestHigherIsBetterSections:
    """x8 throughput and x9 savings ratios: a *drop* is the regression."""

    def test_x8_throughput_drop_regresses(self):
        cmp = compare_bench(x8_doc({"clients4": 100.0}), x8_doc({"clients4": 50.0}))
        assert statuses(cmp)["x8:clients4"] == "regressed"
        assert not cmp.ok

    def test_x8_throughput_gain_improves(self):
        cmp = compare_bench(x8_doc({"clients4": 50.0}), x8_doc({"clients4": 100.0}))
        assert statuses(cmp)["x8:clients4"] == "improved"
        assert cmp.ok

    def test_x8_within_threshold_ok(self):
        cmp = compare_bench(x8_doc({"clients4": 100.0}), x8_doc({"clients4": 95.0}))
        assert statuses(cmp)["x8:clients4"] == "ok"

    def test_x9_savings_drop_regresses(self):
        cmp = compare_bench(
            x9_doc({"hash_join": (8.0, 400.0)}),
            x9_doc({"hash_join": (8.0, 40.0)}),
        )
        assert statuses(cmp)["x9:hash_join/dispatch"] == "ok"
        assert statuses(cmp)["x9:hash_join/pickle"] == "regressed"
        assert not cmp.ok

    def test_x9_savings_gain_improves(self):
        cmp = compare_bench(
            x9_doc({"hash_join": (8.0, 100.0)}),
            x9_doc({"hash_join": (16.0, 500.0)}),
        )
        assert statuses(cmp)["x9:hash_join/dispatch"] == "improved"
        assert statuses(cmp)["x9:hash_join/pickle"] == "improved"
        assert cmp.ok

    def test_x9_reads_each_ratio_once_from_the_resident_arm(self):
        cmp = compare_bench(
            x9_doc({"hash_join": (8.0, 100.0)}),
            x9_doc({"hash_join": (8.0, 100.0)}),
        )
        x9_entries = [e for e in cmp.entries if e.name.startswith("x9:")]
        assert sorted(e.name for e in x9_entries) == [
            "x9:hash_join/dispatch", "x9:hash_join/pickle",
        ]
        assert all(e.unit == "x" for e in x9_entries)

    def test_x9_missing_workload_fails(self):
        base = x9_doc({"hash_join": (8.0, 100.0), "triangle": (16.0, 500.0)})
        cmp = compare_bench(base, x9_doc({"hash_join": (8.0, 100.0)}))
        assert statuses(cmp)["x9:triangle/dispatch"] == "missing"
        assert statuses(cmp)["x9:triangle/pickle"] == "missing"
        assert not cmp.ok

    def test_x9_new_workload_is_informational(self):
        cmp = compare_bench(
            x9_doc({"hash_join": (8.0, 100.0)}),
            x9_doc({"hash_join": (8.0, 100.0), "triangle": (16.0, 500.0)}),
        )
        assert statuses(cmp)["x9:triangle/dispatch"] == "new"
        assert cmp.ok

    def test_x9_zero_ratio_incomparable(self):
        cmp = compare_bench(
            x9_doc({"hash_join": (8.0, 100.0)}),
            x9_doc({"hash_join": (0.0, 100.0)}),
        )
        assert statuses(cmp)["x9:hash_join/dispatch"] == "incomparable"
        assert not cmp.ok
